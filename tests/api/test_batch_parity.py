"""Property tests: ``plan_batch`` is order-stable and jobs-invariant.

The batch API's core contract — results come back in submission order and
a parallel fan-out returns exactly what a serial run returns — is checked
here for *every* registered solver over Hypothesis-drawn correlated
instances, comparing canonical result payloads (volatile wall-clock and
cache-provenance fields neutralized) rather than just values.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Planner, PlanRequest, available_solvers, capable_solvers
from repro.conformance.invariants import canonical_result_payload

from tests.strategies import multicast_sets

JOBS = 4


def _requests(msets, solver):
    return [
        PlanRequest(instance=mset, solver=solver, tag=f"job-{i}")
        for i, mset in enumerate(msets)
        if solver in capable_solvers(mset)
    ]


def _payloads(batch):
    return [canonical_result_payload(result) for result in batch]


@pytest.mark.parametrize("solver", available_solvers())
@settings(max_examples=15, deadline=None)
@given(msets=st.lists(multicast_sets(max_n=6), min_size=1, max_size=5))
def test_parallel_batch_identical_to_serial(solver, msets):
    requests = _requests(msets, solver)
    if not requests:
        return
    serial = Planner(cache_size=0).plan_batch(requests, jobs=1)
    parallel = Planner(cache_size=0).plan_batch(requests, jobs=JOBS)
    assert _payloads(serial) == _payloads(parallel)
    # order stability: tags echo back in submission order in both modes
    assert [r.tag for r in serial] == [req.tag for req in requests]
    assert [r.tag for r in parallel] == [req.tag for req in requests]


@pytest.mark.parametrize("solver", available_solvers())
@settings(max_examples=10, deadline=None)
@given(msets=st.lists(multicast_sets(max_n=5), min_size=2, max_size=4))
def test_batch_runs_are_reproducible(solver, msets):
    """Two independent parallel batches agree bit-for-bit."""
    requests = _requests(msets, solver)
    if not requests:
        return
    first = Planner(cache_size=0).plan_batch(requests, jobs=JOBS)
    second = Planner(cache_size=0).plan_batch(requests, jobs=JOBS)
    assert _payloads(first) == _payloads(second)


@settings(max_examples=10, deadline=None)
@given(msets=st.lists(multicast_sets(max_n=6), min_size=1, max_size=6))
def test_mixed_solver_batch_is_order_stable(msets):
    """One batch mixing every capable solver keeps submission order."""
    requests = [
        PlanRequest(instance=mset, solver=solver, tag=f"{i}:{solver}")
        for i, mset in enumerate(msets)
        for solver in capable_solvers(mset)
    ]
    serial = Planner(cache_size=0).plan_batch(requests, jobs=1)
    parallel = Planner(cache_size=0).plan_batch(requests, jobs=JOBS)
    assert [r.tag for r in parallel] == [req.tag for req in requests]
    assert _payloads(serial) == _payloads(parallel)
