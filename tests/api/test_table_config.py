"""``TableCacheConfig``: the consolidated table-cache policy surface.

One frozen dataclass now carries every table knob (budget, per-solve
state cap, backend, snapshot directory, pinning); the old ``Planner``
kwargs survive only as deprecated aliases.  Snapshot persistence rides
the same config: write-through saves on build, fail-closed mmap attach
on miss, warm restarts with zero rebuilds.
"""

import warnings

import pytest

from repro.api import Planner
from repro.api.tables import (
    DEFAULT_TABLE_BUDGET,
    OptimalTableCache,
    TableCacheConfig,
    snapshot_filename,
)
from repro.core.multicast import MulticastSet
from repro.exceptions import ReproError


def _two_type(fast, slow, latency=1):
    return MulticastSet.from_overheads(
        source=(2, 3),
        destinations=[(1, 1)] * fast + [(2, 3)] * slow,
        latency=latency,
    )


class TestConfigSurface:
    def test_defaults(self):
        config = TableCacheConfig()
        assert config.enabled
        assert config.max_total_states == DEFAULT_TABLE_BUDGET
        assert config.backend == "auto"
        assert config.snapshot_dir is None
        assert config.snapshot_autosave
        assert config.pin_sessions

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ReproError, match="max_total_states"):
            TableCacheConfig(max_total_states=0).validate()
        with pytest.raises(ReproError, match="max_states"):
            TableCacheConfig(max_states=0).validate()
        with pytest.raises(ReproError, match="unknown table backend"):
            TableCacheConfig(backend="bogus").validate()

    def test_build_cache(self, tmp_path):
        assert TableCacheConfig(enabled=False).build_cache() is None
        cache = TableCacheConfig(
            max_total_states=1234, snapshot_dir=tmp_path
        ).build_cache()
        assert isinstance(cache, OptimalTableCache)
        assert cache.stats()["max_total_states"] == 1234
        assert cache.snapshot_dir == tmp_path

    def test_with_snapshot_dir(self, tmp_path):
        config = TableCacheConfig().with_snapshot_dir(tmp_path)
        assert config.snapshot_dir == tmp_path
        assert TableCacheConfig().snapshot_dir is None  # frozen: no mutation


class TestPlannerIntegration:
    def test_planner_accepts_config(self):
        planner = Planner(table_config=TableCacheConfig(max_total_states=777))
        assert planner.table_config.max_total_states == 777
        assert planner.table_cache.stats()["max_total_states"] == 777

    def test_disabled_config_means_no_cache(self):
        planner = Planner(table_config=TableCacheConfig(enabled=False))
        assert planner.table_cache is None

    def test_backend_flows_into_builds(self):
        planner = Planner(table_config=TableCacheConfig(backend="scalar"))
        planner.plan(_two_type(3, 2), "dp")
        assert planner.table_cache.stats()["builds"] == 1

    def test_deprecated_kwarg_warns_and_maps(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            planner = Planner(table_cache_states=4321)
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "table_cache_states" in str(w.message)
            for w in caught
        )
        assert planner.table_config.max_total_states == 4321

    def test_config_and_deprecated_kwarg_conflict(self):
        with pytest.raises(ReproError, match="not both"):
            Planner(table_config=TableCacheConfig(), table_cache_states=10)

    def test_config_and_reuse_tables_false_conflict(self):
        with pytest.raises(ReproError, match="enabled=False"):
            Planner(table_config=TableCacheConfig(), reuse_tables=False)

    def test_reuse_tables_false_still_works_alone(self):
        planner = Planner(reuse_tables=False)
        assert planner.table_cache is None
        assert not planner.table_config.enabled


class TestSnapshotPersistence:
    def test_write_through_on_build(self, tmp_path):
        planner = Planner(
            cache_size=0, table_config=TableCacheConfig(snapshot_dir=tmp_path)
        )
        planner.plan(_two_type(4, 3), "dp")
        files = list(tmp_path.glob("table-*.snap"))
        assert len(files) == 1
        stats = planner.table_cache.stats()
        assert stats["snapshot_saves"] == 1
        assert stats["attaches"] == 0

    def test_warm_restart_attaches_instead_of_building(self, tmp_path):
        config = TableCacheConfig(snapshot_dir=tmp_path)
        first = Planner(cache_size=0, table_config=config)
        before = first.plan(_two_type(4, 3), "dp")
        second = Planner(cache_size=0, table_config=config)
        after = second.plan(_two_type(4, 3), "dp")
        stats = second.table_cache.stats()
        assert stats["attaches"] == 1
        assert stats["builds"] == 0
        assert after.value == before.value
        assert after.schedule == before.schedule

    def test_growth_past_snapshot_saves_through_again(self, tmp_path):
        config = TableCacheConfig(snapshot_dir=tmp_path)
        planner = Planner(cache_size=0, table_config=config)
        planner.plan(_two_type(3, 2), "dp")
        planner.plan(_two_type(6, 5), "dp")  # extends the attached table
        stats = planner.table_cache.stats()
        assert stats["snapshot_saves"] == 2
        warm = Planner(cache_size=0, table_config=config)
        warm.plan(_two_type(6, 5), "dp")
        assert warm.table_cache.stats()["builds"] == 0

    def test_corrupt_snapshot_is_rejected_and_removed(self, tmp_path):
        config = TableCacheConfig(snapshot_dir=tmp_path)
        Planner(cache_size=0, table_config=config).plan(_two_type(4, 3), "dp")
        (snap,) = tmp_path.glob("table-*.snap")
        data = bytearray(snap.read_bytes())
        data[-1] ^= 0xFF
        snap.write_bytes(bytes(data))
        planner = Planner(cache_size=0, table_config=config)
        result = planner.plan(_two_type(4, 3), "dp")
        stats = planner.table_cache.stats()
        assert stats["snapshot_rejects"] == 1
        assert stats["builds"] == 1  # fell back to a clean rebuild
        # the corrupt file was unlinked, then write-through replaced it
        # with a clean one at the same content-addressed path
        from repro.core.dp_table import OptimalTable

        OptimalTable.load_snapshot(snap)
        fresh = Planner(cache_size=0, reuse_tables=False).plan(
            _two_type(4, 3), "dp"
        )
        assert result.value == fresh.value

    def test_autosave_off_keeps_directory_clean(self, tmp_path):
        config = TableCacheConfig(snapshot_dir=tmp_path, snapshot_autosave=False)
        planner = Planner(cache_size=0, table_config=config)
        planner.plan(_two_type(4, 3), "dp")
        assert not list(tmp_path.glob("*.snap"))
        # explicit save still works
        assert planner.table_cache.save_snapshots() == 1
        assert len(list(tmp_path.glob("table-*.snap"))) == 1

    def test_save_snapshots_needs_a_directory(self):
        cache = OptimalTableCache()
        with pytest.raises(ReproError, match="directory"):
            cache.save_snapshots()

    def test_snapshot_filename_is_content_addressed(self):
        a = snapshot_filename(((1, 1), (2, 3)), 1.0)
        b = snapshot_filename(((1, 1), (2, 3)), 1.0)
        c = snapshot_filename(((1, 1), (2, 3)), 2.0)
        assert a == b
        assert a != c
        assert a.startswith("table-") and a.endswith(".snap")
