"""The group-solve engine: bucketing, parity, fallbacks, prewarm."""

import json

import pytest

from repro.api import Planner, PlanRequest
from repro.core.multicast import MulticastSet
from repro.exceptions import ReproError, SolverError
from repro.io.serialization import plan_result_to_dict


def _canonical(result):
    payload = plan_result_to_dict(result)
    payload["elapsed_s"] = 0.0
    payload["cache_hit"] = False
    payload["tag"] = None
    return json.dumps(payload, sort_keys=True)


def _two_type(fast, slow, latency=1, scale=1):
    return MulticastSet.from_overheads(
        source=(2 * scale, 3 * scale),
        destinations=[(1 * scale, 1 * scale)] * fast
        + [(2 * scale, 3 * scale)] * slow,
        latency=latency * scale,
    )


def _sweep(top=6):
    return [
        PlanRequest(instance=_two_type(fast, slow), solver="dp")
        for fast in range(top + 1)
        for slow in range(top + 1)
        if fast + slow > 0
    ]


class TestGroupParity:
    def test_bit_identical_to_per_instance(self):
        requests = _sweep()
        grouped = Planner(cache_size=0).plan_batch(requests, group_solve=True)
        direct = Planner(cache_size=0, reuse_tables=False).plan_batch(
            requests, group_solve=False
        )
        assert [_canonical(r) for r in grouped] == [_canonical(r) for r in direct]

    def test_one_table_answers_each_bucket(self):
        planner = Planner(cache_size=0)
        planner.plan_batch(_sweep(), group_solve=True)
        cache = planner.table_cache
        # two canonical type systems in the sweep: the two-type mixes and
        # the all-slow (source-type-only, k=1) instances
        assert cache.builds == 2
        assert cache.extensions == 0  # pre-sized to the element-wise max

    def test_power_of_two_scaled_sweeps_share_the_bucket(self):
        planner = Planner(cache_size=0)
        requests = [
            PlanRequest(instance=_two_type(fast, 5 - fast, scale=scale), solver="dp")
            for scale in (1, 2, 4)
            for fast in range(1, 5)
        ]
        planner.plan_batch(requests, group_solve=True)
        assert planner.table_cache.builds == 1

    def test_mixed_solvers_group_only_the_reusable(self):
        planner = Planner(cache_size=0)
        requests = [
            PlanRequest(instance=_two_type(3, 2), solver=solver)
            for solver in ("dp", "greedy", "greedy+reversal", "exact")
        ]
        batch = planner.plan_batch(requests, group_solve=True)
        assert [r.solver for r in batch] == ["dp", "greedy", "greedy+reversal", "exact"]
        assert planner.table_cache.builds == 1

    def test_parallel_jobs_match_serial(self):
        requests = _sweep(5)
        serial = Planner(cache_size=0).plan_batch(requests, group_solve=True)
        parallel = Planner(cache_size=0).plan_batch(
            requests, jobs=4, group_solve=True
        )
        assert [_canonical(r) for r in serial] == [_canonical(r) for r in parallel]

    def test_group_solve_without_table_reuse_is_batch_local(self):
        # reuse_tables=False still amortizes within an explicit group batch
        planner = Planner(cache_size=0, reuse_tables=False)
        requests = _sweep(4)
        batch = planner.plan_batch(requests, group_solve=True)
        direct = Planner(cache_size=0, reuse_tables=False).plan_batch(
            requests, group_solve=False
        )
        assert [_canonical(r) for r in batch] == [_canonical(r) for r in direct]
        assert planner.table_cache is None


class TestGroupGuards:
    def test_oversized_requests_raise_identically(self):
        planner = Planner(cache_size=0)
        with pytest.raises(SolverError, match="state space too large"):
            planner.plan_batch(
                [PlanRequest(instance=_two_type(9, 9), solver="dp",
                             options={"max_states": 10})],
                group_solve=True,
            )

    def test_unknown_solver_raises_identically(self):
        planner = Planner(cache_size=0)
        with pytest.raises(SolverError, match="unknown solver"):
            planner.plan_batch(
                [PlanRequest(instance=_two_type(2, 2), solver="nope")],
                group_solve=True,
            )

    def test_on_error_skip_keeps_survivors(self):
        planner = Planner(cache_size=0)
        requests = [
            PlanRequest(instance=_two_type(2, 2), solver="dp", tag="ok"),
            PlanRequest(instance=_two_type(2, 2), solver="nope", tag="bad"),
            PlanRequest(instance=_two_type(1, 2), solver="dp", tag="ok2"),
        ]
        batch = planner.plan_batch(requests, on_error="skip", group_solve=True)
        assert [r.tag for r in batch] == ["ok", "ok2"]

    def test_group_solve_rejected_on_process_executor(self):
        planner = Planner(cache_size=0)
        with pytest.raises(ReproError, match="thread executor"):
            planner.plan_batch(
                [PlanRequest(instance=_two_type(2, 2), solver="dp")],
                executor="process",
                group_solve=True,
            )

    def test_default_group_solve_off_for_process_executor(self):
        planner = Planner(cache_size=0)
        batch = planner.plan_batch(
            [PlanRequest(instance=_two_type(2, 2), solver="dp")] * 2,
            jobs=2,
            executor="process",
        )
        assert len(batch) == 2


class TestPrewarm:
    def test_prewarm_builds_one_table_per_bucket(self):
        planner = Planner(cache_size=0)
        instances = [_two_type(f, 6 - f) for f in range(1, 6)]
        instances += [_two_type(f, 4 - f, latency=2) for f in range(1, 4)]
        warmed = planner.prewarm_tables(instances)
        assert warmed == 2
        cache = planner.table_cache
        assert cache.builds == 2
        # the sweep itself is then pure lookups: no builds, no extensions
        for mset in instances:
            planner.plan(mset, "dp")
        assert cache.builds == 2 and cache.extensions == 0
        assert cache.hits == len(instances)

    def test_prewarm_noop_without_table_reuse(self):
        planner = Planner(cache_size=0, reuse_tables=False)
        assert planner.prewarm_tables([_two_type(2, 2)]) == 0


class TestCanonicalCacheHits:
    def test_equivalent_requests_hit_and_rebind(self):
        planner = Planner()
        first = planner.plan(_two_type(3, 2), "dp")
        renamed_scaled = _two_type(3, 2, scale=2)
        second = planner.plan(renamed_scaled, "dp")
        assert second.cache_hit
        info = planner.cache_info()
        assert info.hits == 1 and info.canonical_hits == 1
        direct = Planner(cache_size=0, reuse_tables=False).plan(
            _two_type(3, 2, scale=2), "dp"
        )
        assert _canonical(second) == _canonical(direct)
        # the rebound schedule belongs to the requesting instance
        assert second.schedule.multicast == renamed_scaled
        assert second.value == 2 * first.value

    def test_bounds_recomputed_on_rebind(self):
        planner = Planner()
        request = PlanRequest(
            instance=_two_type(4, 3), solver="greedy", include_bounds=True
        )
        planner.plan(request)
        scaled = PlanRequest(
            instance=_two_type(4, 3, scale=4), solver="greedy", include_bounds=True
        )
        hit = planner.plan(scaled)
        assert hit.cache_hit and hit.bounds is not None
        direct = Planner(cache_size=0, reuse_tables=False).plan(
            PlanRequest(
                instance=_two_type(4, 3, scale=4),
                solver="greedy",
                include_bounds=True,
            )
        )
        assert _canonical(hit) == _canonical(direct)
