"""Registry gating and planner integration for multi-group solvers."""

import pytest

from repro.api import (
    DEFAULT_STRATEGY,
    MultiGroupPlanner,
    Planner,
    PlanRequest,
    available_multi_group_solvers,
    available_solvers,
    capable_solvers,
    get_solver,
    plan_groups,
    resolve,
)
from repro.api.solvers import SolverError
from repro.core.contention import MultiGroupInstance
from repro.core.multicast import MulticastSet
from repro.core.node import Node


def _instance(n_groups=2):
    source = Node("s", 2, 3)
    groups = [
        MulticastSet(source, [Node(f"g{g}d{i}", 1, 2) for i in range(3)], 1)
        for g in range(n_groups)
    ]
    return MultiGroupInstance(groups)


# ----------------------------------------------------------------------
# capability gating
# ----------------------------------------------------------------------
def test_multi_group_solvers_are_registered():
    names = available_multi_group_solvers()
    assert names == ["mg-greedy-pack", "mg-round-robin", "mg-sequential"]
    assert DEFAULT_STRATEGY in names
    for name in names:
        entry = get_solver(name)
        assert entry.capabilities.multi_group
        assert not entry.capabilities.exact
        assert name in available_solvers()


def test_multi_group_solvers_never_capture_single_group_instances():
    mset = _instance().groups[0]
    capable = capable_solvers(mset)
    assert capable, "single-group solvers must stay available"
    assert not any(name.startswith("mg-") for name in capable)
    for name in available_multi_group_solvers():
        assert not get_solver(name).capabilities.supports(mset)


def test_multi_group_entry_rejects_direct_single_group_calls():
    entry, _ = resolve("mg-sequential")
    with pytest.raises(SolverError, match="MultiGroupPlanner"):
        entry(_instance().groups[0])
    with pytest.raises(SolverError, match="MultiGroupPlanner"):
        entry(_instance())  # no schedules supplied
    with pytest.raises(SolverError, match="takes no options"):
        entry(_instance(), schedules=[], bogus=1)


# ----------------------------------------------------------------------
# MultiGroupPlanner
# ----------------------------------------------------------------------
def test_plan_groups_default_strategy_and_provenance():
    instance = _instance()
    result = MultiGroupPlanner().plan_groups(instance)
    assert result.strategy == DEFAULT_STRATEGY
    assert result.instance is instance
    assert len(result.group_results) == instance.n_groups
    assert [r.tag for r in result.group_results] == ["group-0", "group-1"]
    assert result.max_makespan == result.schedule.max_makespan
    assert result.weighted_sum == result.schedule.weighted_sum
    assert result.offsets == result.schedule.offsets
    result.schedule.assert_no_contention()


def test_plan_groups_rejects_non_multi_group_strategy():
    with pytest.raises(SolverError, match="not a multi-group strategy"):
        MultiGroupPlanner().plan_groups(_instance(), "greedy")


def test_plan_groups_rejects_non_instance():
    with pytest.raises(SolverError, match="needs a MultiGroupInstance"):
        MultiGroupPlanner().plan_groups(_instance().groups[0])


def test_inner_solver_selection_is_recorded():
    result = MultiGroupPlanner().plan_groups(_instance(), solver="dp")
    assert result.solver == "dp"
    assert all(r.solver == "dp" for r in result.group_results)
    assert all(r.exact for r in result.group_results)


def test_compare_strategies_shares_inner_solves():
    planner = Planner()
    results = MultiGroupPlanner(planner).compare_strategies(
        _instance(), solver="dp"
    )
    assert sorted(results) == available_multi_group_solvers()
    # 3 strategies x 2 groups = 6 inner requests; after the first strategy
    # plans, every later request is answered from the planner cache
    info = planner.cache_info()
    assert info.hits >= 4
    # the two groups are canonically equivalent (same type system), so the
    # very first batch already collapses to one solve plus a rebind
    assert info.canonical_hits >= 1
    values = {name: r.max_makespan for name, r in results.items()}
    assert min(values.values()) <= values["mg-sequential"]


def test_module_level_plan_groups_convenience():
    result = plan_groups(_instance(), "mg-sequential")
    assert result.strategy == "mg-sequential"
    assert result.offsets[0] == 0.0
