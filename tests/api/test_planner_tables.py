"""The planner's optimal-table fast path: parity, reuse, guard rails."""

import json

import pytest

from repro.api import OptimalTableCache, Planner, PlanRequest
from repro.core.multicast import MulticastSet
from repro.exceptions import ReproError, SolverError
from repro.io.serialization import plan_result_to_dict


def _canonical(result):
    payload = plan_result_to_dict(result)
    payload["elapsed_s"] = 0.0
    payload["cache_hit"] = False
    payload["tag"] = None
    return json.dumps(payload, sort_keys=True)


def _two_type(fast, slow, latency=1):
    return MulticastSet.from_overheads(
        source=(2, 3),
        destinations=[(1, 1)] * fast + [(2, 3)] * slow,
        latency=latency,
    )


class TestParity:
    @pytest.mark.parametrize("shape", [(3, 1), (5, 2), (2, 6), (1, 1)])
    def test_byte_identical_to_direct_solve(self, shape):
        direct = Planner(cache_size=0, reuse_tables=False)
        reusing = Planner(cache_size=0, reuse_tables=True)
        mset = _two_type(*shape)
        assert _canonical(direct.plan(mset, "dp")) == _canonical(
            reusing.plan(mset, "dp")
        )

    def test_bounds_requests_also_identical(self):
        direct = Planner(cache_size=0, reuse_tables=False)
        reusing = Planner(cache_size=0, reuse_tables=True)
        request_for = lambda: PlanRequest(
            instance=_two_type(4, 3), solver="dp", include_bounds=True
        )
        assert _canonical(direct.plan(request_for())) == _canonical(
            reusing.plan(request_for())
        )

    def test_parity_independent_of_cache_history(self):
        # a planner that has served other shapes first must answer the
        # same bytes as a fresh one (service-parity depends on this)
        fresh = Planner(cache_size=0, reuse_tables=True)
        warmed = Planner(cache_size=0, reuse_tables=True)
        for fast, slow in [(6, 6), (2, 1), (5, 3)]:
            warmed.plan(_two_type(fast, slow), "dp")
        mset = _two_type(3, 2)
        assert _canonical(fresh.plan(mset, "dp")) == _canonical(
            warmed.plan(mset, "dp")
        )


class TestReuse:
    def test_repeated_type_system_hits_the_table(self):
        planner = Planner(cache_size=0, reuse_tables=True)
        planner.plan(_two_type(4, 4), "dp")
        cache = planner.table_cache
        assert cache is not None and cache.builds == 1
        planner.plan(_two_type(2, 3), "dp")  # smaller mix, same types
        assert cache.builds == 1 and cache.hits == 1

    def test_growth_extends_incrementally(self):
        planner = Planner(cache_size=0, reuse_tables=True)
        planner.plan(_two_type(2, 2), "dp")
        planner.plan(_two_type(6, 6), "dp")  # outgrows the first table
        cache = planner.table_cache
        assert cache.builds == 1 and cache.extensions == 1
        planner.plan(_two_type(5, 6), "dp")
        assert cache.builds == 1 and cache.extensions == 1 and cache.hits == 1

    def test_equivalent_networks_share_a_table(self):
        # renamed nodes and power-of-two-rescaled overheads canonicalize
        # onto the same table (the planner passes canonical instances)
        planner = Planner(cache_size=0, reuse_tables=True)
        planner.plan(_two_type(4, 4), "dp")
        scaled = MulticastSet.from_overheads(
            source=(4, 6),
            destinations=[(2, 2)] * 3 + [(4, 6)] * 2,
            latency=2,
        )
        planner.plan(scaled, "dp")
        cache = planner.table_cache
        assert cache.builds == 1 and cache.hits == 1

    def test_latency_is_part_of_the_key(self):
        planner = Planner(cache_size=0, reuse_tables=True)
        planner.plan(_two_type(3, 3, latency=1), "dp")
        planner.plan(_two_type(3, 3, latency=2), "dp")
        assert planner.table_cache.builds == 2

    def test_reuse_disabled_has_no_cache(self):
        planner = Planner(cache_size=0, reuse_tables=False)
        planner.plan(_two_type(3, 3), "dp")
        assert planner.table_cache is None

    def test_non_reusable_solvers_bypass_the_cache(self):
        planner = Planner(cache_size=0, reuse_tables=True)
        planner.plan(_two_type(4, 4), "greedy")
        assert len(planner.table_cache) == 0

    def test_parallel_batch_shares_the_table(self):
        planner = Planner(cache_size=0, reuse_tables=True)
        requests = [
            PlanRequest(instance=_two_type(fast, 8 - fast), solver="dp")
            for fast in range(1, 8)
        ] * 2
        batch = planner.plan_batch(requests, jobs=4)
        serial = Planner(cache_size=0, reuse_tables=False).plan_batch(requests)
        assert [_canonical(r) for r in batch] == [_canonical(r) for r in serial]


class TestGuards:
    def test_max_states_still_raises_identically(self):
        planner = Planner(cache_size=0, reuse_tables=True)
        with pytest.raises(SolverError, match="state space too large"):
            planner.plan(_two_type(9, 9), "dp", max_states=10)

    def test_oversized_growth_falls_back_to_direct_solve(self):
        cache = OptimalTableCache(max_states=60)
        small = _two_type(2, 2)  # 2 * 3 * 3 = 18 states
        assert cache.acquire(small) is not None
        big = _two_type(4, 4)  # growth would need 2 * 5 * 5 = 50 <= 60: ok
        assert cache.acquire(big) is not None
        huge = _two_type(9, 9)  # 2 * 10 * 10 = 200 > 60: direct path
        assert cache.acquire(huge) is None
        assert cache.builds == 1 and cache.extensions == 1

    def test_eviction_by_held_states(self):
        # budget of 60 states: the 50-state second table evicts the first
        cache = OptimalTableCache(max_total_states=60)
        cache.acquire(_two_type(2, 2, latency=1))  # 18 states
        cache.acquire(_two_type(2, 2, latency=2))  # 18 more: both fit
        assert len(cache) == 2 and cache.evictions == 0
        cache.acquire(_two_type(4, 4, latency=3))  # 50 states: evict LRU
        assert len(cache) < 3
        assert cache.evictions >= 1
        assert cache.states_held <= cache.max_total_states

    def test_growth_guard_respects_the_budget(self):
        # growing a resident table past the budget evicts colder tables,
        # never exceeds the committed total, and refuses single tables
        # larger than the whole budget
        cache = OptimalTableCache(max_total_states=120)
        cache.acquire(_two_type(2, 2, latency=1))
        cache.acquire(_two_type(2, 2, latency=2))
        grown = cache.acquire(_two_type(6, 6, latency=1))  # 98 states
        assert grown is not None
        assert cache.states_held <= cache.max_total_states
        assert cache.acquire(_two_type(9, 9, latency=1)) is None  # 200 > 120
        assert cache.states_held <= cache.max_total_states

    def test_clear_resets_counters(self):
        cache = OptimalTableCache()
        cache.acquire(_two_type(2, 2))
        cache.acquire(_two_type(2, 1))
        cache.clear()
        assert (len(cache), cache.hits, cache.builds) == (0, 0, 0)
        assert (cache.extensions, cache.evictions) == (0, 0)

    def test_table_cache_states_validated(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ReproError, match="table_cache_states"):
                Planner(table_cache_states=0)


class TestPins:
    """Pin-by-session: eviction must never drop a table a repair holds."""

    def test_pinned_table_survives_eviction_pressure(self):
        # budget of 60: the 50-state newcomer would evict the LRU 18-state
        # table — unless that table is pinned by an in-flight session
        cache = OptimalTableCache(max_total_states=60)
        held = cache.acquire(_two_type(2, 2, latency=1), pin=True)  # 18
        assert held is not None
        cache.acquire(_two_type(4, 4, latency=3))  # 50 states of pressure
        assert cache.acquire(_two_type(2, 2, latency=1)) is held
        assert cache.stats()["pins"] == 1

    def test_unpinned_tables_still_evict_under_the_same_pressure(self):
        cache = OptimalTableCache(max_total_states=60)
        cache.acquire(_two_type(2, 2, latency=1))  # same shape, no pin
        cache.acquire(_two_type(4, 4, latency=3))
        assert cache.evictions >= 1

    def test_release_reexposes_the_table_to_eviction(self):
        cache = OptimalTableCache(max_total_states=60)
        mset = _two_type(2, 2, latency=1)
        held = cache.acquire(mset, pin=True)
        cache.acquire(_two_type(4, 4, latency=3))  # over budget, pin holds
        assert cache.acquire(mset) is held  # the pinned table survived
        cache.release_box(mset.type_keys(), mset.latency)
        cache.acquire(_two_type(4, 4, latency=3))
        # once unpinned, the budget applies to it like any other table
        assert cache.states_held <= cache.max_total_states
        assert cache.stats()["pins"] == 0

    def test_pin_survives_incremental_extension(self):
        # extension replaces the table object under the same key, so the
        # pin keeps protecting the grown table
        cache = OptimalTableCache(max_total_states=200)
        cache.acquire(_two_type(2, 2, latency=1), pin=True)
        grown = cache.acquire(_two_type(4, 4, latency=1))  # extends in place
        assert cache.extensions == 1
        cache.acquire(_two_type(6, 6, latency=2))  # 98 states of pressure
        assert cache.acquire(_two_type(4, 4, latency=1)) is grown
        cache.release_box(_two_type(2, 2, latency=1).type_keys(), 1)

    def test_pins_are_counted_per_acquire(self):
        cache = OptimalTableCache()
        mset = _two_type(2, 2)
        cache.acquire(mset, pin=True)
        cache.acquire(mset, pin=True)  # hit path must also register pins
        assert cache.stats()["pins"] == 2
        cache.release_box(mset.type_keys(), mset.latency)
        assert cache.stats()["pins"] == 1
        cache.release_box(mset.type_keys(), mset.latency)
        assert cache.stats()["pins"] == 0

    def test_unbalanced_release_is_rejected(self):
        cache = OptimalTableCache()
        mset = _two_type(2, 2)
        cache.acquire(mset)  # unpinned
        with pytest.raises(ReproError, match="release_box without a matching"):
            cache.release_box(mset.type_keys(), mset.latency)

    def test_failed_acquire_takes_no_pin(self):
        cache = OptimalTableCache(max_total_states=10)
        assert cache.acquire(_two_type(4, 4), pin=True) is None  # 50 > 10
        assert cache.stats()["pins"] == 0

    def test_clear_drops_pins(self):
        cache = OptimalTableCache()
        cache.acquire(_two_type(2, 2), pin=True)
        cache.clear()
        assert cache.stats()["pins"] == 0
