"""PlanRequest/PlanResult JSON round-trips and deprecation shims."""

import json
import warnings

import pytest

from repro.api import Planner, PlanRequest, PlanResult
from repro.exceptions import ReproError
from repro.io.serialization import (
    plan_request_from_dict,
    plan_request_to_dict,
    plan_result_from_dict,
    plan_result_to_dict,
    save_json,
)


class TestPlanRequestRoundTrip:
    def test_round_trip_through_json(self, fig1_mset):
        request = PlanRequest(
            instance=fig1_mset,
            solver="exact(max_destinations=12)",
            options={"node_budget": 500},
            include_bounds=True,
            tag="rt",
        )
        payload = json.loads(json.dumps(plan_request_to_dict(request)))
        back = plan_request_from_dict(payload)
        assert back == request

    def test_methods_delegate(self, fig1_mset):
        request = PlanRequest(instance=fig1_mset)
        assert PlanRequest.from_dict(request.to_dict()) == request

    def test_format_checked(self, fig1_mset):
        with pytest.raises(ReproError, match="plan-request"):
            plan_request_from_dict({"format": "repro/schedule-v1"})

    def test_defaults_fill_in(self, fig1_mset):
        data = plan_request_to_dict(PlanRequest(instance=fig1_mset))
        del data["options"], data["tag"]
        back = plan_request_from_dict(data)
        assert back.options == {} and back.tag is None

    def test_rejects_non_instance(self):
        with pytest.raises(ReproError, match="MulticastSet"):
            PlanRequest(instance="nope")


class TestPlanResultRoundTrip:
    @pytest.mark.parametrize("solver,include_bounds", [
        ("greedy", True),
        ("dp", False),
    ])
    def test_round_trip_through_json(self, fig1_mset, solver, include_bounds):
        result = Planner().plan(
            PlanRequest(instance=fig1_mset, solver=solver,
                        include_bounds=include_bounds, tag="x")
        )
        payload = json.loads(json.dumps(plan_result_to_dict(result)))
        back = plan_result_from_dict(payload)
        assert back.solver == result.solver
        assert back.value == result.value
        assert back.schedule == result.schedule
        assert back.bounds == result.bounds
        assert back.exact == result.exact
        assert back.tag == "x"
        assert dict(back.provenance) == dict(result.provenance)

    def test_methods_delegate(self, fig1_mset):
        result = Planner().plan(fig1_mset)
        back = PlanResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.value == result.value

    def test_format_checked(self):
        with pytest.raises(ReproError, match="plan-result"):
            plan_result_from_dict({"format": "bogus"})

    def test_save_json_accepts_plan_records(self, fig1_mset, tmp_path):
        request = PlanRequest(instance=fig1_mset, solver="dp")
        result = Planner().plan(request)
        req_path = save_json(request, tmp_path / "request.json")
        res_path = save_json(result, tmp_path / "result.json")
        assert plan_request_from_dict(json.loads(req_path.read_text())) == request
        loaded = plan_result_from_dict(json.loads(res_path.read_text()))
        assert loaded.value == result.value


class TestDeprecationShims:
    @pytest.mark.parametrize("name", [
        "get_scheduler",
        "available_schedulers",
        "scheduler_items",
        "solve_dp",
        "solve_exact",
    ])
    def test_legacy_names_importable_with_warning(self, name, fig1_mset):
        import repro.api

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = getattr(repro.api, name)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        ), f"repro.api.{name} did not warn"
        # the shim is the real callable
        if name == "solve_dp":
            assert shim(fig1_mset).value == 8
        elif name == "get_scheduler":
            assert shim("greedy")(fig1_mset).reception_completion == 10

    def test_unknown_attribute_still_raises(self):
        import repro.api

        with pytest.raises(AttributeError):
            repro.api.not_a_real_name

    def test_old_import_paths_still_work(self, fig1_mset):
        # pre-façade call sites must keep working unchanged
        from repro.algorithms.registry import available_schedulers, get_scheduler
        from repro.core.brute_force import solve_exact
        from repro.core.dp import solve_dp

        assert "greedy+reversal" in available_schedulers()
        assert get_scheduler("greedy+reversal")(fig1_mset).reception_completion == 8
        assert solve_dp(fig1_mset).value == solve_exact(fig1_mset).value == 8
