"""Unified solver registry: specs, capabilities, bounds, error messages."""

import pytest

from repro.api import (
    SolverCapabilities,
    available_bounds,
    available_solvers,
    bound_values,
    capable_solvers,
    get_solver,
    parse_spec,
    resolve,
    solver_items,
)
from repro.core.multicast import MulticastSet
from repro.exceptions import SolverError


class TestSpecParsing:
    def test_bare_name(self):
        assert parse_spec("greedy+reversal") == ("greedy+reversal", {})

    def test_options(self):
        name, options = parse_spec("exact(max_destinations=12, node_budget=1000)")
        assert name == "exact"
        assert options == {"max_destinations": 12, "node_budget": 1000}

    def test_non_literal_value_passes_as_string(self):
        assert parse_spec("dp(mode=fast)") == ("dp", {"mode": "fast"})

    def test_malformed_specs_raise(self):
        with pytest.raises(SolverError, match="malformed"):
            parse_spec("dp(max_states)")
        with pytest.raises(SolverError, match="spec must be a string"):
            parse_spec(42)

    def test_resolve_returns_entry_and_options(self):
        entry, options = resolve("exact(max_destinations=11)")
        assert entry.name == "exact"
        assert options == {"max_destinations": 11}


class TestRegistry:
    def test_every_scheduler_plus_exact_solvers_registered(self):
        from repro.algorithms.registry import available_schedulers

        names = available_solvers()
        for scheduler in available_schedulers():
            assert scheduler in names
        assert "dp" in names and "exact" in names

    def test_unknown_solver_error_lists_available(self):
        with pytest.raises(SolverError) as exc:
            get_solver("simulated-annealing")
        message = str(exc.value)
        assert "unknown solver 'simulated-annealing'" in message
        assert "greedy+reversal" in message  # the message names alternatives

    def test_capability_metadata(self):
        dp = get_solver("dp")
        assert dp.capabilities.exact
        assert dp.capabilities.requires_k_types is not None
        assert "2k" in dp.capabilities.complexity
        exact = get_solver("exact")
        assert exact.capabilities.exact and exact.capabilities.max_n == 10
        greedy = get_solver("greedy")
        assert not greedy.capabilities.exact
        assert greedy.capabilities.complexity == "O(n log n)"

    def test_display_name_marks_exact_solvers(self):
        assert get_solver("dp").display_name == "dp (optimal)"
        assert get_solver("greedy").display_name == "greedy"

    def test_capable_solvers_excludes_exact_on_large_instances(self):
        big = MulticastSet.from_overheads((1, 1), [(1, 1)] * 20, 1)
        names = capable_solvers(big)
        assert "exact" not in names  # max_n=10
        assert "greedy+reversal" in names and "dp" in names

    def test_supports_honours_type_count(self):
        caps = SolverCapabilities(requires_k_types=1)
        two_types = MulticastSet.from_overheads((2, 3), [(1, 1), (2, 3)], 1)
        assert not caps.supports(two_types)

    def test_solver_items_sorted_and_callable(self, fig1_mset):
        entries = list(solver_items())
        assert [e.name for e in entries] == sorted(e.name for e in entries)
        out = get_solver("greedy+reversal")(fig1_mset)
        assert out.schedule.reception_completion == 8


class TestBounds:
    def test_bound_providers_registered(self):
        assert available_bounds() == ["first-hop", "homogeneous-relaxation"]

    def test_bound_values_are_valid_lower_bounds(self, fig1_mset):
        values = bound_values(fig1_mset)
        assert set(values) == {"first-hop", "homogeneous-relaxation"}
        for value in values.values():
            assert value <= 8  # the known optimum


class TestUnregisterSolver:
    def test_ad_hoc_solver_is_removed(self):
        import uuid

        from repro.api import (
            SolverCapabilities,
            SolverOutput,
            available_solvers,
            register_solver,
            unregister_solver,
        )
        from repro.core.greedy import greedy_schedule

        name = f"throwaway-{uuid.uuid4().hex[:8]}"

        @register_solver(name, "test", capabilities=SolverCapabilities(max_n=0))
        def _throwaway(mset, **options):
            return SolverOutput(schedule=greedy_schedule(mset))

        assert name in available_solvers()
        assert unregister_solver(name) is True
        assert name not in available_solvers()
        assert unregister_solver(name) is False

    @pytest.mark.parametrize("name", ["dp", "exact"])
    def test_builtin_oracles_reappear_on_the_next_lookup(self, name):
        """Dropping an oracle must not last the rest of the process —
        conformance sweeps would silently lose their optimality checks."""
        from repro.api import available_solvers, get_solver, unregister_solver

        assert unregister_solver(name) is True
        assert name in available_solvers()
        assert get_solver(name).capabilities.exact
