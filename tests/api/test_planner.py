"""Planner engine: caching, batching, determinism, error handling."""

import pytest

from repro.api import (
    BatchResult,
    Planner,
    PlanRequest,
    canonical_key,
    instance_fingerprint,
    plan,
    plan_batch,
)
from repro.core.multicast import MulticastSet
from repro.exceptions import ReproError, SolverError
from repro.workloads.clusters import bounded_ratio_cluster
from repro.workloads.generator import multicast_from_cluster


def _suite(count=12, n=8):
    out = []
    for seed in range(count):
        nodes = bounded_ratio_cluster(n + 1, seed)
        out.append(multicast_from_cluster(nodes, latency=1 + seed % 2, seed=seed))
    return out


class TestPlan:
    def test_plan_bare_instance_uses_default_solver(self, fig1_mset):
        result = Planner().plan(fig1_mset)
        assert result.solver == "greedy+reversal"
        assert result.value == 8
        assert not result.exact

    def test_plan_request_with_exact_solver(self, fig1_mset):
        result = Planner().plan(PlanRequest(instance=fig1_mset, solver="dp"))
        assert result.exact
        assert result.value == 8
        assert result.provenance["states_computed"] > 0
        # provenance carries the canonical equivalence-class key (shared
        # by renamed / power-of-two-rescaled submissions of this network)
        assert result.provenance["fingerprint"] == canonical_key(fig1_mset)

    def test_spec_options_reach_the_solver(self, fig1_mset):
        with pytest.raises(SolverError, match="node budget"):
            Planner().plan(fig1_mset, solver="exact(node_budget=1)")

    def test_request_options_override_spec_options(self, fig1_mset):
        result = Planner().plan(
            PlanRequest(
                instance=fig1_mset,
                solver="exact(node_budget=1)",
                options={"node_budget": 10_000},
            )
        )
        assert result.value == 8

    def test_include_bounds(self, fig1_mset):
        heur = Planner().plan(
            PlanRequest(instance=fig1_mset, solver="greedy", include_bounds=True)
        )
        assert not heur.bounds.opt_is_exact
        assert heur.bounds.opt_value <= 8
        exact = Planner().plan(
            PlanRequest(instance=fig1_mset, solver="dp", include_bounds=True)
        )
        assert exact.bounds.opt_is_exact and exact.bounds.measured_ratio == 1.0

    def test_tag_round_trips(self, fig1_mset):
        result = Planner().plan(PlanRequest(instance=fig1_mset, tag="job-7"))
        assert result.tag == "job-7"

    def test_unknown_spec_raises_with_alternatives(self, fig1_mset):
        with pytest.raises(SolverError, match="available"):
            Planner().plan(fig1_mset, solver="does-not-exist")

    def test_non_plannable_input_raises(self):
        with pytest.raises(ReproError, match="cannot plan"):
            Planner().plan("not an instance")


class TestCache:
    def test_hit_and_miss_accounting(self, fig1_mset):
        planner = Planner()
        first = planner.plan(fig1_mset, solver="dp")
        assert not first.cache_hit
        second = planner.plan(fig1_mset, solver="dp")
        assert second.cache_hit
        assert second.value == first.value
        assert second.schedule == first.schedule
        info = planner.cache_info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)

    def test_equal_content_shares_cache_entry(self, fig1_mset):
        # a separately-built but identical instance must hit the cache
        clone = MulticastSet.from_overheads(
            (2, 3), [(1, 1), (1, 1), (1, 1), (2, 3)], 1
        )
        planner = Planner()
        planner.plan(fig1_mset, solver="greedy")
        assert planner.plan(clone, solver="greedy").cache_hit

    def test_different_solver_or_options_miss(self, fig1_mset):
        planner = Planner()
        planner.plan(fig1_mset, solver="greedy")
        assert not planner.plan(fig1_mset, solver="greedy+reversal").cache_hit
        planner.plan(fig1_mset, solver="exact")
        assert not planner.plan(
            fig1_mset, solver="exact(max_destinations=11)"
        ).cache_hit

    def test_lru_eviction(self):
        planner = Planner(cache_size=4)
        for mset in _suite(count=6):
            planner.plan(mset)
        assert planner.cache_info().currsize == 4

    def test_cache_disabled(self, fig1_mset):
        planner = Planner(cache_size=0)
        planner.plan(fig1_mset)
        assert not planner.plan(fig1_mset).cache_hit
        assert planner.cache_info().currsize == 0

    def test_clear_cache(self, fig1_mset):
        planner = Planner()
        planner.plan(fig1_mset)
        planner.clear_cache()
        info = planner.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)


class TestBatch:
    def test_parallel_equals_serial(self):
        requests = [
            PlanRequest(instance=mset, solver=solver)
            for mset in _suite()
            for solver in ("greedy", "greedy+reversal", "dp")
        ]
        serial = Planner(cache_size=0).plan_batch(requests, jobs=1)
        parallel = Planner(cache_size=0).plan_batch(requests, jobs=4)
        assert serial.values() == parallel.values()
        assert [r.schedule for r in serial] == [r.schedule for r in parallel]
        assert [r.solver for r in serial] == [r.solver for r in parallel]

    def test_batch_preserves_submission_order(self):
        msets = _suite(count=8)
        batch = Planner().plan_batch(msets, jobs=3)
        for mset, result in zip(msets, batch):
            assert result.schedule.multicast == mset

    def test_batch_result_helpers(self, fig1_mset):
        batch = Planner().plan_batch(
            [PlanRequest(instance=fig1_mset, solver=s) for s in ("greedy", "dp")]
        )
        assert isinstance(batch, BatchResult)
        assert len(batch) == 2
        assert batch.best().solver == "dp"
        assert set(batch.by_solver()) == {"greedy", "dp"}

    def test_batch_shares_cache_across_duplicates(self, fig1_mset):
        batch = Planner().plan_batch([fig1_mset] * 5)
        assert batch.cache_hits == 4

    def test_on_error_skip_drops_failures(self, fig1_mset):
        big = MulticastSet.from_overheads((1, 2), [(1, 2)] * 15, 1)
        requests = [
            PlanRequest(instance=fig1_mset, solver="exact"),
            PlanRequest(instance=big, solver="exact"),  # over max_destinations
        ]
        with pytest.raises(SolverError):
            Planner().plan_batch(requests)
        batch = Planner().plan_batch(requests, on_error="skip")
        assert len(batch) == 1 and batch[0].value == 8

    def test_invalid_batch_parameters(self, fig1_mset):
        with pytest.raises(ReproError, match="jobs"):
            Planner().plan_batch([fig1_mset], jobs=0)
        with pytest.raises(ReproError, match="executor"):
            Planner().plan_batch([fig1_mset], executor="fiber")
        with pytest.raises(ReproError, match="on_error"):
            Planner().plan_batch([fig1_mset], on_error="retry")


class TestModuleLevelFacade:
    def test_plan_and_plan_batch(self, fig1_mset):
        assert plan(fig1_mset, solver="dp").value == 8
        assert plan_batch([fig1_mset] * 2, jobs=2).values() == (8.0, 8.0)


class TestFingerprint:
    def test_stable_and_content_based(self, fig1_mset):
        from repro.core.node import Node

        # same nodes supplied in a different order canonicalize identically
        clone = MulticastSet(
            Node("p0", 2, 3),
            [Node("d4", 2, 3), Node("d1", 1, 1), Node("d2", 1, 1), Node("d3", 1, 1)],
            1,
        )
        assert instance_fingerprint(fig1_mset) == instance_fingerprint(clone)
        other = fig1_mset.with_latency(2)
        assert instance_fingerprint(fig1_mset) != instance_fingerprint(other)


class TestCacheTiers:
    class DictTier:
        """Minimal CacheTier: a dict with hit/put counters."""

        name = "dict"

        def __init__(self):
            self.data = {}
            self.gets = 0
            self.puts = 0

        def get(self, key):
            self.gets += 1
            return self.data.get(key)

        def put(self, key, result):
            self.puts += 1
            self.data[key] = result

    def test_solves_write_through_to_tiers(self, fig1_mset):
        tier = self.DictTier()
        planner = Planner(cache_tiers=[tier])
        planner.plan(fig1_mset, solver="greedy")
        assert tier.puts == 1 and len(tier.data) == 1

    def test_lru_miss_falls_back_to_tier(self, fig1_mset):
        tier = self.DictTier()
        Planner(cache_tiers=[tier]).plan(fig1_mset, solver="greedy")
        cold = Planner(cache_tiers=[tier])  # empty LRU, shared tier
        hit = cold.plan(fig1_mset, solver="greedy")
        assert hit.cache_hit and hit.elapsed_s == 0.0
        info = cold.cache_info()
        assert (info.hits, info.tier_hits, info.misses) == (0, 1, 0)

    def test_tier_hit_promotes_into_lru(self, fig1_mset):
        tier = self.DictTier()
        Planner(cache_tiers=[tier]).plan(fig1_mset, solver="greedy")
        cold = Planner(cache_tiers=[tier])
        cold.plan(fig1_mset, solver="greedy")  # tier hit, promoted
        gets_before = tier.gets
        cold.plan(fig1_mset, solver="greedy")  # now a memory hit
        assert tier.gets == gets_before
        assert cold.cache_info().hits == 1

    def test_memory_hit_never_consults_tiers(self, fig1_mset):
        tier = self.DictTier()
        planner = Planner(cache_tiers=[tier])
        planner.plan(fig1_mset, solver="greedy")  # one tier miss, then solve
        gets_after_solve = tier.gets
        planner.plan(fig1_mset, solver="greedy")
        assert tier.gets == gets_after_solve  # LRU answered; tier untouched

    def test_cache_lookup_and_store_round_trip(self, fig1_mset):
        planner = Planner()
        request = PlanRequest(instance=fig1_mset, solver="greedy", tag="svc")
        assert planner.cache_lookup(request) is None
        from repro.api.planner import _plan_standalone

        planner.cache_store(request, _plan_standalone(request))
        result, tier = planner.cache_lookup(request)
        assert tier == "memory"
        assert result.cache_hit and result.tag == "svc"

    def test_add_cache_tier_validates_interface(self):
        planner = Planner()
        with pytest.raises(ReproError, match="lacks a callable"):
            planner.add_cache_tier(object())
        tier = self.DictTier()
        planner.add_cache_tier(tier)
        assert planner.cache_tiers == (tier,)
