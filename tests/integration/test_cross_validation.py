"""Integration: every solver/oracle in the library agrees with the others.

This is the reproduction's trust anchor — four independent implementations
(greedy + reversal heuristics, the Section 4 DP, branch-and-bound search,
exhaustive layered enumeration, and the discrete-event simulator) are run
on the same instances and their pairwise consistency relations asserted.
"""

import pytest

from repro.core.brute_force import solve_exact
from repro.core.dp import solve_dp
from repro.core.dp_table import OptimalTable
from repro.core.greedy import greedy_schedule
from repro.core.layered import enumerate_layered_schedules
from repro.core.leaf_reversal import reverse_leaves
from repro.simulation.executor import simulate_schedule
from repro.workloads.suites import instances


def small_instances(limit_n=6):
    for name in ("bounded-ratio", "two-class", "uniform-ratio", "power-of-two"):
        for n, _seed, m in instances(name):
            if n <= limit_n:
                yield name, m


class TestSolverAgreement:
    def test_dp_equals_exact_everywhere(self):
        for name, m in small_instances():
            dp = solve_dp(m).value
            exact = solve_exact(m).value
            assert dp == pytest.approx(exact), f"suite {name}"

    def test_exact_beats_or_ties_layered_enumeration(self):
        for name, m in small_instances(limit_n=5):
            exact = solve_exact(m).value
            best_layered = min(
                s.reception_completion for s in enumerate_layered_schedules(m)
            )
            assert exact <= best_layered + 1e-9, f"suite {name}"

    def test_table_matches_per_instance_dp(self):
        for name, m in small_instances():
            if m.num_types > 3:
                continue
            counts = m.destination_type_counts()
            table = OptimalTable(
                list(m.type_keys()),
                [c + 2 for c in counts],  # capacity beyond the instance
                latency=m.latency,
            )
            s = table.schedule_for(m)
            assert s.reception_completion == pytest.approx(
                solve_dp(m).value
            ), f"suite {name}"

    def test_optimal_schedules_simulate_exactly(self):
        for name, m in small_instances():
            sol = solve_dp(m)
            result = simulate_schedule(sol.schedule)
            assert result.reception_completion == pytest.approx(sol.value)

    def test_heuristic_sandwich(self):
        for name, m in small_instances():
            opt = solve_dp(m).value
            refined = reverse_leaves(greedy_schedule(m)).reception_completion
            greedy = greedy_schedule(m).reception_completion
            assert opt <= refined <= greedy + 1e-9, f"suite {name}"
