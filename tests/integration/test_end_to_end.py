"""Integration: the full user pipeline, generate -> schedule -> run -> save."""

import json

import pytest

from repro.algorithms.registry import get_scheduler
from repro.analysis.metrics import critical_path
from repro.collectives.broadcast import broadcast_schedule
from repro.core.dp import solve_dp
from repro.io.serialization import load_schedule, save_json
from repro.model.linear import instantiate
from repro.model.machines import lan_network
from repro.simulation.executor import simulate_schedule
from repro.viz.ascii_tree import render_tree
from repro.viz.gantt import gantt_for_schedule
from repro.workloads.clusters import bounded_ratio_cluster
from repro.workloads.generator import multicast_from_cluster


class TestPipelineSynthetic:
    def test_generate_schedule_simulate_save_load(self, tmp_path):
        nodes = bounded_ratio_cluster(14, seed=11)
        mset = multicast_from_cluster(nodes, latency=3, source="slowest")
        schedule = get_scheduler("greedy+reversal")(mset)
        result = simulate_schedule(schedule)
        assert result.reception_completion == schedule.reception_completion
        path = save_json(schedule, tmp_path / "schedule.json")
        loaded = load_schedule(path)
        assert loaded == schedule
        rerun = simulate_schedule(loaded)
        assert rerun.reception_times == result.reception_times

    def test_visualizations_render(self):
        nodes = bounded_ratio_cluster(8, seed=4)
        mset = multicast_from_cluster(nodes, latency=2)
        schedule = get_scheduler("greedy")(mset)
        tree = render_tree(schedule)
        chart = gantt_for_schedule(schedule)
        assert all(nd.name in tree for nd in mset.nodes)
        assert "S" in chart and "R" in chart

    def test_critical_path_explains_completion(self):
        nodes = bounded_ratio_cluster(10, seed=2)
        mset = multicast_from_cluster(nodes, latency=2)
        schedule = get_scheduler("greedy+reversal")(mset)
        path = critical_path(schedule)
        # recompute the completion along the critical path by hand
        t = 0.0
        for parent, child in zip(path, path[1:]):
            slot = schedule.slot_of(child)
            t = (
                schedule.reception_time(parent)
                + slot * mset.send(parent)
                + mset.latency
                + mset.receive(child)
            )
        assert t == pytest.approx(schedule.reception_completion)


class TestPipelineProfiledMachines:
    """The 'realistic cluster' path through the affine machine model."""

    def test_lan_broadcast_full_stack(self):
        net = lan_network({"ultra": 4, "pentium_ii": 3, "sparc5": 2, "sparc1": 2})
        mset = instantiate(net, "sparc10", message_length=4096)
        assert mset.correlated
        schedule = get_scheduler("greedy+reversal")(mset)
        result = simulate_schedule(schedule)
        assert result.reception_completion == schedule.reception_completion
        # limited heterogeneity: 4 machine generations => k <= 4, DP feasible
        assert mset.num_types <= 4
        opt = solve_dp(mset)
        assert opt.value <= schedule.reception_completion + 1e-9

    def test_latency_regime_decides_star_vs_tree(self):
        from repro.model.linear import LinearCost, MachineSpec, NetworkSpec

        machines = tuple(
            MachineSpec(f"m{i}", LinearCost(20, 0.02), LinearCost(24, 0.024))
            for i in range(8)
        )
        # overhead-dominated network: recruiting helpers must pay off
        lan = NetworkSpec(machines=machines, latency=LinearCost(1, 0.0001))
        mset = instantiate(lan, "m0", message_length=1024)
        greedy = get_scheduler("greedy+reversal")(mset).reception_completion
        star = get_scheduler("star")(mset).reception_completion
        assert greedy < star
        # latency-dominated network (long-haul): the star is unbeatable and
        # greedy should find it
        wan = NetworkSpec(machines=machines, latency=LinearCost(5000, 0.1))
        mset = instantiate(wan, "m0", message_length=1024)
        greedy = get_scheduler("greedy+reversal")(mset).reception_completion
        star = get_scheduler("star")(mset).reception_completion
        assert greedy == star

    def test_cluster_broadcast_helper(self):
        nodes = bounded_ratio_cluster(9, seed=8)
        s = broadcast_schedule(nodes, nodes[3].name, latency=2)
        assert s.multicast.n == 8
        assert s.multicast.source.name == nodes[3].name
