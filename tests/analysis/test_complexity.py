"""Unit tests for empirical complexity fitting."""

import numpy as np
import pytest

from repro.analysis.complexity import (
    COST_MODELS,
    best_model,
    fit_model,
    fit_nlogn,
    fit_power,
)
from repro.exceptions import ReproError


def synth(model, sizes, coeff=2.0, intercept=0.5):
    fn = COST_MODELS[model]
    return [coeff * fn(n) + intercept for n in sizes]


SIZES = [64, 128, 256, 512, 1024, 2048]


class TestFitModel:
    def test_recovers_coefficients(self):
        times = synth("nlogn", SIZES, coeff=3.0, intercept=1.0)
        fit = fit_model(SIZES, times, "nlogn")
        assert fit.coeff == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        times = synth("n", SIZES, coeff=2.0, intercept=0.0)
        fit = fit_model(SIZES, times, "n")
        assert fit.predict(100) == pytest.approx(200.0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            fit_model(SIZES, [1] * len(SIZES), "n!")

    def test_misaligned_rejected(self):
        with pytest.raises(ReproError):
            fit_model(SIZES, [1, 2], "n")

    def test_nlogn_convenience(self):
        fit = fit_nlogn(SIZES, synth("nlogn", SIZES))
        assert fit.model == "nlogn"


class TestBestModel:
    def test_prefers_generating_model_nlogn(self):
        times = synth("nlogn", SIZES)
        assert best_model(SIZES, times).model in ("nlogn", "n")
        # nlogn and n are close at these sizes; require near-perfect fit
        assert best_model(SIZES, times).r_squared > 0.999

    def test_prefers_quadratic_over_linear(self):
        times = synth("n^2", SIZES)
        assert best_model(SIZES, times).model == "n^2"

    def test_noise_tolerated(self):
        rng = np.random.default_rng(0)
        times = [
            t * (1 + 0.01 * rng.standard_normal()) for t in synth("n^2", SIZES)
        ]
        assert best_model(SIZES, times).model == "n^2"


class TestFitPower:
    def test_recovers_exponent(self):
        times = [5.0 * n**3 for n in SIZES]
        p, c = fit_power(SIZES, times)
        assert p == pytest.approx(3.0)
        assert c == pytest.approx(5.0)

    def test_fractional_exponent(self):
        times = [2.0 * n**1.5 for n in SIZES]
        p, _c = fit_power(SIZES, times)
        assert p == pytest.approx(1.5)

    def test_misaligned_rejected(self):
        with pytest.raises(ReproError):
            fit_power([1], [1, 2])
