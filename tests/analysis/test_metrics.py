"""Unit tests for analysis metrics."""

import pytest

from repro.analysis.metrics import (
    approximation_ratio,
    critical_path,
    speedup,
    summarize,
)
from repro.core.greedy import greedy_schedule
from repro.exceptions import ReproError


class TestRatios:
    def test_ratio(self):
        assert approximation_ratio(12, 8) == pytest.approx(1.5)

    def test_ratio_swapped_arguments_detected(self):
        with pytest.raises(ReproError, match="swapped"):
            approximation_ratio(8, 12)

    def test_ratio_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            approximation_ratio(0, 1)

    def test_speedup(self):
        assert speedup(10, 5) == pytest.approx(2.0)

    def test_speedup_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            speedup(-1, 5)


class TestSummarize:
    def test_basic_stats(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == pytest.approx(3)
        assert s.median == pytest.approx(3)
        assert s.minimum == 1 and s.maximum == 5

    def test_single_sample_std_zero(self):
        assert summarize([7]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize([])

    def test_p95(self):
        s = summarize(list(range(1, 101)))
        assert 95 <= s.p95 <= 96

    def test_str_contains_fields(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean=" in text and "p95=" in text


class TestCriticalPath:
    def test_path_from_source_to_last(self, fig1_mset):
        s = greedy_schedule(fig1_mset)
        path = critical_path(s)
        assert path[0] == 0
        assert s.reception_time(path[-1]) == s.reception_completion

    def test_path_follows_parent_edges(self, fig1_mset):
        s = greedy_schedule(fig1_mset)
        path = critical_path(s)
        for parent, child in zip(path, path[1:]):
            assert s.parent_of(child) == parent
