"""Unit tests for text tables."""

import pytest

from repro.analysis.tables import Table
from repro.exceptions import ReproError


@pytest.fixture
def table():
    t = Table("demo", ["name", "value"])
    t.add_row(["alpha", 1.5])
    t.add_row(["beta", 2])
    return t


class TestTable:
    def test_render_alignment(self, table):
        text = table.render()
        assert "== demo ==" in text
        assert "alpha" in text and "beta" in text

    def test_bool_formatting(self):
        t = Table("t", ["ok"])
        t.add_row([True])
        t.add_row([False])
        assert t.column("ok") == ["yes", "no"]

    def test_float_formatting_trims_integers(self):
        t = Table("t", ["x"])
        t.add_row([4.0])
        assert t.column("x") == ["4"]

    def test_wrong_arity_rejected(self, table):
        with pytest.raises(ReproError):
            table.add_row([1])

    def test_column_lookup(self, table):
        assert table.column("name") == ["alpha", "beta"]

    def test_unknown_column_rejected(self, table):
        with pytest.raises(ReproError):
            table.column("nope")

    def test_markdown(self, table):
        md = table.to_markdown()
        assert md.startswith("**demo**")
        assert "| name | value |" in md
        assert "| alpha | 1.5 |" in md

    def test_notes_rendered(self, table):
        table.add_note("hello world")
        assert "note: hello world" in table.render()
        assert "*hello world*" in table.to_markdown()

    def test_str_is_render(self, table):
        assert str(table) == table.render()

    def test_empty_table_renders(self):
        t = Table("empty", ["a"])
        assert "empty" in t.render()
