"""Unit tests for binomial-tree broadcast."""

import math

import pytest

from repro.algorithms.binomial import (
    binomial,
    binomial_fastest_first,
    binomial_tree_children,
)
from repro.core.multicast import MulticastSet


class TestShape:
    @pytest.mark.parametrize("size", [2, 3, 4, 5, 8, 13, 16])
    def test_spans_all_ids(self, size):
        children = binomial_tree_children(list(range(size)))
        seen = {0}
        for kids in children.values():
            seen.update(kids)
        assert seen == set(range(size))

    def test_power_of_two_root_degree(self):
        # over 16 nodes the root has log2(16) = 4 children
        children = binomial_tree_children(list(range(16)))
        assert len(children[0]) == 4

    def test_rounds_structure(self):
        children = binomial_tree_children(list(range(8)))
        # round 1: 0 -> 1; round 2: 0 -> 2, 1 -> 3; round 3: 0->4,1->5,2->6,3->7
        assert children[0] == [1, 2, 4]
        assert children[1] == [3, 5]
        assert children[2] == [6]
        assert children[3] == [7]

    def test_depth_is_logarithmic(self):
        size = 64
        children = binomial_tree_children(list(range(size)))
        depth = {0: 0}
        stack = [0]
        while stack:
            v = stack.pop()
            for c in children.get(v, ()):
                depth[c] = depth[v] + 1
                stack.append(c)
        assert max(depth.values()) == int(math.log2(size))


class TestUnderReceiveSendModel:
    def test_homogeneous_binomial_is_strong(self):
        # on a homogeneous cluster binomial should match greedy's completion
        # within a small factor (both are log-depth recruitment trees)
        from repro.core.greedy import greedy_schedule

        m = MulticastSet.from_overheads((1, 1), [(1, 1)] * 15, 1)
        ratio = (
            binomial(m).reception_completion
            / greedy_schedule(m).reception_completion
        )
        assert 1.0 <= ratio <= 1.5

    def test_heterogeneous_binomial_pays(self, two_class_mset):
        # on a fast/slow mix heterogeneity-aware greedy must win
        from repro.core.leaf_reversal import greedy_with_reversal

        assert (
            greedy_with_reversal(two_class_mset).reception_completion
            <= binomial(two_class_mset).reception_completion
        )

    def test_ff_equals_plain_on_correlated(self, two_class_mset):
        # canonical order already sorts by send overhead
        assert (
            binomial_fastest_first(two_class_mset).reception_completion
            == binomial(two_class_mset).reception_completion
        )
