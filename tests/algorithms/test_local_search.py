"""Unit tests for the local-search improver."""

import pytest

from repro.algorithms.local_search import improve_schedule, local_search_schedule
from repro.core.brute_force import solve_exact
from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import greedy_with_reversal
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.workloads.clusters import bounded_ratio_cluster
from repro.workloads.generator import multicast_from_cluster


class TestImproveSchedule:
    def test_never_worse_than_seed(self, small_random_msets):
        for m in small_random_msets:
            seed = greedy_with_reversal(m)
            result = improve_schedule(seed)
            assert (
                result.schedule.reception_completion
                <= seed.reception_completion + 1e-9
            )

    def test_improvement_property_consistent(self, fig1_mset):
        seed = greedy_schedule(fig1_mset)
        result = improve_schedule(seed)
        assert result.improvement == pytest.approx(
            result.seed_value - result.schedule.reception_completion
        )
        assert result.improvement >= 0

    def test_reaches_optimum_on_figure1(self, fig1_mset):
        # from the *unreversed* greedy (value 10) local search must find 8
        result = improve_schedule(greedy_schedule(fig1_mset))
        assert result.schedule.reception_completion == 8

    def test_improves_bad_seed_substantially(self):
        m = MulticastSet.from_overheads((2, 3), [(1, 1)] * 5 + [(2, 3)] * 2, 1)
        star = Schedule(m, {0: list(range(1, 8))})  # bad seed
        result = improve_schedule(star)
        assert result.schedule.reception_completion < star.reception_completion
        assert result.moves_applied > 0

    def test_local_optimum_for_small_instances(self, small_random_msets):
        # local search from greedy closes most of the gap; it must never
        # beat the true optimum, and stay within 10% of it on these sizes
        for m in small_random_msets:
            opt = solve_exact(m).value
            value = improve_schedule(greedy_with_reversal(m)).schedule.reception_completion
            assert opt <= value + 1e-9
            assert value <= 1.10 * opt

    def test_slotted_seed_compacted(self, fig1_mset):
        gapped = Schedule(fig1_mset, {0: [(1, 2), (2, 4), (3, 5), (4, 7)]})
        result = improve_schedule(gapped)
        assert result.schedule.is_canonical()
        assert (
            result.schedule.reception_completion
            <= gapped.reception_completion + 1e-9
        )

    def test_max_rounds_respected(self, two_class_mset):
        result = improve_schedule(
            greedy_schedule(two_class_mset), max_rounds=1
        )
        assert result.rounds <= 1

    def test_without_reversal(self, fig1_mset):
        result = improve_schedule(greedy_schedule(fig1_mset), apply_reversal=False)
        assert result.schedule.reception_completion <= 10


class TestRegisteredScheduler:
    def test_registered(self, fig1_mset):
        from repro.algorithms.registry import get_scheduler

        s = get_scheduler("greedy+ls")(fig1_mset)
        assert s.reception_completion == 8

    def test_never_above_greedy_reversal(self):
        for seed in range(4):
            nodes = bounded_ratio_cluster(12, seed)
            m = multicast_from_cluster(nodes, latency=2)
            assert (
                local_search_schedule(m).reception_completion
                <= greedy_with_reversal(m).reception_completion + 1e-9
            )
