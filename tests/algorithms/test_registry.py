"""Unit tests for the scheduler registry."""

import pytest

from repro.algorithms.registry import (
    available_schedulers,
    get_scheduler,
    register,
    scheduler_items,
)
from repro.exceptions import ReproError


class TestRegistry:
    def test_known_names_present(self):
        names = available_schedulers()
        for expected in ("greedy", "greedy+reversal", "fnf", "binomial", "postal",
                         "star", "star-naive", "chain", "random", "binomial-ff"):
            assert expected in names

    def test_get_scheduler_returns_callable(self, fig1_mset):
        fn = get_scheduler("greedy")
        assert fn(fig1_mset).reception_completion == 10

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ReproError, match="available"):
            get_scheduler("quantum")

    def test_double_registration_rejected(self):
        with pytest.raises(ReproError, match="twice"):
            register("greedy", "dupe")(lambda m: None)

    def test_items_sorted_with_descriptions(self):
        items = list(scheduler_items())
        names = [name for name, _fn, _desc in items]
        assert names == sorted(names)
        assert all(desc for _n, _f, desc in items)

    def test_every_scheduler_produces_valid_schedule(self, fig1_mset):
        for name, fn, _desc in scheduler_items():
            s = fn(fig1_mset)
            assert sorted(s.descendants(0)) == [1, 2, 3, 4], name
