"""Unit tests for the baseline schedulers."""

import pytest

from repro.algorithms.baselines import (
    linear_chain,
    random_tree,
    sequential_star,
    sequential_star_naive,
)


class TestStar:
    def test_star_structure(self, fig1_mset):
        s = sequential_star(fig1_mset)
        assert s.internal_nodes() == (0,)
        assert len(s.children_of(0)) == 4

    def test_star_serves_slow_receivers_first(self, fig1_mset):
        s = sequential_star(fig1_mset)
        first_child = s.children_of(0)[0][0]
        assert fig1_mset.receive(first_child) == 3  # the slow destination

    def test_star_beats_naive_star(self, fig1_mset):
        assert (
            sequential_star(fig1_mset).reception_completion
            <= sequential_star_naive(fig1_mset).reception_completion
        )

    def test_star_order_is_optimal_for_stars(self, small_random_msets):
        import itertools

        from repro.core.schedule import Schedule

        for m in small_random_msets:
            if m.n > 5:
                continue
            best = min(
                Schedule(m, {0: list(perm)}).reception_completion
                for perm in itertools.permutations(range(1, m.n + 1))
            )
            assert sequential_star(m).reception_completion == pytest.approx(best)

    def test_naive_star_times(self, fig1_mset):
        s = sequential_star_naive(fig1_mset)
        # d_i = 2i + 1; slow (node 4) last: r = 9 + 3 = 12
        assert s.reception_completion == 12


class TestChain:
    def test_chain_structure(self, fig1_mset):
        s = linear_chain(fig1_mset)
        assert s.parent_of(1) == 0
        assert s.parent_of(2) == 1
        assert s.parent_of(4) == 3

    def test_chain_completion(self, fig1_mset):
        # 0->1: d=3 r=4; 1->2: d=6 r=7; 2->3: d=9 r=10; 3->4: d=12 r=15
        assert linear_chain(fig1_mset).reception_completion == 15


class TestRandomTree:
    def test_deterministic_per_seed(self, fig1_mset):
        assert random_tree(fig1_mset, 7) == random_tree(fig1_mset, 7)

    def test_different_seeds_differ_somewhere(self, fig1_mset):
        trees = {random_tree(fig1_mset, seed) for seed in range(10)}
        assert len(trees) > 1

    def test_tree_is_spanning(self, two_class_mset):
        s = random_tree(two_class_mset, 3)
        assert sorted(s.descendants(0)) == list(range(1, two_class_mset.n + 1))
