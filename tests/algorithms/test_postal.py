"""Unit tests for the postal-model baseline [4]."""

import pytest

from repro.algorithms.postal import (
    effective_lambda,
    postal_count,
    postal_shape,
    postal_tree,
)
from repro.core.multicast import MulticastSet
from repro.exceptions import SolverError


class TestPostalCount:
    def test_lambda_one_doubles(self):
        # lambda = 1: N(t) = 2^t (classic binomial growth)
        assert [postal_count(t, 1) for t in range(6)] == [1, 2, 4, 8, 16, 32]

    def test_lambda_two_fibonacci(self):
        # lambda = 2: N(t) follows the Fibonacci numbers
        assert [postal_count(t, 2) for t in range(8)] == [1, 1, 2, 3, 5, 8, 13, 21]

    def test_negative_time_zero(self):
        assert postal_count(-3, 2) == 0

    def test_bad_lambda_rejected(self):
        with pytest.raises(SolverError):
            postal_count(5, 0)


class TestPostalShape:
    @pytest.mark.parametrize("m,lam", [(1, 1), (5, 1), (8, 2), (13, 2), (9, 3)])
    def test_shape_covers_exactly_m(self, m, lam):
        parents, arrivals = postal_shape(m, lam)
        assert len(parents) == m
        assert parents[0] == -1 and arrivals[0] == 0.0

    def test_arrivals_respect_lambda(self):
        parents, arrivals = postal_shape(8, 2)
        for pos in range(1, 8):
            assert arrivals[pos] >= arrivals[parents[pos]] + 2

    def test_optimal_horizon(self):
        # 13 nodes with lambda=2 need exactly t=6 (N(6)=13); every arrival
        # must fit within it
        _parents, arrivals = postal_shape(13, 2)
        assert max(arrivals) <= 6

    def test_zero_nodes_rejected(self):
        with pytest.raises(SolverError):
            postal_shape(0, 2)


class TestPostalTree:
    def test_effective_lambda_homogeneous(self):
        m = MulticastSet.from_overheads((1, 1), [(1, 1)] * 4, 1)
        # (1 + 1 + 1) / 1 = 3
        assert effective_lambda(m) == 3

    def test_valid_schedule(self, two_class_mset):
        s = postal_tree(two_class_mset)
        assert sorted(s.descendants(0)) == list(range(1, two_class_mset.n + 1))

    def test_fastest_nodes_recruited_earliest(self, two_class_mset):
        s = postal_tree(two_class_mset)
        mset = two_class_mset
        # internal (sending) nodes should be biased toward fast machines
        internal = [v for v in s.internal_nodes() if v != 0]
        if internal:
            mean_internal = sum(mset.send(v) for v in internal) / len(internal)
            leaves = s.leaves()
            mean_leaf = sum(mset.send(v) for v in leaves) / len(leaves)
            assert mean_internal <= mean_leaf + 1e-9

    def test_competitive_on_homogeneous(self):
        from repro.core.greedy import greedy_schedule

        m = MulticastSet.from_overheads((2, 2), [(2, 2)] * 12, 2)
        postal = postal_tree(m).reception_completion
        greedy = greedy_schedule(m).reception_completion
        assert postal <= 1.5 * greedy
