"""Shared fixtures and the pinned Hypothesis profile for the test-suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.multicast import MulticastSet
from repro.workloads.clusters import bounded_ratio_cluster, two_class_cluster
from repro.workloads.generator import multicast_from_cluster

# ----------------------------------------------------------------------
# Hypothesis: one shared settings profile for every property test.
#
# The suite's strategies (tests/strategies.py) solve NP-hard oracles per
# example, so wall-clock per example is noisy — a per-example deadline
# would flake on loaded CI workers.  CI runs derandomized so a red build
# reproduces locally from the committed database-free seed; local runs
# keep fresh randomness for exploration.  ``print_blob`` makes every
# failure reproducible via ``@reproduce_failure`` in both modes.
# ----------------------------------------------------------------------
_COMMON = dict(
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", **_COMMON)
settings.register_profile("ci", derandomize=True, **_COMMON)
settings.load_profile("ci" if os.environ.get("CI") else "dev")


@pytest.fixture
def fig1_mset() -> MulticastSet:
    """The paper's Figure 1 instance."""
    return MulticastSet.from_overheads(
        source=(2, 3),
        destinations=[(1, 1), (1, 1), (1, 1), (2, 3)],
        latency=1,
    )


@pytest.fixture
def homogeneous_mset() -> MulticastSet:
    """Six identical workstations (the k=1 regime)."""
    return MulticastSet.from_overheads((1, 1), [(1, 1)] * 6, latency=1)


@pytest.fixture
def small_random_msets() -> list[MulticastSet]:
    """A deterministic batch of small bounded-ratio instances."""
    out = []
    for seed in range(6):
        nodes = bounded_ratio_cluster(6, seed)
        out.append(multicast_from_cluster(nodes, latency=seed % 3 + 1, seed=seed))
    return out


@pytest.fixture
def two_class_mset() -> MulticastSet:
    """A 12-node fast/slow instance."""
    return multicast_from_cluster(two_class_cluster(8, 4), latency=1)
