"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.multicast import MulticastSet
from repro.workloads.clusters import bounded_ratio_cluster, two_class_cluster
from repro.workloads.generator import multicast_from_cluster


@pytest.fixture
def fig1_mset() -> MulticastSet:
    """The paper's Figure 1 instance."""
    return MulticastSet.from_overheads(
        source=(2, 3),
        destinations=[(1, 1), (1, 1), (1, 1), (2, 3)],
        latency=1,
    )


@pytest.fixture
def homogeneous_mset() -> MulticastSet:
    """Six identical workstations (the k=1 regime)."""
    return MulticastSet.from_overheads((1, 1), [(1, 1)] * 6, latency=1)


@pytest.fixture
def small_random_msets() -> list[MulticastSet]:
    """A deterministic batch of small bounded-ratio instances."""
    out = []
    for seed in range(6):
        nodes = bounded_ratio_cluster(6, seed)
        out.append(multicast_from_cluster(nodes, latency=seed % 3 + 1, seed=seed))
    return out


@pytest.fixture
def two_class_mset() -> MulticastSet:
    """A 12-node fast/slow instance."""
    return multicast_from_cluster(two_class_cluster(8, 4), latency=1)
