"""Hypothesis strategies for the property-based tests.

Instances drawn here always satisfy the paper's assumptions: positive
integer overheads and latency, and the overhead-correlation condition
(strictly larger sends imply strictly larger receives; equal sends share a
receive).  Strategies return the instance so shrinking produces minimal
counterexamples in model terms.

The module registers :func:`multicast_sets` as the canonical strategy for
:class:`~repro.core.multicast.MulticastSet` in Hypothesis's type registry,
so ``st.from_type(MulticastSet)`` (and inference inside ``st.builds``)
resolves to correlated instances; all examples execute under the shared
settings profile pinned in ``tests/conftest.py`` (no deadline, CI
derandomized) so property runs are reproducible across CI and local runs.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import strategies as st

from repro.core.contention import MultiGroupInstance
from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.core.repair import MembershipDelta, apply_delta

__all__ = [
    "correlated_types",
    "multicast_sets",
    "uniform_ratio_multicasts",
    "power_of_two_multicasts",
    "membership_deltas",
    "delta_chains",
    "multi_group_instances",
]


@st.composite
def correlated_types(
    draw, *, max_types: int = 4, max_send: int = 12, max_ratio: int = 4
) -> List[Tuple[int, int]]:
    """Distinct (send, receive) pairs satisfying the correlation condition."""
    k = draw(st.integers(min_value=1, max_value=max_types))
    sends = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=max_send),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
    )
    receives: List[int] = []
    prev = 0
    for s in sends:
        r = draw(st.integers(min_value=max(prev + 1, 1), max_value=max(prev + 1, s * max_ratio)))
        receives.append(r)
        prev = r
    return list(zip(sends, receives))


@st.composite
def multicast_sets(
    draw,
    *,
    min_n: int = 1,
    max_n: int = 8,
    max_types: int = 4,
    max_send: int = 12,
    max_latency: int = 5,
) -> MulticastSet:
    """Random correlated instances with type structure."""
    types = draw(correlated_types(max_types=max_types, max_send=max_send))
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    dest_types = draw(
        st.lists(st.sampled_from(types), min_size=n, max_size=n)
    )
    source_type = draw(st.sampled_from(types))
    latency = draw(st.integers(min_value=1, max_value=max_latency))
    return MulticastSet.from_overheads(source_type, dest_types, latency)


@st.composite
def uniform_ratio_multicasts(
    draw, *, min_n: int = 1, max_n: int = 7, max_ratio: int = 3
) -> MulticastSet:
    """Instances where every node has the same integer ratio."""
    ratio = draw(st.integers(min_value=1, max_value=max_ratio))
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    sends = draw(
        st.lists(st.integers(min_value=1, max_value=10), min_size=n + 1, max_size=n + 1)
    )
    latency = draw(st.integers(min_value=1, max_value=4))
    pairs = [(s, ratio * s) for s in sends]
    return MulticastSet.from_overheads(pairs[0], pairs[1:], latency)


@st.composite
def power_of_two_multicasts(
    draw,
    *,
    min_n: int = 2,
    max_n: int = 6,
    max_ratio: int = 3,
    max_exp: int = 3,
    guarantee_exchange_pair: bool = False,
) -> MulticastSet:
    """Lemma 3's habitat: power-of-two sends, uniform integer ratio.

    With ``guarantee_exchange_pair`` the instance is constructed directly
    to be usable by the exchange tests instead of hoping a free draw is:
    the destination set always contains two nodes of a *high* send
    magnitude and two of a strictly smaller *low* magnitude (send ratio
    >= 2, an integer), so a random schedule almost always has an
    exchangeable pair (a big-send node delivered before a smaller-send
    node) and :func:`hypothesis.assume` rejects next to nothing — the
    free draw produces many all-equal-overhead instances, which is what
    tripped Hypothesis's ``filter_too_much`` health check.  The flag is
    off by default so other properties keep the full domain (tiny and
    homogeneous instances included).
    """
    ratio = draw(st.integers(min_value=1, max_value=max_ratio))
    if guarantee_exchange_pair:
        min_n = max(4, min_n)
        max_n = max(min_n, max_n)
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    if guarantee_exchange_pair:
        lo = draw(st.integers(min_value=0, max_value=max_exp - 1))
        hi = draw(st.integers(min_value=lo + 1, max_value=max_exp))
        # two high-send and two low-send destinations guaranteed; the rest
        # (and the source) draw freely across the whole exponent range
        dest_exps = [hi, hi, lo, lo] + [
            draw(st.integers(min_value=0, max_value=max_exp)) for _ in range(n - 4)
        ]
        exps = [draw(st.integers(min_value=0, max_value=max_exp))] + dest_exps
    else:
        exps = draw(
            st.lists(
                st.integers(min_value=0, max_value=max_exp),
                min_size=n + 1,
                max_size=n + 1,
            )
        )
    latency = draw(st.integers(min_value=1, max_value=3))
    pairs = [(2**e, ratio * 2**e) for e in exps]
    return MulticastSet.from_overheads(pairs[0], pairs[1:], latency)


@st.composite
def membership_deltas(draw, *, max_batch: int = 3) -> MembershipDelta:
    """Structurally valid deltas (shape only, not membership-checked).

    Joins and handover replacements draw fresh correlated nodes; the
    session/`apply_delta` layer is what validates a delta *against a
    membership*, so this strategy exercises the wire/validation surface.
    For chains guaranteed applicable to a concrete instance use
    :func:`delta_chains`.
    """
    seq = draw(st.integers(min_value=1, max_value=99))
    types = draw(correlated_types(max_types=3, max_send=8))
    names = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True)

    def node(prefix: str, i: int):
        send, receive = draw(st.sampled_from(types))
        return Node(f"{prefix}{i}", send, receive)

    joins = tuple(
        node("j", i)
        for i in range(draw(st.integers(min_value=0, max_value=max_batch)))
    )
    leaves = tuple(
        draw(
            st.lists(
                names,
                min_size=0,
                max_size=max_batch,
                unique=True,
            )
        )
    )
    handovers = tuple(
        (draw(names), node("h", i))
        for i in range(draw(st.integers(min_value=0, max_value=max_batch)))
    )
    return MembershipDelta(seq=seq, joins=joins, leaves=leaves, handovers=handovers)


@st.composite
def delta_chains(
    draw, *, max_len: int = 5, max_batch: int = 2, **multicast_kwargs
) -> Tuple[MulticastSet, Tuple[MembershipDelta, ...]]:
    """``(base instance, applicable delta chain)`` that never empties the group.

    Every delta is validated by actually folding it through
    :func:`repro.core.repair.apply_delta` as it is drawn, so the chain is
    applicable by construction: joins and handover replacements clone the
    overheads of surviving members (keeping the correlation assumption),
    leaves are only drawn while the group keeps a destination afterwards,
    sequence numbers are consecutive from 1.  Shrinking trims both the
    chain and the batches, so failures minimize to short chains of small
    deltas over small instances.
    """
    base = draw(multicast_sets(**multicast_kwargs))
    current = base
    deltas: List[MembershipDelta] = []
    length = draw(st.integers(min_value=1, max_value=max_len))
    counter = 0
    for seq in range(1, length + 1):
        taken = {node.name for node in current.nodes}
        survivors = list(current.destinations)
        joins: List[Node] = []
        leaves: List[str] = []
        handovers: List[Tuple[str, Node]] = []

        def fresh(template: Node) -> Node:
            nonlocal counter
            counter += 1
            name = f"m{counter}"
            while name in taken:  # pragma: no cover - m* names are reserved
                counter += 1
                name = f"m{counter}"
            taken.add(name)
            return template.renamed(name)

        for _ in range(draw(st.integers(min_value=0, max_value=max_batch))):
            joins.append(fresh(draw(st.sampled_from(survivors))))
        for _ in range(draw(st.integers(min_value=0, max_value=max_batch))):
            if not survivors or len(survivors) + len(joins) + len(handovers) < 2:
                break  # the group must keep a destination
            victim = survivors.pop(
                draw(st.integers(min_value=0, max_value=len(survivors) - 1))
            )
            if draw(st.booleans()):
                handovers.append((victim.name, fresh(victim)))
            else:
                leaves.append(victim.name)
        delta = MembershipDelta(
            seq=seq,
            joins=tuple(joins),
            leaves=tuple(leaves),
            handovers=tuple(handovers),
        )
        current = apply_delta(current, delta)
        deltas.append(delta)
    return base, tuple(deltas)


@st.composite
def multi_group_instances(
    draw, *, min_groups: int = 2, max_groups: int = 4, **multicast_kwargs
) -> MultiGroupInstance:
    """Concurrent groups contending for shared senders, by construction.

    One :func:`power_of_two_multicasts` template supplies the node types;
    every group reuses the template *source node verbatim* (so at least
    one sender is shared across all groups) and draws a non-empty subset
    of the template destinations, each either shared verbatim with the
    other groups or renamed into a group-private clone.  Shared names
    keep one ``type_key`` everywhere because they are literally the same
    :class:`~repro.core.node.Node`, which is exactly the consistency rule
    :class:`~repro.core.contention.MultiGroupInstance` enforces.
    Weights are drawn on half the instances so both objectives get
    exercised.  Shrinking trims groups, then destinations per group.
    """
    template = draw(power_of_two_multicasts(**multicast_kwargs))
    n_groups = draw(st.integers(min_value=min_groups, max_value=max_groups))
    groups: List[MulticastSet] = []
    for g in range(n_groups):
        picks = draw(
            st.lists(
                st.sampled_from(range(len(template.destinations))),
                min_size=1,
                max_size=len(template.destinations),
                unique=True,
            )
        )
        dests: List[Node] = []
        for i in sorted(picks):
            node = template.destinations[i]
            if draw(st.booleans()):
                dests.append(node)  # shared verbatim across groups
            else:
                dests.append(node.renamed(f"p{g}d{i}"))
        groups.append(
            MulticastSet(
                template.source,
                dests,
                template.latency,
                validate_correlation=template.correlated,
            )
        )
    weights = None
    if draw(st.booleans()):
        weights = tuple(
            draw(st.integers(min_value=1, max_value=4)) for _ in range(n_groups)
        )
    return MultiGroupInstance(groups, weights=weights)


# canonical strategy for the model type: st.from_type(MulticastSet) and
# type inference in st.builds() draw correlated instances everywhere
st.register_type_strategy(MulticastSet, multicast_sets())
# and for deltas: st.from_type(MembershipDelta) draws structurally valid
# join/leave/handover batches
st.register_type_strategy(MembershipDelta, membership_deltas())
# and for multi-group instances: st.from_type(MultiGroupInstance) draws
# concurrent groups sharing sender nodes by construction
st.register_type_strategy(MultiGroupInstance, multi_group_instances())
