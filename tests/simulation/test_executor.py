"""Unit tests for schedule execution on the simulated HNOW."""

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.core.schedule import Schedule
from repro.exceptions import SimulationError
from repro.simulation.executor import simulate_schedule
from repro.simulation.jitter import proportional_jitter, uniform_jitter


class TestExactExecution:
    def test_figure1_greedy_verified(self, fig1_mset):
        result = simulate_schedule(greedy_schedule(fig1_mset))
        assert result.reception_completion == 10

    def test_all_schedulers_verify(self, small_random_msets):
        from repro.algorithms.registry import available_schedulers, get_scheduler

        for m in small_random_msets:
            for name in available_schedulers():
                schedule = get_scheduler(name)(m)
                result = simulate_schedule(schedule)  # raises on divergence
                assert result.reception_completion == pytest.approx(
                    schedule.reception_completion
                )

    def test_slotted_schedule_with_idle(self, fig1_mset):
        gapped = Schedule(fig1_mset, {0: [(1, 1), (2, 3)], 1: [(3, 2), (4, 5)]})
        result = simulate_schedule(gapped)
        assert result.reception_completion == pytest.approx(
            gapped.reception_completion
        )

    def test_trace_has_n_sends_and_receives(self, fig1_mset):
        result = simulate_schedule(greedy_schedule(fig1_mset))
        sends = [iv for iv in result.trace.intervals if iv.kind == "send"]
        recvs = [iv for iv in result.trace.intervals if iv.kind == "receive"]
        assert len(sends) == fig1_mset.n
        assert len(recvs) == fig1_mset.n

    def test_flights_have_latency(self, fig1_mset):
        result = simulate_schedule(greedy_schedule(fig1_mset))
        for flight in result.trace.flights:
            assert flight.arrival - flight.departure == pytest.approx(
                fig1_mset.latency
            )

    def test_busy_durations_match_overheads(self, fig1_mset):
        result = simulate_schedule(greedy_schedule(fig1_mset))
        for iv in result.trace.intervals:
            expected = (
                fig1_mset.send(iv.node)
                if iv.kind == "send"
                else fig1_mset.receive(iv.node)
            )
            assert iv.end - iv.start == pytest.approx(expected)

    def test_delivery_completion_property(self, fig1_mset):
        s = reverse_leaves(greedy_schedule(fig1_mset))
        result = simulate_schedule(s)
        assert result.delivery_completion == pytest.approx(s.delivery_completion)

    def test_events_counted(self, fig1_mset):
        result = simulate_schedule(greedy_schedule(fig1_mset))
        assert result.events_processed > 0


class TestJitteredExecution:
    def test_jitter_with_verify_rejected(self, fig1_mset):
        with pytest.raises(SimulationError, match="jitter"):
            simulate_schedule(
                greedy_schedule(fig1_mset), jitter=uniform_jitter(0.1), verify=True
            )

    def test_jitter_changes_times_deterministically(self, fig1_mset):
        s = greedy_schedule(fig1_mset)
        a = simulate_schedule(s, jitter=uniform_jitter(0.3, seed=1), verify=False)
        b = simulate_schedule(s, jitter=uniform_jitter(0.3, seed=1), verify=False)
        c = simulate_schedule(s, jitter=uniform_jitter(0.3, seed=2), verify=False)
        assert a.reception_times == b.reception_times
        assert a.reception_times != c.reception_times

    def test_jitter_bounded_effect(self, fig1_mset):
        # total shift is at most amplitude * tree depth on any path
        s = greedy_schedule(fig1_mset)
        amp = 0.25
        result = simulate_schedule(s, jitter=uniform_jitter(amp, seed=3), verify=False)
        for v in range(1, fig1_mset.n + 1):
            depth = 0
            w = v
            while w != 0:
                w = s.parent_of(w)
                depth += 1
            assert abs(result.reception_times[v] - s.reception_time(v)) <= amp * depth + 1e-9

    def test_proportional_jitter_fraction_validated(self):
        with pytest.raises(ValueError):
            proportional_jitter(1.0, 1.5)

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            uniform_jitter(-0.1)

    def test_no_overlap_even_under_jitter(self, small_random_msets):
        for m in small_random_msets:
            s = greedy_schedule(m)
            result = simulate_schedule(
                s, jitter=proportional_jitter(m.latency, 0.2, seed=5), verify=False
            )
            result.trace.assert_no_overlap()
