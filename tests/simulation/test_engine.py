"""Unit tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.at(3.0, lambda: seen.append("c"))
        sim.at(1.0, lambda: seen.append("a"))
        sim.at(2.0, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        sim = Simulator()
        seen = []
        for tag in "abc":
            sim.at(1.0, lambda t=tag: seen.append(t))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.at(5.0, lambda: sim.after(2.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [7.5]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="past"):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="negative"):
            sim.after(-1, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        seen = []
        ev = sim.at(1.0, lambda: seen.append("x"))
        Simulator.cancel(ev)
        sim.run()
        assert seen == []


class TestExecution:
    def test_run_returns_final_time(self):
        sim = Simulator()
        sim.at(4.0, lambda: None)
        assert sim.run() == 4.0

    def test_run_until_horizon(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda: seen.append(1))
        sim.at(10.0, lambda: seen.append(10))
        assert sim.run(until=5.0) == 5.0
        assert seen == [1]
        # remaining events still runnable afterwards
        sim.run()
        assert seen == [1, 10]

    def test_handlers_can_chain(self):
        sim = Simulator()
        count = []

        def tick():
            if len(count) < 5:
                count.append(sim.now)
                sim.after(1.0, tick)

        sim.at(0.0, tick)
        sim.run()
        assert count == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_step_single(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda: seen.append("a"))
        sim.at(2.0, lambda: seen.append("b"))
        assert sim.step() is True
        assert seen == ["a"]
        assert sim.step() is True and sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 7

    def test_not_reentrant(self):
        sim = Simulator()

        def evil():
            sim.run()

        sim.at(1.0, evil)
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()
