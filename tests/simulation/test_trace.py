"""Unit tests for simulation traces."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.trace import Flight, Interval, Trace


class TestInterval:
    def test_valid(self):
        iv = Interval(1, "send", 0.0, 2.0, peer=2)
        assert iv.end - iv.start == 2.0

    def test_empty_interval_rejected(self):
        with pytest.raises(SimulationError):
            Interval(1, "send", 2.0, 2.0, peer=2)

    def test_negative_interval_rejected(self):
        with pytest.raises(SimulationError):
            Interval(1, "receive", 3.0, 2.0, peer=0)


class TestTrace:
    def test_busy_and_flight_accumulate(self):
        tr = Trace()
        tr.busy(0, "send", 0, 2, peer=1)
        tr.flight(0, 1, 2, 3)
        assert len(tr.intervals) == 1 and len(tr.flights) == 1
        assert tr.flights[0] == Flight(0, 1, 2, 3)

    def test_by_node_sorted(self):
        tr = Trace()
        tr.busy(0, "send", 4, 6, peer=2)
        tr.busy(0, "send", 0, 2, peer=1)
        tr.busy(1, "receive", 3, 4, peer=0)
        by = tr.by_node()
        assert [iv.start for iv in by[0]] == [0, 4]
        assert set(by) == {0, 1}

    def test_no_overlap_passes(self):
        tr = Trace()
        tr.busy(0, "send", 0, 2, peer=1)
        tr.busy(0, "send", 2, 4, peer=2)
        tr.assert_no_overlap()

    def test_overlap_detected(self):
        tr = Trace()
        tr.busy(0, "send", 0, 3, peer=1)
        tr.busy(0, "receive", 2, 4, peer=2)
        with pytest.raises(SimulationError, match="overlapping"):
            tr.assert_no_overlap()

    def test_overlap_on_different_nodes_is_fine(self):
        tr = Trace()
        tr.busy(0, "send", 0, 3, peer=1)
        tr.busy(1, "receive", 2, 4, peer=0)
        tr.assert_no_overlap()

    def test_makespan(self):
        tr = Trace()
        assert tr.makespan == 0.0
        tr.busy(0, "send", 0, 5, peer=1)
        tr.busy(1, "receive", 6, 7, peer=0)
        assert tr.makespan == 7

    def test_utilization(self):
        tr = Trace()
        tr.busy(0, "send", 0, 2, peer=1)
        tr.busy(0, "send", 4, 6, peer=2)
        assert tr.utilization(0, 8) == pytest.approx(0.5)

    def test_utilization_bad_horizon(self):
        with pytest.raises(SimulationError):
            Trace().utilization(0, 0)
