"""Unit tests for the simulated nodes and network (busy-state enforcement)."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.engine import Simulator
from repro.simulation.network import SimNetwork, SimNode
from repro.simulation.trace import Trace


@pytest.fixture
def world():
    sim = Simulator()
    trace = Trace()
    return sim, trace


class TestSimNode:
    def test_send_occupies_and_fires(self, world):
        sim, trace = world
        node = SimNode(0, send_overhead=3, receive_overhead=1, sim=sim, trace=trace)
        fired = []
        sim.at(0.0, lambda: node.begin_send(1, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [3.0]
        assert node.busy_until == 3.0
        assert trace.intervals[0].kind == "send"

    def test_receive_records_reception_time(self, world):
        sim, trace = world
        node = SimNode(1, send_overhead=1, receive_overhead=4, sim=sim, trace=trace)
        sim.at(2.0, lambda: node.begin_receive(0, lambda: None))
        sim.run()
        assert node.reception_time == 6.0

    def test_overlapping_operations_rejected(self, world):
        sim, trace = world
        node = SimNode(0, send_overhead=5, receive_overhead=1, sim=sim, trace=trace)
        sim.at(0.0, lambda: node.begin_send(1, lambda: None))
        sim.at(2.0, lambda: node.begin_send(2, lambda: None))
        with pytest.raises(SimulationError, match="busy"):
            sim.run()

    def test_back_to_back_operations_allowed(self, world):
        sim, trace = world
        node = SimNode(0, send_overhead=2, receive_overhead=1, sim=sim, trace=trace)
        sim.at(0.0, lambda: node.begin_send(1, lambda: None))
        sim.at(2.0, lambda: node.begin_send(2, lambda: None))
        sim.run()
        assert node.busy_until == 4.0
        trace.assert_no_overlap()

    def test_double_reception_rejected(self, world):
        sim, trace = world
        node = SimNode(1, send_overhead=1, receive_overhead=1, sim=sim, trace=trace)
        sim.at(0.0, lambda: node.begin_receive(0, lambda: None))
        sim.at(5.0, lambda: node.begin_receive(2, lambda: None))
        with pytest.raises(SimulationError, match="twice"):
            sim.run()


class TestSimNetwork:
    def test_transmit_applies_latency(self, world):
        sim, trace = world
        net = SimNetwork(7.0, sim, trace)
        arrived = []
        sim.at(1.0, lambda: net.transmit(0, 1, lambda: arrived.append(sim.now)))
        sim.run()
        assert arrived == [8.0]
        assert trace.flights[0].departure == 1.0
        assert trace.flights[0].arrival == 8.0

    def test_nonpositive_latency_rejected(self, world):
        sim, trace = world
        with pytest.raises(SimulationError):
            SimNetwork(0.0, sim, trace)

    def test_jitter_applied_and_clamped(self, world):
        sim, trace = world
        # adversarial jitter that would make the flight negative: clamped
        net = SimNetwork(1.0, sim, trace, jitter=lambda a, b: -100.0)
        arrived = []
        sim.at(0.0, lambda: net.transmit(0, 1, lambda: arrived.append(sim.now)))
        sim.run()
        assert arrived and arrived[0] > 0  # clamped to a positive flight

    def test_jitter_receives_edge_identity(self, world):
        sim, trace = world
        seen = []

        def jitter(sender, receiver):
            seen.append((sender, receiver))
            return 0.0

        net = SimNetwork(1.0, sim, trace, jitter=jitter)
        sim.at(0.0, lambda: net.transmit(3, 9, lambda: None))
        sim.run()
        assert seen == [(3, 9)]
