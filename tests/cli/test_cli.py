"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli.main import main
from repro.io.serialization import load_multicast, load_schedule, save_json


@pytest.fixture
def instance_file(fig1_mset, tmp_path):
    return str(save_json(fig1_mset, tmp_path / "instance.json"))


class TestGenerate:
    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "-n", "5", "--seed", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro/multicast-v1"
        assert len(payload["destinations"]) == 5

    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "inst.json"
        assert main(["generate", "-n", "4", "-o", str(out)]) == 0
        assert load_multicast(out).n == 4

    def test_generate_two_class(self, capsys):
        assert main(["generate", "--kind", "two-class", "-n", "6"]) == 0
        payload = json.loads(capsys.readouterr().out)
        sends = {d["send"] for d in payload["destinations"]}
        assert len(sends) <= 2


class TestSchedule:
    def test_schedule_default_algorithm(self, instance_file, capsys):
        assert main(["schedule", instance_file]) == 0
        out = capsys.readouterr().out
        assert "R_T=8" in out

    def test_schedule_tree_output(self, instance_file, capsys):
        assert main(["schedule", instance_file, "--algorithm", "greedy", "--tree"]) == 0
        out = capsys.readouterr().out
        assert "[source]" in out and "R_T=10" in out

    def test_schedule_exact(self, instance_file, capsys):
        assert main(["schedule", instance_file, "--algorithm", "exact"]) == 0
        assert "R_T=8" in capsys.readouterr().out

    def test_schedule_dp(self, instance_file, capsys):
        assert main(["schedule", instance_file, "--algorithm", "dp"]) == 0
        assert "R_T=8" in capsys.readouterr().out

    def test_schedule_writes_output(self, instance_file, tmp_path, capsys):
        out = tmp_path / "sched.json"
        assert main(["schedule", instance_file, "-o", str(out)]) == 0
        assert load_schedule(out).reception_completion == 8

    def test_schedule_exact_marks_optimal(self, instance_file, capsys):
        assert main(["schedule", instance_file, "--algorithm", "dp"]) == 0
        assert "optimal" in capsys.readouterr().out

    def test_schedule_bounds_report(self, instance_file, capsys):
        assert main(["schedule", instance_file, "--algorithm", "greedy",
                     "--bounds"]) == 0
        out = capsys.readouterr().out
        assert "bound report:" in out and "certified lower bound" in out

    def test_schedule_gantt(self, instance_file, capsys):
        assert main(["schedule", instance_file, "--gantt"]) == 0
        assert "S=sending" in capsys.readouterr().out


class TestSimulate:
    def test_simulate_verified(self, instance_file, tmp_path, capsys):
        sched = tmp_path / "sched.json"
        main(["schedule", instance_file, "-o", str(sched)])
        capsys.readouterr()
        assert main(["simulate", str(sched)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_simulate_with_jitter(self, instance_file, tmp_path, capsys):
        sched = tmp_path / "sched.json"
        main(["schedule", instance_file, "-o", str(sched)])
        capsys.readouterr()
        assert main(["simulate", str(sched), "--jitter", "0.2"]) == 0
        assert "jitter" in capsys.readouterr().out


class TestCompare:
    def test_compare_lists_all(self, instance_file, capsys):
        assert main(["compare", instance_file]) == 0
        out = capsys.readouterr().out
        for name in ("greedy", "binomial", "star", "dp (optimal)", "exact (optimal)"):
            assert name in out

    def test_compare_parallel_matches_serial(self, instance_file, capsys):
        assert main(["compare", instance_file]) == 0
        serial = capsys.readouterr().out
        assert main(["compare", instance_file, "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        # identical rows; the parallel run only adds its worker note
        assert set(serial.splitlines()) <= set(parallel.splitlines())
        assert "4 parallel workers" in parallel


class TestPlanBatch:
    @pytest.fixture
    def sweep_files(self, tmp_path):
        from repro.core.multicast import MulticastSet

        paths = []
        for i, (fast, slow) in enumerate([(3, 1), (2, 2), (5, 3), (1, 4)]):
            mset = MulticastSet.from_overheads(
                source=(2, 3),
                destinations=[(1, 1)] * fast + [(2, 3)] * slow,
                latency=1,
            )
            paths.append(str(save_json(mset, tmp_path / f"inst{i}.json")))
        return paths

    def test_plan_batch_group_solve(self, sweep_files, capsys):
        assert main(["plan-batch", "--solver", "dp", *sweep_files]) == 0
        out = capsys.readouterr().out
        for path in sweep_files:
            assert f"{path}: R_T=" in out
        assert "group-solve" in out and "tables built=1" in out

    def test_no_group_solve_escape_hatch_matches(self, sweep_files, capsys):
        assert main(["plan-batch", "--solver", "dp", *sweep_files]) == 0
        grouped = capsys.readouterr().out.splitlines()
        args = ["plan-batch", "--solver", "dp", "--no-group-solve", *sweep_files]
        assert main(args) == 0
        direct = capsys.readouterr().out.splitlines()
        # identical per-instance results; only the summary line differs
        assert grouped[:-1] == direct[:-1]
        assert "per-instance" in direct[-1]

    def test_plan_batch_json_lines(self, sweep_files, capsys):
        assert main(["plan-batch", "--json", *sweep_files]) == 0
        lines = capsys.readouterr().out.splitlines()
        records = [json.loads(line) for line in lines[:-1]]
        assert all(r["format"] == "repro/plan-result-v1" for r in records)

    def test_plan_batch_parallel_jobs(self, sweep_files, capsys):
        assert main(["plan-batch", "-j", "4", *sweep_files]) == 0
        assert "planned 4 instances" in capsys.readouterr().out

    def test_missing_instance_is_usage_error(self, tmp_path, capsys):
        assert main(["plan-batch", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_instance_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json{")
        assert main(["plan-batch", str(bad)]) == 2
        assert "cannot load instance" in capsys.readouterr().err

    def test_unknown_solver_is_usage_error(self, sweep_files, capsys):
        assert main(["plan-batch", "--solver", "nope", *sweep_files]) == 2
        assert "unknown solver" in capsys.readouterr().err


class TestExperimentAndFig1:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "completes at" in out and "Figure 1(a):" in out

    def test_experiment_selection(self, capsys):
        assert main(["experiment", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_experiment_markdown(self, capsys):
        assert main(["experiment", "E1", "--markdown"]) == 0
        assert "| schedule |" in capsys.readouterr().out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "E42"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServiceCommands:
    @pytest.fixture
    def populated_store(self, fig1_mset, tmp_path):
        from repro.service import InProcessClient, PlanningService

        store = tmp_path / "planstore"
        with PlanningService(store_path=store, num_shards=1) as service:
            client = InProcessClient(service)
            client.plan(fig1_mset, solver="greedy")
            client.plan(fig1_mset, solver="dp")
        return str(store)

    def test_submit_against_running_server(self, instance_file, tmp_path, capsys):
        from repro.service import PlanningService

        store = tmp_path / "planstore"
        service = PlanningService(store_path=store, num_shards=1)
        host, port = service.start_background(tcp=True)
        try:
            assert main(["submit", "--host", host, "--port", str(port),
                         instance_file, "--solver", "dp"]) == 0
            out = capsys.readouterr().out
            assert "R_T=8" in out and "tier=solve" in out and "optimal" in out
            # resubmission is served from the in-memory tier
            assert main(["submit", "--host", host, "--port", str(port),
                         instance_file, "--solver", "dp", "--metrics"]) == 0
            out = capsys.readouterr().out
            assert "tier=memory" in out and '"requests": 2' in out
        finally:
            service.stop()

    def test_submit_json_output_round_trips(self, instance_file, tmp_path, capsys):
        from repro.io.serialization import plan_result_from_dict
        from repro.service import PlanningService

        service = PlanningService(num_shards=1)
        host, port = service.start_background(tcp=True)
        try:
            assert main(["submit", "--host", host, "--port", str(port),
                         instance_file, "--json"]) == 0
            result = plan_result_from_dict(json.loads(capsys.readouterr().out))
            assert result.value == 8.0
        finally:
            service.stop()

    def test_submit_without_server_fails_cleanly(self, instance_file, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        assert main(["submit", "--port", str(free_port), instance_file]) == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_store_stats(self, populated_store, capsys):
        assert main(["store", "stats", populated_store]) == 0
        assert "2 live plans" in capsys.readouterr().out

    def test_store_verify(self, populated_store, capsys):
        assert main(["store", "verify", populated_store]) == 0
        out = capsys.readouterr().out
        assert "2 records verified" in out and "plan-result-v1" in out

    def test_store_compact(self, populated_store, capsys):
        assert main(["store", "compact", populated_store]) == 0
        assert "reclaimed 0 superseded records" in capsys.readouterr().out

    def test_store_missing_directory_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "no-store-here"
        assert main(["store", "verify", str(missing)]) == 2
        assert "not a directory" in capsys.readouterr().err
        assert not missing.exists()  # a read-only command must not mkdir


class TestConformanceCommands:
    def test_corpus_listing(self, capsys):
        assert main(["conformance", "corpus"]) == 0
        out = capsys.readouterr().out
        assert "quick" in out and "full" in out and "smoke" in out

    def test_corpus_write_then_run(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        assert main(["conformance", "corpus", "--suite", "smoke",
                     "-o", corpus_dir]) == 0
        assert "42 'smoke' scenarios" in capsys.readouterr().out
        assert main(["conformance", "run", "--corpus", corpus_dir,
                     "--no-service"]) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out and "42 scenarios" in out

    def test_run_smoke_suite_with_service_parity(self, capsys):
        assert main(["conformance", "run", "--suite", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "service-parity" in out
        assert "0 violations" in out

    def test_run_unknown_suite_fails_cleanly(self, capsys):
        assert main(["conformance", "run", "--suite", "nope"]) == 2
        assert "unknown corpus suite" in capsys.readouterr().err

    def test_run_on_a_failure_only_directory_fails_cleanly(self, tmp_path, capsys):
        """Pointing --corpus at a failure-artifact directory must not pass
        vacuously with zero scenarios."""
        from repro.conformance import FailureRecord, ScenarioSpec, write_records

        root = str(tmp_path / "failures-only")
        write_records(root, [FailureRecord(
            ScenarioSpec("two-class", 3, 0), "scaling", "greedy", "msg")])
        assert main(["conformance", "run", "--corpus", root]) == 2
        assert "holds no scenario records" in capsys.readouterr().err

    def test_replay_malformed_record_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "missing-spec.json"
        path.write_text('{"format": "repro/conformance-v1", "kind": "scenario"}')
        assert main(["conformance", "replay", str(path)]) == 2
        assert "missing field 'spec'" in capsys.readouterr().err

    def test_fuzz_budget_and_determinism(self, capsys):
        assert main(["conformance", "fuzz", "--budget", "2s", "--seed", "5",
                     "--no-service"]) == 0
        out = capsys.readouterr().out
        assert "seed=5" in out and "0 violations" in out

    def test_fuzz_malformed_budget_fails_cleanly(self, capsys):
        assert main(["conformance", "fuzz", "--budget", "soon"]) == 2
        assert "malformed budget" in capsys.readouterr().err

    def test_replay_committed_corpus_file(self, capsys):
        import pathlib

        corpus = pathlib.Path(__file__).resolve().parents[1] / "corpus"
        case = str(corpus / "scenario-figure1.json")
        assert main(["conformance", "replay", case]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_replay_empty_path_fails_cleanly(self, tmp_path, capsys):
        assert main(["conformance", "replay", str(tmp_path / "nothing")]) == 2
        assert "no conformance records" in capsys.readouterr().err

    def test_run_catches_and_persists_failures(self, tmp_path, capsys):
        """A fraudulent solver drives exit 1, failure artifacts and the
        regression corpus; replaying the artifact reproduces bit-identically."""
        import uuid

        from repro.api import (
            SolverCapabilities,
            SolverOutput,
            register_solver,
            unregister_solver,
        )
        from repro.core.schedule import Schedule

        name = f"cli-broken-{uuid.uuid4().hex[:8]}"

        @register_solver(name, "test: chain claimed optimal",
                         capabilities=SolverCapabilities(exact=True, max_n=6))
        def _chain(mset, **options):
            return SolverOutput(
                schedule=Schedule(mset, {i: [i + 1] for i in range(mset.n)})
            )

        failures_dir = str(tmp_path / "failures")
        regression_dir = tmp_path / "regression"
        try:
            assert main(["conformance", "run", "--suite", "smoke", "--no-service",
                         "--failures", failures_dir,
                         "--regression", str(regression_dir)]) == 1
            out = capsys.readouterr().out
            assert "FAILURE" in out and "failure artifacts" in out
            cases = list(regression_dir.glob("*.json"))
            assert cases
            # while the bug is live, the artifact reproduces bit-identically
            assert main(["conformance", "replay", str(cases[0])]) == 0
            assert "reproduced bit-identically" in capsys.readouterr().out
        finally:
            unregister_solver(name)
        # after the "fix" (solver removed) the regression no longer reproduces
        assert main(["conformance", "replay", str(cases[0])]) == 1
        assert "NOT reproduced" in capsys.readouterr().out
