"""The invariant catalogue: registry behaviour and violation sensitivity.

Detection tests tamper a real outcome (a wrong ``value``, a fake bound, a
bogus oracle) and assert the targeted invariant — and only the expected
ones — fires.  This is the conformance engine's own conformance check.
"""

from dataclasses import replace

import pytest

from repro.conformance import (
    ConformanceRunner,
    ScenarioSpec,
    available_invariants,
    get_invariant,
    register_invariant,
)
from repro.conformance.invariants import ScenarioOutcome, canonical_result_payload
from repro.exceptions import ConformanceError

BUILTINS = {
    "value-consistency",
    "replay-agreement",
    "oracle-optimality",
    "bounds-sandwich",
    "theorem1-guarantee",
    "leaf-reversal",
    "scaling",
    "permutation",
    "serialization",
}


@pytest.fixture(scope="module")
def outcome() -> ScenarioOutcome:
    spec = ScenarioSpec("two-class", 5, 0, source="slowest", latency=1)
    return ConformanceRunner(service_every=0).evaluate(spec)


def _tampered(outcome: ScenarioOutcome, solver: str, **changes) -> ScenarioOutcome:
    results = dict(outcome.results)
    results[solver] = replace(results[solver], **changes)
    return replace_outcome(outcome, results=results)


def replace_outcome(outcome: ScenarioOutcome, **changes) -> ScenarioOutcome:
    fields = {
        "spec": outcome.spec,
        "mset": outcome.mset,
        "results": outcome.results,
        "oracle_value": outcome.oracle_value,
        "oracle_solver": outcome.oracle_solver,
        "bounds": outcome.bounds,
        "planner": outcome.planner,
    }
    fields.update(changes)
    return ScenarioOutcome(**fields)


class TestRegistry:
    def test_builtins_registered(self):
        assert BUILTINS <= set(available_invariants())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConformanceError, match="registered twice"):
            register_invariant("value-consistency", "dup")(lambda outcome: [])

    def test_unknown_invariant_raises(self):
        with pytest.raises(ConformanceError, match="unknown invariant"):
            get_invariant("no-such-invariant")

    def test_entries_carry_descriptions(self):
        for name in BUILTINS:
            assert get_invariant(name).description


class TestHoldOnHealthyOutcome:
    @pytest.mark.parametrize("name", sorted(BUILTINS))
    def test_invariant_holds(self, outcome, name):
        assert get_invariant(name)(outcome) == []


class TestDetection:
    def test_value_consistency_catches_wrong_value(self, outcome):
        bad = _tampered(outcome, "greedy", value=outcome.results["greedy"].value + 1)
        violations = get_invariant("value-consistency")(bad)
        assert any(v.solver == "greedy" and "!= schedule R_T" in v.message
                   for v in violations)

    def test_replay_agreement_catches_wrong_value(self, outcome):
        bad = _tampered(outcome, "greedy", value=outcome.results["greedy"].value + 1)
        violations = get_invariant("replay-agreement")(bad)
        assert any("simulated R_T" in v.message for v in violations)

    def test_oracle_optimality_catches_beating_the_oracle(self, outcome):
        assert outcome.oracle_value is not None
        bogus = replace_outcome(outcome, oracle_value=outcome.oracle_value + 10)
        violations = get_invariant("oracle-optimality")(bogus)
        assert any("beats" in v.message for v in violations)

    def test_oracle_optimality_catches_exact_disagreement(self, outcome):
        bad = _tampered(outcome, "dp", value=outcome.results["dp"].value + 1,
                        exact=True)
        violations = get_invariant("oracle-optimality")(bad)
        assert any(v.solver == "dp" and "disagrees" in v.message
                   for v in violations)

    def test_bounds_sandwich_catches_inflated_bound(self, outcome):
        bogus = replace_outcome(
            outcome, bounds={**outcome.bounds, "fake-bound": 1e9}
        )
        violations = get_invariant("bounds-sandwich")(bogus)
        assert any("fake-bound" in v.message for v in violations)

    def test_theorem1_catches_a_busted_greedy(self, outcome):
        bad = _tampered(outcome, "greedy", value=1e9)
        violations = get_invariant("theorem1-guarantee")(bad)
        assert any("Theorem 1" in v.message for v in violations)

    def test_leaf_reversal_catches_understated_value(self, outcome):
        bad = _tampered(outcome, "chain", value=outcome.results["chain"].value - 5)
        violations = get_invariant("leaf-reversal")(bad)
        assert any("increased R_T" in v.message for v in violations)

    def test_scaling_catches_non_homogeneous_value(self, outcome):
        bad = _tampered(outcome, "greedy", value=outcome.results["greedy"].value + 1)
        violations = get_invariant("scaling")(bad)
        assert any(v.solver == "greedy" for v in violations)

    def test_permutation_catches_order_sensitivity(self, outcome):
        bad = _tampered(outcome, "greedy", value=outcome.results["greedy"].value + 1)
        violations = get_invariant("permutation")(bad)
        assert any("permutation changed the value" in v.message
                   for v in violations)


class TestCanonicalPayload:
    def test_volatile_fields_are_neutralized(self, outcome):
        result = outcome.results["greedy"]
        wobbled = replace(result, elapsed_s=1.23, cache_hit=True, tag="anything")
        assert canonical_result_payload(result) == canonical_result_payload(wobbled)

    def test_computed_fields_still_compared(self, outcome):
        result = outcome.results["greedy"]
        assert canonical_result_payload(result) != canonical_result_payload(
            replace(result, value=result.value + 1)
        )
