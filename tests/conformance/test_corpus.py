"""Scenario corpus: determinism, coverage, and spec round-trips."""

import itertools

import pytest

from repro.conformance import (
    ADVERSARIAL_CASES,
    CORPUS_SUITES,
    FAMILIES,
    SOURCE_POLICIES,
    ScenarioSpec,
    fuzz_specs,
    generate_corpus,
)
from repro.core.multicast import MulticastSet
from repro.exceptions import ConformanceError


class TestScenarioSpec:
    def test_round_trips_through_dict(self):
        spec = ScenarioSpec("two-class", 5, 3, source="median", latency=2, label="x")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_build_is_deterministic(self):
        spec = ScenarioSpec("bounded-ratio", 6, 4, source="random", latency=2)
        assert spec.build() == spec.build()

    def test_unknown_family_raises(self):
        with pytest.raises(ConformanceError, match="unknown scenario family"):
            ScenarioSpec("no-such-family", 4, 0).build()

    def test_missing_field_raises(self):
        with pytest.raises(ConformanceError, match="missing field"):
            ScenarioSpec.from_dict({"family": "two-class", "n": 3})

    def test_key_mentions_the_recipe(self):
        spec = ScenarioSpec("pareto", 8, 1, source="fastest", latency=3)
        assert "pareto" in spec.key and "n=8" in spec.key and "fastest" in spec.key


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_every_family_builds_valid_instances(self, family):
        for n, seed in itertools.product((1, 2, 5), (0, 1)):
            spec = ScenarioSpec(family, n, seed, source="first", latency=1)
            mset = spec.build()
            assert isinstance(mset, MulticastSet)
            assert mset.n >= 1

    @pytest.mark.parametrize("case_index", range(len(ADVERSARIAL_CASES)))
    def test_adversarial_catalogue_builds(self, case_index):
        label, _builder = ADVERSARIAL_CASES[case_index]
        spec = ScenarioSpec("adversarial", 3, case_index, source="first", label=label)
        assert spec.build().n >= 1


class TestCorpora:
    def test_generation_is_deterministic(self):
        assert generate_corpus("quick") == generate_corpus("quick")

    def test_quick_meets_the_acceptance_floor(self):
        """The CI gate sweeps >= 200 scenarios across every family."""
        specs = generate_corpus("quick")
        assert len(specs) >= 200
        assert {s.family for s in specs} == set(FAMILIES)
        cluster_specs = [s for s in specs if s.family != "adversarial"]
        assert {s.source for s in cluster_specs} == set(SOURCE_POLICIES)

    def test_every_suite_is_listed_and_nonempty(self):
        for name, suite in CORPUS_SUITES.items():
            assert suite.specs(), name
            assert suite.description

    def test_unknown_suite_raises(self):
        with pytest.raises(ConformanceError, match="unknown corpus suite"):
            generate_corpus("no-such-suite")

    def test_smoke_is_a_strict_subset_size(self):
        assert len(generate_corpus("smoke")) < len(generate_corpus("quick"))


class TestFuzz:
    def test_stream_is_deterministic_per_seed(self):
        a = list(itertools.islice(fuzz_specs(42), 50))
        b = list(itertools.islice(fuzz_specs(42), 50))
        assert a == b

    def test_different_seeds_diverge(self):
        a = list(itertools.islice(fuzz_specs(1), 50))
        b = list(itertools.islice(fuzz_specs(2), 50))
        assert a != b

    def test_specs_build_and_respect_max_n(self):
        for spec in itertools.islice(fuzz_specs(7, max_n=6), 80):
            assert spec.n <= 6 or spec.family == "adversarial"
            spec.build()
