"""Replay the committed regression corpus (``tests/corpus/``).

Scenario records must pass the entire invariant catalogue; failure
records (shrunk counterexamples of fixed bugs) must *not* reproduce.
Adding a record to ``tests/corpus/`` is all it takes to pin a regression
forever — this module discovers the directory, so no test edit is needed.
"""

import pathlib

import pytest

from repro.conformance import (
    ConformanceRunner,
    FailureRecord,
    MultiGroupScenarioSpec,
    ScenarioSpec,
    check_multi_group,
)
from repro.conformance.records import load_record_file

CORPUS = pathlib.Path(__file__).resolve().parents[1] / "corpus"
RECORD_FILES = sorted(CORPUS.glob("*.json"))


def test_corpus_directory_is_seeded():
    """The committed corpus always carries the historical seed scenarios."""
    assert CORPUS.is_dir()
    assert len(RECORD_FILES) >= 8


@pytest.mark.parametrize("path", RECORD_FILES, ids=lambda p: p.stem)
def test_committed_record_replays_clean(path):
    record = load_record_file(path)
    runner = ConformanceRunner(service_every=0)
    if isinstance(record, ScenarioSpec):
        report = runner.run([record])
        assert report.ok, report.summary()
    elif isinstance(record, MultiGroupScenarioSpec):
        # cross-group checks plus the bit-identical digest replay (every
        # committed multi-group record carries its evaluation digest)
        assert record.digest, f"{path.name} must pin an evaluation digest"
        violations = check_multi_group(record)
        assert not violations, [v.message for v in violations]
    else:
        assert isinstance(record, FailureRecord)
        outcome = runner.replay(record)
        assert not outcome.reproduced, (
            f"fixed regression came back: {record.invariant} on "
            f"{record.spec.key}: {outcome.detail}"
        )
