"""Conformance records: segment persistence, digests, round-trips."""

import json

import pytest

from repro.conformance import (
    CONFORMANCE_FORMAT,
    FailureRecord,
    ScenarioSpec,
    failure_digest,
    load_records,
    record_from_dict,
    write_records,
)
from repro.conformance.records import SEGMENT_MAX_RECORDS, load_record_file, scenario_record
from repro.exceptions import ConformanceError
from repro.io.segments import list_segments


@pytest.fixture
def spec():
    return ScenarioSpec("two-class", 4, 1, source="slowest", latency=2)


@pytest.fixture
def failure(spec):
    return FailureRecord(spec, "oracle-optimality", "greedy", "value 9 beats 8")


class TestDigest:
    def test_digest_is_deterministic(self, spec):
        a = failure_digest(spec, "scaling", "dp", "msg")
        b = failure_digest(spec, "scaling", "dp", "msg")
        assert a == b

    def test_digest_depends_on_every_component(self, spec):
        base = failure_digest(spec, "scaling", "dp", "msg")
        assert failure_digest(spec, "scaling", "dp", "other") != base
        assert failure_digest(spec, "scaling", "exact", "msg") != base
        assert failure_digest(spec, "bounds-sandwich", "dp", "msg") != base

    def test_failure_record_autofills_digest(self, failure, spec):
        assert failure.digest == failure_digest(
            spec, "oracle-optimality", "greedy", "value 9 beats 8"
        )


class TestRoundTrips:
    def test_failure_round_trips(self, failure):
        again = FailureRecord.from_dict(failure.to_dict())
        assert again.to_dict() == failure.to_dict()

    def test_scenario_record_round_trips(self, spec):
        assert record_from_dict(scenario_record(spec)) == spec

    def test_wrong_format_rejected(self):
        with pytest.raises(ConformanceError, match="not a repro/conformance-v1"):
            record_from_dict({"format": "repro/plan-result-v1"})

    def test_scenario_record_missing_spec_rejected(self):
        with pytest.raises(ConformanceError, match="missing field 'spec'"):
            record_from_dict({"format": CONFORMANCE_FORMAT, "kind": "scenario"})

    def test_failure_record_missing_fields_rejected(self, spec):
        payload = {"format": CONFORMANCE_FORMAT, "kind": "failure",
                   "spec": spec.to_dict()}
        with pytest.raises(ConformanceError, match="missing field"):
            FailureRecord.from_dict(payload)

    def test_unknown_kind_rejected(self, spec):
        payload = scenario_record(spec)
        payload["kind"] = "telemetry"
        with pytest.raises(ConformanceError, match="unknown conformance record kind"):
            record_from_dict(payload)

    def test_record_format_is_stamped(self, failure, spec):
        assert failure.to_dict()["format"] == CONFORMANCE_FORMAT
        assert scenario_record(spec)["format"] == CONFORMANCE_FORMAT


class TestSegmentPersistence:
    def test_write_then_load_preserves_order(self, tmp_path, spec, failure):
        records = [spec, failure, ScenarioSpec("pareto", 3, 9)]
        assert write_records(tmp_path / "records", records) == 3
        loaded = load_records(tmp_path / "records")
        assert loaded[0] == spec
        assert isinstance(loaded[1], FailureRecord)
        assert loaded[1].digest == failure.digest
        assert loaded[2] == ScenarioSpec("pareto", 3, 9)

    def test_appending_accumulates(self, tmp_path, spec):
        root = tmp_path / "records"
        write_records(root, [spec])
        write_records(root, [spec])
        assert len(load_records(root)) == 2

    def test_rotation_at_segment_capacity(self, tmp_path):
        root = tmp_path / "records"
        specs = [ScenarioSpec("two-class", 2, seed) for seed in range(SEGMENT_MAX_RECORDS + 5)]
        write_records(root, specs)
        assert len(list_segments(root)) == 2
        assert len(load_records(root)) == SEGMENT_MAX_RECORDS + 5

    def test_torn_tail_is_tolerated(self, tmp_path, spec):
        root = tmp_path / "records"
        write_records(root, [spec, spec])
        segment = list_segments(root)[-1]
        with open(segment, "a") as fh:
            fh.write('{"format": "repro/conformance-v1", "kind": "scen')
        assert len(load_records(root)) == 2

    def test_append_after_crash_repairs_the_torn_tail(self, tmp_path, spec):
        """A post-crash append must drop the partial line first, not glue
        the new record onto it (which would corrupt an interior line)."""
        root = tmp_path / "records"
        write_records(root, [spec])
        segment = list_segments(root)[-1]
        with open(segment, "a") as fh:
            fh.write('{"format": "repro/conformance-v1", "kind": "scen')
        assert write_records(root, [spec, spec]) == 2
        loaded = load_records(root)
        assert len(loaded) == 3
        assert all(record == spec for record in loaded)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ConformanceError, match="no conformance records"):
            load_records(tmp_path / "nothing")


class TestSingleFileRecords:
    def test_file_round_trip(self, tmp_path, failure):
        path = tmp_path / "case.json"
        path.write_text(json.dumps(failure.to_dict(), indent=2))
        loaded = load_record_file(path)
        assert isinstance(loaded, FailureRecord)
        assert loaded.digest == failure.digest

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ConformanceError, match="not valid JSON"):
            load_record_file(path)

    def test_non_object_raises(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConformanceError, match="expected a JSON object"):
            load_record_file(path)
