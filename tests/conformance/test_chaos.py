"""Chaos conformance: the resilience invariant over the scenario corpus.

The invariant (ISSUE/SERVICE.md "Resilience & operations"): under every
seeded fault plan, each completed response is byte-identical to the
direct planner's answer, or explicitly degraded with a valid bounds
sandwich, or a well-formed error — and the plan store always verifies
clean afterwards.  The nightly chaos-fuzz CI step sets
``REPRO_CHAOS_FUZZ_S`` to widen the sweep (quick corpus, more plans)
under a hard time budget.
"""

import os

import pytest

from repro.conformance import default_fault_plans, generate_corpus, run_chaos
from repro.exceptions import ConformanceError

_FUZZ = int(os.environ.get("REPRO_CHAOS_FUZZ_S", "0"))


class TestFaultPlanBattery:
    def test_rejects_empty_battery(self):
        with pytest.raises(ConformanceError, match="count"):
            default_fault_plans(0)

    def test_five_distinct_families(self):
        plans = default_fault_plans(5, seed=3)
        assert [plan.name for plan in plans] == [
            "transport-drop",
            "partial-frames",
            "solver-chaos",
            "torn-store",
            "deadline-storm",
        ]
        assert [plan.seed for plan in plans] == [3, 4, 5, 6, 7]

    def test_extra_plans_recycle_families_with_fresh_seeds(self):
        plans = default_fault_plans(7)
        assert plans[5].name == "transport-drop-1"
        assert plans[6].name == "partial-frames-1"
        assert len({plan.seed for plan in plans}) == 7


class TestChaosInvariant:
    def test_smoke_corpus_survives_the_standard_battery(self):
        """The chaos acceptance invariant, sized for the tier-1 suite."""
        report = run_chaos(
            suite="smoke", solve_deadline_s=0.2, call_timeout_s=0.5
        )
        assert report.ok, report.summary()
        assert len(report.runs) == 5
        # every plan must actually have injected something, or the sweep
        # proved nothing about that failure family
        for run in report.runs:
            assert sum(run.injected.values()) > 0, run.plan
            assert run.scenarios > 0
        assert report.total_injected >= 5
        # most traffic still completes exactly...
        assert sum(run.completed for run in report.runs) > 0
        # ...and the deadline storm actually exercised degradation
        [storm] = [run for run in report.runs if run.plan == "deadline-storm"]
        assert storm.degraded > 0

    def test_budget_bounds_the_sweep(self):
        """A spent budget skips remaining plans instead of overrunning."""
        report = run_chaos(
            specs=generate_corpus("smoke")[:2],
            solve_deadline_s=0.2,
            call_timeout_s=0.5,
            budget_s=0.0,
        )
        assert report.runs == []
        assert report.ok  # nothing ran, nothing violated


@pytest.mark.skipif(not _FUZZ, reason="set REPRO_CHAOS_FUZZ_S to enable")
def test_chaos_fuzz_widened_sweep():
    """Nightly: quick corpus, a doubled battery, hard wall-clock budget."""
    report = run_chaos(
        suite="quick",
        plans=default_fault_plans(10, seed=int(os.environ.get("SEED", "0"))),
        solve_deadline_s=0.2,
        call_timeout_s=1.0,
        budget_s=float(_FUZZ),
    )
    assert report.ok, report.summary()
    assert report.total_injected > 0
