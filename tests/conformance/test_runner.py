"""ConformanceRunner: differential sweeps, shrinking, replay, parity."""

import uuid

import pytest

from repro.api import (
    SolverCapabilities,
    SolverOutput,
    available_solvers,
    register_solver,
    unregister_solver,
)
from repro.conformance import (
    ConformanceRunner,
    FailureRecord,
    ScenarioSpec,
    generate_corpus,
)
from repro.core.schedule import Schedule
from repro.exceptions import ConformanceError


@pytest.fixture
def broken_exact():
    """A chain scheduler fraudulently claiming optimality (small n only)."""
    name = f"broken-exact-{uuid.uuid4().hex[:8]}"

    @register_solver(name, "test: chain claimed optimal",
                     capabilities=SolverCapabilities(exact=True, max_n=8))
    def _chain(mset, **options):
        children = {i: [i + 1] for i in range(mset.n)}
        return SolverOutput(schedule=Schedule(mset, children))

    yield name
    unregister_solver(name)


@pytest.fixture
def latency_warped():
    """A solver whose structure flips with the latency (breaks scaling)."""
    name = f"warped-{uuid.uuid4().hex[:8]}"

    @register_solver(name, "test: latency-sensitive structure",
                     capabilities=SolverCapabilities(max_n=8))
    def _warped(mset, **options):
        if mset.latency >= 3:
            children = {i: [i + 1] for i in range(mset.n)}  # chain
        else:
            children = {0: list(range(1, mset.n + 1))}  # star
        return SolverOutput(schedule=Schedule(mset, children))

    yield name
    unregister_solver(name)


class TestHealthySweep:
    def test_smoke_corpus_is_clean(self):
        report = ConformanceRunner(service_every=0).run(generate_corpus("smoke"))
        assert report.ok
        assert report.scenarios == len(generate_corpus("smoke"))
        assert not report.failures and not report.errors

    def test_every_registered_solver_is_exercised(self):
        from repro.api.solvers import get_solver

        report = ConformanceRunner(service_every=0).run(generate_corpus("smoke"))
        # mg-* entries compose multi-group schedules and are capability-gated
        # out of every single-group scenario, so the sweep never sees them
        single_group = {
            name for name in available_solvers()
            if not get_solver(name).capabilities.multi_group
        }
        assert set(report.solvers) == single_group

    def test_all_families_covered(self):
        report = ConformanceRunner(service_every=0).run(generate_corpus("smoke"))
        assert "adversarial" in report.families
        assert len(report.families) >= 8

    def test_report_to_dict_is_json_ready(self):
        import json

        report = ConformanceRunner(service_every=0).run(
            [ScenarioSpec("two-class", 3, 0)]
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["scenarios"] == 1

    def test_solver_filter_restricts_the_sweep(self):
        runner = ConformanceRunner(
            service_every=0, solvers=("greedy", "greedy+reversal")
        )
        report = runner.run([ScenarioSpec("two-class", 4, 0)])
        assert set(report.solvers) == {"greedy", "greedy+reversal"}

    def test_invariant_filter(self):
        runner = ConformanceRunner(
            service_every=0, invariants=["value-consistency"]
        )
        report = runner.run([ScenarioSpec("two-class", 4, 0)])
        assert set(report.per_invariant) == {"value-consistency"}

    def test_deadline_stops_the_sweep_early(self):
        from repro.conformance import fuzz_specs

        report = ConformanceRunner(service_every=0).run(
            fuzz_specs(0), deadline_s=0.5
        )
        assert report.scenarios >= 1
        assert report.elapsed_s < 30

    def test_oracle_certifies_small_scenarios(self):
        runner = ConformanceRunner(service_every=0)
        outcome = runner.evaluate(ScenarioSpec("bounded-ratio", 5, 0))
        assert outcome.oracle_solver == "exact"
        assert outcome.oracle_value is not None

    def test_dp_becomes_oracle_beyond_exact_reach(self):
        runner = ConformanceRunner(service_every=0, oracle_max_n=3)
        outcome = runner.evaluate(ScenarioSpec("two-class", 12, 0))
        assert outcome.oracle_solver == "dp"


class TestFailureFlow:
    def test_broken_exact_is_caught_and_shrunk(self, broken_exact):
        runner = ConformanceRunner(service_every=0)
        spec = ScenarioSpec("two-class", 8, 0, source="slowest", latency=3)
        report = runner.run([spec])
        assert not report.ok
        caught = [f for f in report.failures if f.solver == broken_exact]
        assert caught, "the fraudulent exact solver must be caught"
        assert any(f.invariant == "oracle-optimality" for f in caught)
        # shrinking found a smaller recipe and kept it replayable
        smallest = min(f.spec.n for f in caught)
        assert smallest < 8
        assert all(f.spec.family == "two-class" for f in caught)

    def test_scaling_invariant_catches_latency_warping(self, latency_warped):
        runner = ConformanceRunner(
            service_every=0,
            solvers=(latency_warped,),
            invariants=["scaling"],
        )
        report = runner.run([ScenarioSpec("two-class", 6, 0, latency=1)])
        assert not report.ok
        assert report.failures[0].invariant == "scaling"

    def test_replay_reproduces_bit_identically(self, broken_exact):
        runner = ConformanceRunner(service_every=0)
        report = runner.run(
            [ScenarioSpec("two-class", 6, 0, source="slowest", latency=2)]
        )
        failure = next(f for f in report.failures if f.solver == broken_exact)
        # simulate a cold process: rebuild the record from its JSON form
        revived = FailureRecord.from_dict(failure.to_dict())
        outcome = ConformanceRunner(service_every=0).replay(revived)
        assert outcome.reproduced
        assert outcome.bit_identical

    def test_replay_reports_a_fixed_failure(self, broken_exact):
        stale = FailureRecord(
            ScenarioSpec("two-class", 4, 0),
            "oracle-optimality",
            "greedy",  # the real greedy is not broken
            "value 9 beats 8",
        )
        outcome = ConformanceRunner(service_every=0).replay(stale)
        assert not outcome.reproduced
        assert "holds on replay" in outcome.detail

    def test_no_shrink_keeps_the_original_spec(self, broken_exact):
        runner = ConformanceRunner(service_every=0, shrink=False)
        spec = ScenarioSpec("two-class", 8, 0, latency=3)
        report = runner.run([spec])
        caught = [f for f in report.failures if f.solver == broken_exact]
        assert caught and all(f.spec == spec for f in caught)

    def test_crashing_solver_is_a_replayable_finding_not_an_abort(self):
        """A solver raising a non-library error (ZeroDivisionError) must not
        abort the sweep: it surfaces as a no-crash violation and every other
        solver's invariants still run."""
        name = f"crasher-{uuid.uuid4().hex[:8]}"

        @register_solver(name, "test: always raises",
                         capabilities=SolverCapabilities(max_n=8))
        def _crasher(mset, **options):
            return 1 // 0

        try:
            runner = ConformanceRunner(service_every=0)
            report = runner.run([ScenarioSpec("two-class", 5, 0)])
            assert not report.ok
            assert not report.errors  # a crash is a finding, not an abort
            crashes = [f for f in report.failures if f.invariant == "no-crash"]
            assert crashes and crashes[0].solver == name
            assert "ZeroDivisionError" in crashes[0].message
            # the healthy solvers were still swept differentially
            assert report.per_invariant["oracle-optimality"]["passed"] == 1
            # and the finding replays bit-identically like any other
            outcome = runner.replay(crashes[0])
            assert outcome.bit_identical
        finally:
            unregister_solver(name)

    def test_unbuildable_scenario_reported_as_error(self):
        report = ConformanceRunner(service_every=0).run(
            [ScenarioSpec("no-such-family", 4, 0)]
        )
        assert not report.ok
        assert report.errors and "no-such-family" in report.errors[0]
        assert report.scenarios == 0


class TestServiceParity:
    def test_service_answers_bit_identical(self):
        runner = ConformanceRunner(service_every=1)
        report = runner.run(
            [
                ScenarioSpec("two-class", 4, 0),
                ScenarioSpec("adversarial", 2, 9, source="first", label="figure1"),
            ]
        )
        assert report.ok
        parity = report.per_invariant["service-parity"]
        assert parity["passed"] == 2 and parity["failed"] == 0

    def test_service_every_zero_skips_parity(self):
        report = ConformanceRunner(service_every=0).run(
            [ScenarioSpec("two-class", 3, 0)]
        )
        assert "service-parity" not in report.per_invariant

    def test_negative_service_every_rejected(self):
        with pytest.raises(ConformanceError, match="service_every"):
            ConformanceRunner(service_every=-1)
