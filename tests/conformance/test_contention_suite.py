"""Cross-group conformance layer: specs, suites, digests, and records."""

import dataclasses
import json

import pytest

from repro.conformance import (
    MULTI_GROUP_KIND,
    MULTI_GROUP_SUITES,
    MultiGroupScenarioSpec,
    available_invariants,
    check_multi_group,
    derive_contention_instance,
    evaluate_multi_group,
    multi_group_corpus,
    multi_group_digest,
    multi_group_record,
    record_from_dict,
)
from repro.conformance.contention import (
    check_isolated_floor,
    check_replay_agreement,
    check_strategy_dominance,
    check_work_conservation,
)
from repro.conformance.records import _record_payload, load_record_file
from repro.exceptions import ConformanceError
from repro.workloads import multi_group_workload

SPEC = MultiGroupScenarioSpec(groups=3, n=4, seed=0, latency=4)


# ----------------------------------------------------------------------
# specs and corpora
# ----------------------------------------------------------------------
def test_spec_builds_the_workload_deterministically():
    built = SPEC.build()
    again = multi_group_workload(3, 4, 0, latency=4)
    assert built.n_groups == 3
    assert built.groups == again.groups
    assert built.shared_nodes() == again.shared_nodes()


def test_spec_key_and_round_trip():
    assert SPEC.key == "multi-group(groups=3, n=4, seed=0, L=4, relays=0)"
    data = SPEC.to_dict()
    assert "digest" not in data
    assert MultiGroupScenarioSpec.from_dict(data) == SPEC
    # digest is carried alongside and excluded from identity
    stamped = MultiGroupScenarioSpec.from_dict(data, digest="abc")
    assert stamped == SPEC and stamped.digest == "abc"
    with pytest.raises(ConformanceError, match="missing field"):
        MultiGroupScenarioSpec.from_dict({"groups": 2})


def test_suites_are_deterministic_and_nested():
    smoke, quick, full = (
        multi_group_corpus(name) for name in ("smoke", "quick", "full")
    )
    assert 0 < len(smoke) < len(quick) < len(full)
    assert multi_group_corpus("quick") == quick  # stable order
    keys = {spec.key for spec in full}
    assert {spec.key for spec in quick} <= keys
    with pytest.raises(ConformanceError, match="unknown multi-group suite"):
        multi_group_corpus("nope")


def test_contention_invariants_are_registered():
    names = available_invariants()
    for expected in (
        "contention-work-conservation",
        "contention-isolated-floor",
        "contention-replay",
        "contention-dominance",
    ):
        assert expected in names


def test_derive_contention_instance_shares_source_and_first_destination():
    mset = SPEC.build().groups[0]
    derived = derive_contention_instance(mset)
    assert derived.n_groups == 3
    shared = derived.shared_nodes()
    assert mset.source.name in shared
    assert mset.destinations[0].name in shared


# ----------------------------------------------------------------------
# checks and digests
# ----------------------------------------------------------------------
def test_full_check_passes_on_the_smoke_suite():
    for spec in multi_group_corpus("smoke"):
        assert check_multi_group(spec) == []


def test_individual_checks_pass_on_one_outcome():
    outcome = evaluate_multi_group(SPEC.build())
    assert outcome.inner_solver == "dp"
    assert all(opt is not None for opt in outcome.isolated)
    for check in (
        check_work_conservation,
        check_isolated_floor,
        check_replay_agreement,
        check_strategy_dominance,
    ):
        assert check(outcome) == []


def test_digest_is_stable_and_detects_drift():
    digest = multi_group_digest(SPEC)
    assert digest == multi_group_digest(SPEC)  # fresh planners agree
    stamped = dataclasses.replace(SPEC, digest=digest)
    assert check_multi_group(stamped) == []
    tampered = dataclasses.replace(SPEC, digest="0" * len(digest))
    violations = check_multi_group(tampered)
    assert len(violations) == 1
    assert "not bit-identical" in violations[0].message


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
def test_record_round_trip_preserves_spec_and_digest():
    stamped = dataclasses.replace(SPEC, digest=multi_group_digest(SPEC))
    record = multi_group_record(stamped)
    assert record["format"] == "repro/conformance-v1"
    assert record["kind"] == MULTI_GROUP_KIND
    assert record["digest"] == stamped.digest
    decoded = record_from_dict(record)
    assert isinstance(decoded, MultiGroupScenarioSpec)
    assert decoded == SPEC and decoded.digest == stamped.digest
    assert _record_payload(decoded) == record


def test_record_without_digest_omits_the_field():
    record = multi_group_record(SPEC)
    assert "digest" not in record
    assert record_from_dict(record).digest is None


def test_record_file_round_trip(tmp_path):
    stamped = dataclasses.replace(SPEC, digest=multi_group_digest(SPEC))
    path = tmp_path / "mg.json"
    path.write_text(json.dumps(multi_group_record(stamped), sort_keys=True))
    loaded = load_record_file(path)
    assert isinstance(loaded, MultiGroupScenarioSpec)
    assert loaded.digest == stamped.digest
    assert check_multi_group(loaded) == []
