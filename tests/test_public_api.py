"""Release-quality checks: public API surface and docs/code consistency."""

import importlib
import pathlib
import re

import pytest

import repro

REPO = pathlib.Path(__file__).resolve().parents[1]

PACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.model",
    "repro.simulation",
    "repro.algorithms",
    "repro.collectives",
    "repro.workloads",
    "repro.analysis",
    "repro.viz",
    "repro.io",
    "repro.experiments",
    "repro.cli",
]


class TestApiSurface:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_imports(self, package):
        importlib.import_module(package)

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.__all__ lists missing {name!r}"

    def test_version_matches_pyproject(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        declared = re.search(r'^version = "([^"]+)"', pyproject, re.M).group(1)
        assert repro.__version__ == declared

    def test_every_public_symbol_documented(self):
        """Everything exported at top level carries a docstring."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_every_module_has_docstring(self):
        src = REPO / "src" / "repro"
        for path in src.rglob("*.py"):
            text = path.read_text().lstrip()
            assert text.startswith(('"""', "'''")) or path.name == "__init__.py" and not text, (
                f"{path.relative_to(REPO)} lacks a module docstring"
            )

    def test_cli_help_runs(self, capsys):
        from repro.cli.main import build_parser

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--help"])
        assert exc.value.code == 0
        assert "multicast" in capsys.readouterr().out.lower()


class TestDocsConsistency:
    def test_design_lists_every_experiment(self):
        from repro.experiments.runner import EXPERIMENTS

        design = (REPO / "DESIGN.md").read_text()
        for name in EXPERIMENTS:
            assert f"| {name} |" in design, f"DESIGN.md experiment index missing {name}"

    def test_experiments_md_covers_every_experiment(self):
        from repro.experiments.runner import EXPERIMENTS

        record = (REPO / "EXPERIMENTS.md").read_text()
        for name in EXPERIMENTS:
            assert re.search(rf"^## {name} ", record, re.M), (
                f"EXPERIMENTS.md has no section for {name}"
            )

    def test_readme_examples_exist(self):
        readme = (REPO / "README.md").read_text()
        for match in re.finditer(r"`([a-z_]+\.py)`", readme):
            name = match.group(1)
            assert (REPO / "examples" / name).exists(), (
                f"README references examples/{name} which does not exist"
            )

    def test_readme_schedulers_match_registry(self):
        from repro.algorithms.registry import available_schedulers

        init_doc = (REPO / "src/repro/algorithms/__init__.py").read_text()
        for name in available_schedulers():
            assert f"``{name}``" in init_doc, (
                f"algorithms package docstring missing scheduler {name!r}"
            )

    def test_design_substitutions_section_present(self):
        design = (REPO / "DESIGN.md").read_text()
        assert "## 2. Substitutions" in design
        assert "discrete-event" in design

    def test_bench_file_per_experiment(self):
        """Every experiment id maps to at least one bench module."""
        mapping = {
            "E1": "bench_fig1.py",
            "E2": "bench_ratio.py",
            "E3": "bench_greedy_scaling.py",
            "E4": "bench_dp_scaling.py",
            "E5": "bench_leaf_reversal.py",
            "E6": "bench_bound_tightness.py",
            "E7": "bench_baselines.py",
            "E8": "bench_table_precompute.py",
            "E9": "bench_layered.py",
            "E10": "bench_ablation.py",
        }
        from repro.experiments.runner import EXPERIMENTS

        assert set(mapping) == set(EXPERIMENTS)
        for bench in mapping.values():
            assert (REPO / "benchmarks" / bench).exists(), bench
