"""Release-quality checks: public API surface and docs/code consistency."""

import importlib
import pathlib
import re

import pytest

import repro

REPO = pathlib.Path(__file__).resolve().parents[1]

PACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.model",
    "repro.simulation",
    "repro.algorithms",
    "repro.collectives",
    "repro.workloads",
    "repro.analysis",
    "repro.viz",
    "repro.io",
    "repro.experiments",
    "repro.cli",
    "repro.service",
    "repro.conformance",
    "repro.perf",
]


class TestApiSurface:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_imports(self, package):
        importlib.import_module(package)

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.__all__ lists missing {name!r}"

    def test_version_matches_pyproject(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        declared = re.search(r'^version = "([^"]+)"', pyproject, re.M).group(1)
        assert repro.__version__ == declared

    def test_every_public_symbol_documented(self):
        """Everything exported at top level carries a docstring."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_every_module_has_docstring(self):
        src = REPO / "src" / "repro"
        for path in src.rglob("*.py"):
            text = path.read_text().lstrip()
            assert text.startswith(('"""', "'''")) or path.name == "__init__.py" and not text, (
                f"{path.relative_to(REPO)} lacks a module docstring"
            )

    def test_every_package_has_nonempty_doc(self):
        """Every src/repro/* package ships a real package docstring.

        Discovered from the filesystem (not the PACKAGES list) so a new
        package cannot land undocumented by forgetting to register it.
        """
        src = REPO / "src" / "repro"
        discovered = ["repro"] + sorted(
            f"repro.{path.parent.relative_to(src).as_posix().replace('/', '.')}"
            for path in src.rglob("__init__.py")
            if path.parent != src
        )
        assert set(PACKAGES) == set(discovered), (
            "PACKAGES list out of sync with src/repro packages"
        )
        for package in discovered:
            mod = importlib.import_module(package)
            assert mod.__doc__ and mod.__doc__.strip(), (
                f"{package} has an empty package docstring"
            )

    def test_core_algorithm_modules_cite_paper_sections(self):
        """dp/layered/bounds/greedy docstrings anchor to paper sections."""
        expectations = {
            "repro.core.dp": ("Section 4", "Theorem 2"),
            "repro.core.layered": ("Section 2", "Corollary 1"),
            "repro.core.bounds": ("Section 3", "Theorem 1"),
            "repro.core.greedy": ("Section 2", "Lemma 1"),
        }
        for module_name, references in expectations.items():
            doc = importlib.import_module(module_name).__doc__ or ""
            assert "Paper reference:" in doc, (
                f"{module_name} docstring lacks a 'Paper reference:' line"
            )
            for reference in references:
                assert reference in doc, (
                    f"{module_name} docstring does not cite {reference!r}"
                )

    def test_cli_help_runs(self, capsys):
        from repro.cli.main import build_parser

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--help"])
        assert exc.value.code == 0
        assert "multicast" in capsys.readouterr().out.lower()


class TestDocsConsistency:
    def test_design_lists_every_experiment(self):
        from repro.experiments.runner import EXPERIMENTS

        design = (REPO / "DESIGN.md").read_text()
        for name in EXPERIMENTS:
            assert f"| {name} |" in design, f"DESIGN.md experiment index missing {name}"

    def test_experiments_md_covers_every_experiment(self):
        from repro.experiments.runner import EXPERIMENTS

        record = (REPO / "EXPERIMENTS.md").read_text()
        for name in EXPERIMENTS:
            assert re.search(rf"^## {name} ", record, re.M), (
                f"EXPERIMENTS.md has no section for {name}"
            )

    def test_readme_examples_exist(self):
        readme = (REPO / "README.md").read_text()
        for match in re.finditer(r"`([a-z_]+\.py)`", readme):
            name = match.group(1)
            assert (REPO / "examples" / name).exists(), (
                f"README references examples/{name} which does not exist"
            )

    def test_readme_schedulers_match_registry(self):
        from repro.algorithms.registry import available_schedulers

        init_doc = (REPO / "src/repro/algorithms/__init__.py").read_text()
        for name in available_schedulers():
            assert f"``{name}``" in init_doc, (
                f"algorithms package docstring missing scheduler {name!r}"
            )

    def test_design_substitutions_section_present(self):
        design = (REPO / "DESIGN.md").read_text()
        assert "## 2. Substitutions" in design
        assert "discrete-event" in design

    def test_service_md_linked_and_covers_protocol(self):
        from repro.service import protocol

        service_md = (REPO / "SERVICE.md").read_text()
        for message_type in (*protocol.REQUEST_TYPES, *protocol.RESPONSE_TYPES):
            assert f"`{message_type}`" in service_md, (
                f"SERVICE.md does not document wire message type {message_type!r}"
            )
        assert "repro/plan-store-v1" in service_md
        assert "SERVICE.md" in (REPO / "README.md").read_text()
        assert "SERVICE.md" in (REPO / "API.md").read_text()

    def test_design_architecture_diagram_spans_layers(self):
        """DESIGN.md §1 shows the model -> core -> api -> service data flow."""
        design = (REPO / "DESIGN.md").read_text()
        for layer in ("repro.service", "repro.api", "CORE SOLVERS", "MODEL"):
            assert layer in design, f"DESIGN.md architecture missing {layer!r}"
        assert "FairQueue" in design and "PlanStore" in design

    def test_design_verification_covers_every_invariant(self):
        """DESIGN.md §4 documents the whole invariant catalogue."""
        from repro.conformance import available_invariants

        design = (REPO / "DESIGN.md").read_text()
        assert "## 4. Verification" in design
        for name in available_invariants() + ["service-parity"]:
            assert f"`{name}`" in design, (
                f"DESIGN.md Verification section missing invariant {name!r}"
            )

    def test_api_md_documents_the_conformance_engine(self):
        api = (REPO / "API.md").read_text()
        assert "## Verification — the conformance engine" in api
        for token in ("ConformanceRunner", "conformance replay",
                      "repro/conformance-v1"):
            assert token in api, f"API.md verification section missing {token!r}"

    def test_conformance_corpus_suites_documented(self):
        """The committed regression corpus ships its README."""
        readme = (REPO / "tests" / "corpus" / "README.md").read_text()
        assert "repro/conformance-v1" in readme
        assert "conformance replay" in readme

    def test_design_performance_section_covers_every_kernel(self):
        """DESIGN.md §5 documents the perf subsystem and its kernels."""
        from repro.perf import available_kernels

        design = (REPO / "DESIGN.md").read_text()
        assert "## 5. Performance" in design
        for name in available_kernels():
            assert f"{name}" in design, (
                f"DESIGN.md Performance section missing kernel {name!r}"
            )
        assert "speedup_vs_reference" in design
        assert "repro/perf-v1" in design

    def test_design_canonicalization_section(self):
        """DESIGN.md §6 documents canonicalization + amortized batching."""
        design = (REPO / "DESIGN.md").read_text()
        assert "## 6. Canonicalization & amortized batch planning" in design
        for token in (
            "power of two",
            "network_key",
            "group_solve",
            "max_total_states",
            "extended_to",
            "batch_amortized",
            "plan-batch",
        ):
            assert token in design, (
                f"DESIGN.md canonicalization section missing {token!r}"
            )

    def test_api_md_documents_batch_planning(self):
        """API.md covers the group-solve knobs and canonical-key stats."""
        api = (REPO / "API.md").read_text()
        for token in (
            "group_solve=",
            "prewarm_tables",
            "canonical_hits",
            "table_cache_states",
            "plan-batch",
            "--no-group-solve",
            "speedup_vs_per_instance",
        ):
            assert token in api, f"API.md batch-planning docs missing {token!r}"

    def test_batch_amortized_baseline_carries_the_floor(self):
        """The committed group-solve baseline enforces the >= 3x floor."""
        from repro.perf import load_baseline

        record = load_baseline(REPO / "BENCH_batch_amortized.json")
        assert record.floors.get("speedup_vs_per_instance") == 3.0
        assert record.summary["speedup_vs_per_instance"] >= 3.0

    def test_delta_replan_baseline_carries_the_floor(self):
        """The committed session-repair baseline enforces the >= 5x floor."""
        from repro.perf import load_baseline

        record = load_baseline(REPO / "BENCH_delta_replan.json")
        assert record.floors.get("speedup_vs_full_replan") == 5.0
        assert record.summary["speedup_vs_full_replan"] >= 5.0

    def test_design_repair_section(self):
        """DESIGN.md §7 documents sessions, repair and table pinning."""
        design = (REPO / "DESIGN.md").read_text()
        assert "## 7. Online planning under churn" in design
        for token in (
            "repro/membership-delta-v1",
            "same_network",
            "materialize schedule",
            "repair-identity",
            "delta_replan",
            "pin=True",
            "speedup_vs_full_replan",
        ):
            assert token in design, f"DESIGN.md repair section missing {token!r}"
        service_md = (REPO / "SERVICE.md").read_text()
        assert "repro/membership-delta-v1" in service_md
        assert "session-resume" in service_md

    def test_design_contention_section(self):
        """DESIGN.md §8 documents multi-group planning under contention."""
        design = (REPO / "DESIGN.md").read_text()
        assert "## 8. Concurrent multi-group planning" in design
        for token in (
            "MultiGroupPlanner",
            "mg-greedy-pack",
            "mg-round-robin",
            "mg-sequential",
            "multi-group-scenario",
            "derive_contention_instance",
            "makespan_ratio_vs_sequential",
            "repro/multi-group-v1",
        ):
            assert token in design, f"DESIGN.md contention section missing {token!r}"

    def test_api_md_documents_multi_group_planning(self):
        """API.md covers the multi-group facade, capability gate and CLI."""
        from repro.api import available_multi_group_solvers

        api = (REPO / "API.md").read_text()
        assert "## Multi-group planning under shared-sender contention" in api
        for token in (
            "MultiGroupPlanner",
            "plan_groups",
            "compare_strategies",
            "multi_group",
            "plan-groups",
            "repro/multi-group-v1",
            "DEFAULT_STRATEGY",
        ):
            assert token in api, f"API.md multi-group docs missing {token!r}"
        for name in available_multi_group_solvers():
            assert f"`{name}`" in api, (
                f"API.md multi-group docs missing strategy {name!r}"
            )

    def test_multi_group_baseline_carries_the_floor(self):
        """The committed contention baseline enforces the >= 1.5x floor."""
        from repro.perf import load_baseline

        record = load_baseline(REPO / "BENCH_multi_group.json")
        assert record.floors.get("makespan_ratio_vs_sequential") == 1.5
        assert record.summary["makespan_ratio_vs_sequential"] >= 1.5

    def test_design_vector_snapshot_section(self):
        """DESIGN.md §9 documents the vector backend + table snapshots."""
        design = (REPO / "DESIGN.md").read_text()
        assert "## 9. Vectorized DP backend & table snapshots" in design
        for token in (
            "backend=vector",
            "slab",
            "bit-identical",
            "REPRO_NO_NUMPY",
            "repro/table-snapshot-v1",
            "mmap",
            "zero-copy",
            "snapshot_dir",
            "dp_vector",
            "table_snapshot",
            "speedup_vs_scalar",
            "speedup_vs_cold_build",
        ):
            assert token in design, (
                f"DESIGN.md vector/snapshot section missing {token!r}"
            )

    def test_api_md_documents_dp_backends_and_table_config(self):
        """API.md covers backend specs, TableCacheConfig and snapshots."""
        api = (REPO / "API.md").read_text()
        for token in (
            "dp(backend=vector)",
            "dp(backend=scalar)",
            "TableCacheConfig",
            "table_config",
            "snapshot_dir",
            "save_snapshot",
            "load_snapshot",
            "--table-snapshots",
            "deprecated",
        ):
            assert token in api, f"API.md backend/snapshot docs missing {token!r}"

    def test_dp_vector_baseline_carries_the_floor(self):
        """The committed vector-engine baseline enforces the >= 2x floor."""
        from repro.perf import load_baseline

        record = load_baseline(REPO / "BENCH_dp_vector.json")
        assert record.floors.get("speedup_vs_scalar") == 2.0
        assert record.summary["speedup_vs_scalar"] >= 2.0

    def test_table_snapshot_baseline_carries_the_floor(self):
        """The committed warm-attach baseline enforces the >= 5x floor."""
        from repro.perf import load_baseline

        record = load_baseline(REPO / "BENCH_table_snapshot.json")
        assert record.floors.get("speedup_vs_cold_build") == 5.0
        assert record.summary["speedup_vs_cold_build"] >= 5.0

    def test_design_resilience_section(self):
        """DESIGN.md §10 documents fault injection site by site."""
        from repro.faults import SITES

        design = (REPO / "DESIGN.md").read_text()
        assert "## 10. Fault injection & resilience" in design
        for site in SITES:
            assert f"`{site}`" in design, (
                f"DESIGN.md resilience section missing fault site {site!r}"
            )
        for token in (
            "FaultPlan",
            "inject()",
            "zero overhead",
            "chaos",
            "service_resilience",
            "recovery_throughput_ratio",
        ):
            assert token in design, (
                f"DESIGN.md resilience section missing {token!r}"
            )

    def test_service_md_documents_resilience_operations(self):
        """SERVICE.md covers retries, degradation, supervision, chaos."""
        service_md = (REPO / "SERVICE.md").read_text()
        assert "## Resilience & operations" in service_md
        for token in (
            "RetryPolicy",
            "reconnect()",
            "idempotent",
            "solve_deadline_s",
            "--deadline",
            "`degraded: true`",
            "startup_timeout_s",
            "shutdown_timeout_s",
            "worker_restarts",
            "errors_total",
            "degraded_served",
            "local_metrics",
            "hnow-multicast chaos",
            "REPRO_CHAOS_FUZZ_S",
            "recovery_throughput_ratio",
        ):
            assert token in service_md, (
                f"SERVICE.md resilience section missing {token!r}"
            )

    def test_service_resilience_baseline_carries_the_floor(self):
        """The committed recovery baseline enforces the >= 0.5x floor."""
        from repro.perf import load_baseline

        record = load_baseline(REPO / "BENCH_service_resilience.json")
        assert record.floors.get("recovery_throughput_ratio") == 0.5
        assert record.summary["recovery_throughput_ratio"] >= 0.5

    def test_api_md_documents_performance_tracking(self):
        api = (REPO / "API.md").read_text()
        assert "## Performance tracking" in api
        for token in ("PerfRunner", "perf compare", "repro/perf-v1",
                      "BENCH_"):
            assert token in api, f"API.md perf section missing {token!r}"

    def test_readme_documents_performance_tracking(self):
        readme = (REPO / "README.md").read_text()
        assert "Performance tracking" in readme
        assert "perf compare" in readme
        assert "repro/perf" in readme

    def test_committed_baselines_load_and_carry_the_floors(self):
        """The acceptance baselines exist, verify by digest, and commit
        the DP/greedy speedup floors the perf gate enforces."""
        from repro.perf import load_baseline

        dp = load_baseline(REPO / "BENCH_dp_scaling.json")
        greedy = load_baseline(REPO / "BENCH_greedy_scaling.json")
        assert dp.floors.get("speedup_vs_reference") == 3.0
        assert greedy.floors.get("speedup_vs_reference") == 2.0
        # the committed runs themselves must honor their own floors
        assert dp.summary["speedup_vs_reference"] >= 3.0
        assert greedy.summary["speedup_vs_reference"] >= 2.0

    def test_bench_file_per_experiment(self):
        """Every experiment id maps to at least one bench module."""
        mapping = {
            "E1": "bench_fig1.py",
            "E2": "bench_ratio.py",
            "E3": "bench_greedy_scaling.py",
            "E4": "bench_dp_scaling.py",
            "E5": "bench_leaf_reversal.py",
            "E6": "bench_bound_tightness.py",
            "E7": "bench_baselines.py",
            "E8": "bench_table_precompute.py",
            "E9": "bench_layered.py",
            "E10": "bench_ablation.py",
        }
        from repro.experiments.runner import EXPERIMENTS

        assert set(mapping) == set(EXPERIMENTS)
        for bench in mapping.values():
            assert (REPO / "benchmarks" / bench).exists(), bench
