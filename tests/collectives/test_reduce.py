"""Unit tests for the reduce collective and its duality."""

import pytest

from repro.collectives.reduce import reduce_completion_forward, reduce_plan
from repro.core.greedy import greedy_schedule
from repro.core.multicast import MulticastSet


class TestReducePlan:
    def test_plan_completion_positive(self, fig1_mset):
        plan = reduce_plan(fig1_mset)
        assert plan.completion > 0

    def test_gather_order_reverses_dual(self, fig1_mset):
        plan = reduce_plan(fig1_mset)
        for parent, kids in plan.dual_schedule.children.items():
            assert plan.gather_order[parent] == [c for c, _s in reversed(kids)]

    def test_every_node_sends_once(self, fig1_mset):
        plan = reduce_plan(fig1_mset)
        gathered = [c for kids in plan.gather_order.values() for c in kids]
        assert sorted(gathered) == [1, 2, 3, 4]


class TestDuality:
    """Forward-timed reduction == dual multicast completion (canonical)."""

    def test_figure1(self, fig1_mset):
        plan = reduce_plan(fig1_mset)
        assert reduce_completion_forward(fig1_mset, plan) == pytest.approx(
            plan.completion
        )

    def test_across_random_instances(self, small_random_msets):
        for m in small_random_msets:
            plan = reduce_plan(m)
            assert reduce_completion_forward(m, plan) == pytest.approx(
                plan.completion
            )

    def test_with_custom_scheduler(self, fig1_mset):
        plan = reduce_plan(fig1_mset, scheduler=greedy_schedule)
        assert reduce_completion_forward(fig1_mset, plan) == pytest.approx(
            plan.completion
        )

    def test_symmetric_instance_self_dual(self):
        # o_send == o_recv everywhere: reduce takes exactly as long as
        # the multicast itself
        m = MulticastSet.from_overheads((2, 2), [(1, 1), (1, 1), (3, 3)], 1)
        plan = reduce_plan(m, scheduler=greedy_schedule)
        assert plan.completion == greedy_schedule(m).reception_completion
