"""Unit tests for scatter and gather under the affine model."""

import pytest

from repro.collectives.gather import gather_completion
from repro.collectives.scatter import (
    binomial_children,
    scatter_completion,
    star_children,
)
from repro.exceptions import ModelError
from repro.model.linear import LinearCost, MachineSpec, NetworkSpec


@pytest.fixture
def network():
    mk = lambda name, s, r: MachineSpec(  # noqa: E731
        name, LinearCost(10, 0.01 * s), LinearCost(12, 0.012 * r)
    )
    return NetworkSpec(
        machines=tuple(mk(f"m{i}", 1 + i % 2, 1 + i % 2) for i in range(6)),
        latency=LinearCost(20, 0.02),
    )


class TestScatter:
    def test_star_sends_minimum_bytes(self, network):
        payloads = [0.0] + [1000.0] * 5
        star = scatter_completion(network, star_children(6), payloads)
        tree = scatter_completion(network, binomial_children(6), payloads)
        assert star.bytes_sent[0] == 5000
        assert sum(tree.bytes_sent) > sum(star.bytes_sent)  # forwarding costs bytes

    def test_binomial_bundles_subtrees(self, network):
        payloads = [0.0] + [100.0] * 5
        result = scatter_completion(network, binomial_children(6), payloads)
        # the root's first transfer carries its largest subtree bundle
        assert result.bytes_sent[0] == 500  # root still originates all bytes

    def test_everyone_receives(self, network):
        payloads = [0.0] + [10.0] * 5
        result = scatter_completion(network, star_children(6), payloads)
        assert all(t > 0 for t in result.receive_done[1:])

    def test_small_messages_favor_tree_large_favor_star(self, network):
        small = [0.0] + [1.0] * 5
        large = [0.0] + [100_000.0] * 5
        star_small = scatter_completion(network, star_children(6), small).completion
        tree_small = scatter_completion(network, binomial_children(6), small).completion
        star_large = scatter_completion(network, star_children(6), large).completion
        tree_large = scatter_completion(network, binomial_children(6), large).completion
        # with byte-dominated costs the star's no-forwarding advantage grows
        assert (tree_large / star_large) > (tree_small / star_small)

    def test_payload_alignment_checked(self, network):
        with pytest.raises(ModelError):
            scatter_completion(network, star_children(6), [0.0] * 3)

    def test_negative_payload_rejected(self, network):
        with pytest.raises(ModelError):
            scatter_completion(network, star_children(6), [0.0, -1.0, 1, 1, 1, 1])

    def test_star_children_shape(self):
        assert star_children(4) == {0: [1, 2, 3]}

    def test_too_small_rejected(self):
        with pytest.raises(ModelError):
            star_children(1)


class TestGather:
    def test_completion_positive(self, network):
        payloads = [0.0] + [100.0] * 5
        result = gather_completion(network, star_children(6), payloads)
        assert result.completion > 0

    def test_star_gather_serializes_receives(self, network):
        payloads = [0.0] + [100.0] * 5
        result = gather_completion(network, star_children(6), payloads)
        # the root receives 5 bundles sequentially: completion is at least
        # 5 receive busy periods
        recv_busy = network.machines[0].receive.at(100, integral=False)
        assert result.completion >= 5 * recv_busy

    def test_leaves_start_immediately(self, network):
        payloads = [0.0] + [100.0] * 5
        result = gather_completion(network, star_children(6), payloads)
        assert all(s == 0.0 for s in result.send_start[1:])

    def test_tree_gather_waits_for_subtrees(self, network):
        payloads = [0.0] + [100.0] * 5
        children = binomial_children(6)
        result = gather_completion(network, children, payloads)
        for parent, kids in children.items():
            if parent == 0:
                continue
            # an internal node starts its upward send only after its subtree
            assert result.send_start[parent] > 0

    def test_alignment_checked(self, network):
        with pytest.raises(ModelError):
            gather_completion(network, star_children(6), [0.0] * 2)
