"""Unit tests for segmented (pipelined) multicast."""

import pytest

from repro.algorithms.binomial import binomial_tree_children
from repro.collectives.pipeline import (
    optimal_segmentation,
    pipelined_completion,
)
from repro.exceptions import ModelError
from repro.model.linear import LinearCost, MachineSpec, NetworkSpec


def make_network(n=6, *, latency=(30, 0.02)):
    machines = tuple(
        MachineSpec(
            f"m{i}",
            LinearCost(10 + 3 * (i % 2), 0.01),
            LinearCost(12 + 4 * (i % 2), 0.012),
        )
        for i in range(n)
    )
    return NetworkSpec(machines=machines, latency=LinearCost(*latency))


def chain_children(n):
    return {i: [i + 1] for i in range(n - 1)}


def star_children(n):
    return {0: list(range(1, n))}


class TestSingleSegmentEquivalence:
    """s = 1 must coincide with the paper's recurrences on the same tree."""

    @pytest.mark.parametrize("tree_fn", [star_children, chain_children, binomial_tree_children])
    def test_matches_analytic_schedule(self, tree_fn):
        from repro.core.multicast import MulticastSet
        from repro.core.schedule import Schedule

        net = make_network(6)
        tree = tree_fn(6) if tree_fn is not binomial_tree_children else tree_fn(list(range(6)))
        msg = 1000.0
        result = pipelined_completion(net, tree, msg, segments=1)
        # analytic: fold the affine model at the full message length
        nodes = [m.node_at(msg, integral=False) for m in net.machines]
        # node names already unique; build the (possibly uncorrelated) instance
        mset = MulticastSet(
            nodes[0], nodes[1:], net.latency.at(msg, integral=False),
            validate_correlation=False,
        )
        # careful: MulticastSet sorts destinations; remap the tree by name
        name_to_idx = {nd.name: i for i, nd in enumerate(mset.nodes)}
        children = {
            name_to_idx[net.machines[p].name]: [
                name_to_idx[net.machines[c].name] for c in kids
            ]
            for p, kids in tree.items()
        }
        schedule = Schedule(mset, children)
        assert result.completion == pytest.approx(schedule.reception_completion)


class TestSegmentationBehaviour:
    def test_u_shaped_curve(self):
        net = make_network(6)
        tree = binomial_tree_children(list(range(6)))
        best, curve = optimal_segmentation(net, tree, 65536)
        assert curve[1] > curve[best]  # segmenting helps long messages
        deep = max(curve)
        assert curve[deep] > curve[best]  # over-segmenting hurts again

    def test_pipelining_helps_chains_most(self):
        # a chain re-transmits everything: segmentation overlaps the hops
        net = make_network(5)
        tree = chain_children(5)
        one = pipelined_completion(net, tree, 32768, 1).completion
        eight = pipelined_completion(net, tree, 32768, 8).completion
        assert eight < one

    def test_chain_gains_more_than_star(self):
        # every chain hop re-transmits the payload, so overlapping hops
        # (pipelining) buys more there than on the single-hop star, where
        # only the final latency+receive tail shrinks
        net = make_network(5)
        msg = 32768
        gains = {}
        for label, tree in (("chain", chain_children(5)), ("star", star_children(5))):
            one = pipelined_completion(net, tree, msg, 1).completion
            eight = pipelined_completion(net, tree, msg, 8).completion
            gains[label] = one / eight
        assert gains["chain"] > gains["star"] > 0.9

    def test_monotone_segment_receptions(self):
        net = make_network(6)
        tree = binomial_tree_children(list(range(6)))
        result = pipelined_completion(net, tree, 4096, 4)
        assert result.completion == max(result.last_segment_receptions)
        assert result.segments == 4
        assert result.segment_length == 1024

    def test_events_scale_with_segments(self):
        net = make_network(6)
        tree = binomial_tree_children(list(range(6)))
        few = pipelined_completion(net, tree, 4096, 2).events_processed
        many = pipelined_completion(net, tree, 4096, 8).events_processed
        assert many > few


class TestValidation:
    def test_bad_segments(self):
        net = make_network(3)
        with pytest.raises(ModelError):
            pipelined_completion(net, star_children(3), 100, 0)

    def test_bad_message_length(self):
        net = make_network(3)
        with pytest.raises(ModelError):
            pipelined_completion(net, star_children(3), 0, 1)

    def test_non_spanning_tree(self):
        net = make_network(4)
        with pytest.raises(ModelError, match="span"):
            pipelined_completion(net, {0: [1]}, 100, 1)

    def test_no_feasible_candidates(self):
        net = make_network(3)
        with pytest.raises(ModelError):
            optimal_segmentation(net, star_children(3), 0.5, candidates=[])
