"""Unit tests for the broadcast collective."""

import pytest

from repro.collectives.broadcast import broadcast_completion, broadcast_schedule
from repro.workloads.clusters import two_class_cluster


@pytest.fixture
def cluster():
    return two_class_cluster(3, 2)


class TestBroadcast:
    def test_reaches_everyone(self, cluster):
        s = broadcast_schedule(cluster, cluster[0].name)
        assert s.multicast.n == len(cluster) - 1

    def test_source_choice_matters(self, cluster):
        fast_src = broadcast_completion(cluster, "w0")  # fast machine
        slow_src = broadcast_completion(cluster, "w4")  # slow machine
        assert fast_src <= slow_src

    def test_algorithm_selectable(self, cluster):
        greedy = broadcast_completion(cluster, "w0", algorithm="greedy")
        star = broadcast_completion(cluster, "w0", algorithm="star-naive")
        assert greedy <= star

    def test_unknown_source_raises(self, cluster):
        with pytest.raises(ValueError):
            broadcast_schedule(cluster, "nobody")

    def test_latency_passed_through(self, cluster):
        fast_net = broadcast_completion(cluster, "w0", latency=1)
        slow_net = broadcast_completion(cluster, "w0", latency=10)
        assert fast_net < slow_net
