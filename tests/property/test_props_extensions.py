"""Property-based tests for the extension modules (local search, WAN,
segmentation)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.local_search import improve_schedule
from repro.core.leaf_reversal import greedy_with_reversal
from repro.core.schedule import Schedule
from repro.model.wan import WanNetwork, cluster_aware_wan, flat_greedy_wan

from tests.strategies import multicast_sets


# ----------------------------------------------------------------------
# local search
# ----------------------------------------------------------------------
@given(multicast_sets(max_n=7), st.integers(min_value=0, max_value=50))
@settings(max_examples=30, deadline=None)
def test_local_search_never_worse_than_any_seed(mset, seed):
    import random

    rng = random.Random(seed)
    children = {}
    in_tree = [0]
    for i in range(1, mset.n + 1):
        parent = rng.choice(in_tree)
        children.setdefault(parent, []).append(i)
        in_tree.append(i)
    seed_schedule = Schedule(mset, children)
    result = improve_schedule(seed_schedule)
    assert (
        result.schedule.reception_completion
        <= seed_schedule.reception_completion + 1e-9
    )
    assert result.improvement >= -1e-9


@given(multicast_sets(max_n=6))
@settings(max_examples=25, deadline=None)
def test_local_search_bounded_by_exact(mset):
    from repro.core.brute_force import solve_exact

    value = improve_schedule(greedy_with_reversal(mset)).schedule.reception_completion
    assert solve_exact(mset).value <= value + 1e-9


# ----------------------------------------------------------------------
# WAN model
# ----------------------------------------------------------------------
@st.composite
def wan_networks(draw):
    mset = draw(multicast_sets(min_n=3, max_n=9, max_types=3))
    nodes = list(mset.nodes)
    k = draw(st.integers(min_value=1, max_value=min(3, len(nodes))))
    clusters = {f"c{i}": [] for i in range(k)}
    for i, nd in enumerate(nodes):
        clusters[f"c{i % k}"].append(nd)
    local = draw(st.integers(min_value=1, max_value=4))
    wan = local + draw(st.integers(min_value=0, max_value=100))
    return WanNetwork(clusters, local, wan), nodes[0].name


@given(wan_networks())
@settings(max_examples=40, deadline=None)
def test_wan_schedulers_produce_valid_timing(net_and_src):
    network, source = net_and_src
    for schedule in (flat_greedy_wan(network, source), cluster_aware_wan(network, source)):
        # recurrence check: recompute every edge by hand
        for v, kids in schedule.children.items():
            for slot, child in enumerate(kids, start=1):
                lat = network.edge_latency(
                    schedule.order[v].name, schedule.order[child].name
                )
                expected = (
                    schedule.reception_times[v]
                    + slot * schedule.order[v].send_overhead
                    + lat
                    + schedule.order[child].receive_overhead
                )
                assert schedule.reception_times[child] == expected


@given(wan_networks())
@settings(max_examples=40, deadline=None)
def test_wan_aware_uses_minimum_long_haul_edges(net_and_src):
    network, source = net_and_src
    aware = cluster_aware_wan(network, source)
    if network.wan_latency == network.local_latency:
        return  # degenerate: no long-haul distinction
    remote_clusters = len(network.clusters) - 1
    assert aware.wan_edge_count() == remote_clusters  # one gateway hop each


@given(wan_networks())
@settings(max_examples=30, deadline=None)
def test_wan_degenerates_to_flat_model(net_and_src):
    """With wan == local every edge costs the same: both schedulers must
    match the paper's greedy+reversal completion on the flat instance."""
    network, source = net_and_src
    flat_net = WanNetwork(
        {name: list(members) for name, members in network.clusters},
        network.local_latency,
        network.local_latency,
    )
    from repro.core.multicast import MulticastSet

    nodes = [nd for nd in flat_net.nodes]
    src = next(nd for nd in nodes if nd.name == source)
    rest = [nd for nd in nodes if nd.name != source]
    mset = MulticastSet(src, rest, network.local_latency, validate_correlation=False)
    reference = greedy_with_reversal(mset).reception_completion
    flat = flat_greedy_wan(flat_net, source)
    assert flat.reception_completion == reference
