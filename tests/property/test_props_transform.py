"""Property-based tests: Lemma 3 / Theorem 1 proof machinery."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.greedy import greedy_schedule
from repro.core.layered import min_layered_delivery_completion
from repro.core.schedule import Schedule
from repro.core.transform import (
    exchange,
    layer_schedule,
    round_up_instance,
    uniform_ratio,
)

from tests.strategies import multicast_sets, power_of_two_multicasts


def random_schedule(mset, seed):
    import random

    rng = random.Random(seed)
    children = {}
    in_tree = [0]
    for i in range(1, mset.n + 1):
        parent = rng.choice(in_tree)
        children.setdefault(parent, []).append(i)
        in_tree.append(i)
    return Schedule(mset, children)


@given(multicast_sets())
@settings(max_examples=50, deadline=None)
def test_rounding_properties(mset):
    """Theorem 1's S' construction: all four stated properties."""
    rounded = round_up_instance(mset)
    c = math.ceil(mset.alpha_max)
    assert uniform_ratio(rounded) == c
    for orig, new in zip(mset.nodes, rounded.nodes):
        k = math.log2(new.send_overhead)
        assert abs(k - round(k)) < 1e-9
        assert orig.send_overhead <= new.send_overhead < 2 * orig.send_overhead
        assert orig.receive_overhead <= new.receive_overhead


def _exchangeable_pair(mset, schedule):
    """A pair (u, v) with d(u) < d(v), o_send(u) = e*o_send(v), e >= 2."""
    for u in range(1, mset.n + 1):
        for v in range(1, mset.n + 1):
            if u == v:
                continue
            if schedule.delivery_time(u) < schedule.delivery_time(v):
                ratio = mset.send(u) / mset.send(v)
                if ratio >= 2 and abs(ratio - round(ratio)) < 1e-9:
                    return (u, v)
    return None


@given(
    power_of_two_multicasts(guarantee_exchange_pair=True),
    st.integers(min_value=0, max_value=99),
)
@settings(max_examples=50, deadline=None)
def test_exchange_lemma3_postconditions(mset, seed):
    """Random exchanges on random schedules satisfy Lemma 3's properties."""
    # the strategy guarantees mixed send magnitudes, so nearly every random
    # schedule has an exchangeable pair; trying a few seeds makes assume()
    # rejections vanishingly rare (no filter_too_much health-check trips)
    schedule = pair = None
    for offset in range(8):
        candidate = random_schedule(mset, seed + offset)
        pair = _exchangeable_pair(mset, candidate)
        if pair is not None:
            schedule = candidate
            break
    assume(pair is not None)
    u, v = pair
    out = exchange(schedule, u, v)
    # property 1: swapped delivery times
    assert out.delivery_time(v) == schedule.delivery_time(u)
    assert out.delivery_time(u) == schedule.delivery_time(v)
    # property 2: non-descendants untouched
    affected = set(schedule.descendants(u)) | set(schedule.descendants(v)) | {u, v}
    for w in range(1, mset.n + 1):
        if w not in affected:
            assert out.delivery_time(w) == schedule.delivery_time(w)
    # property 3: D_T does not increase
    assert out.delivery_completion <= schedule.delivery_completion + 1e-9
    # bonus invariants: children of u keep their delivery times exactly
    for child, _slot in schedule.children_of(u):
        if child != v:
            assert out.delivery_time(child) == schedule.delivery_time(child)


@given(power_of_two_multicasts(), st.integers(min_value=0, max_value=49))
@settings(max_examples=50, deadline=None)
def test_layer_schedule_produces_layered_without_hurting_d(mset, seed):
    schedule = random_schedule(mset, seed)
    layered = layer_schedule(schedule)
    assert layered.is_layered()
    assert layered.delivery_completion <= schedule.delivery_completion + 1e-9


@given(power_of_two_multicasts(max_n=5), st.integers(min_value=0, max_value=19))
@settings(max_examples=30, deadline=None)
def test_theorem1_proof_chain(mset, seed):
    """greedy D <= layered(any schedule) D <= that schedule's D (on S')."""
    schedule = random_schedule(mset, seed)
    layered = layer_schedule(schedule)
    greedy = greedy_schedule(mset)
    assert greedy.delivery_completion <= layered.delivery_completion + 1e-9
    # and Corollary 1 pins greedy to the exhaustive layered minimum
    assert abs(
        greedy.delivery_completion - min_layered_delivery_completion(mset)
    ) < 1e-9
