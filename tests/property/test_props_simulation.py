"""Property-based tests: the simulator agrees with the analytic model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.core.schedule import Schedule
from repro.simulation.executor import simulate_schedule
from repro.simulation.jitter import uniform_jitter

from tests.strategies import multicast_sets


@st.composite
def schedules(draw):
    mset = draw(multicast_sets(max_n=7))
    children = {}
    in_tree = [0]
    for i in range(1, mset.n + 1):
        parent = draw(st.sampled_from(in_tree))
        children.setdefault(parent, []).append(i)
        in_tree.append(i)
    return Schedule(mset, children)


@given(schedules())
@settings(max_examples=50, deadline=None)
def test_simulation_matches_recurrences(schedule):
    """The central cross-validation: executing any tree reproduces the
    Section 2 recurrences exactly (simulate_schedule raises otherwise)."""
    result = simulate_schedule(schedule)
    assert result.reception_times == schedule.reception_times


@given(schedules())
@settings(max_examples=50, deadline=None)
def test_no_node_overlaps_operations(schedule):
    result = simulate_schedule(schedule)
    result.trace.assert_no_overlap()  # model constraint enforced


@given(schedules())
@settings(max_examples=40, deadline=None)
def test_every_destination_busy_exactly_once_receiving(schedule):
    result = simulate_schedule(schedule)
    recv_counts = {}
    for iv in result.trace.intervals:
        if iv.kind == "receive":
            recv_counts[iv.node] = recv_counts.get(iv.node, 0) + 1
    assert recv_counts == {v: 1 for v in range(1, schedule.multicast.n + 1)}


@given(schedules())
@settings(max_examples=40, deadline=None)
def test_send_counts_match_degrees(schedule):
    result = simulate_schedule(schedule)
    send_counts = {}
    for iv in result.trace.intervals:
        if iv.kind == "send":
            send_counts[iv.node] = send_counts.get(iv.node, 0) + 1
    expected = {
        v: len(schedule.children_of(v))
        for v in range(schedule.multicast.n + 1)
        if schedule.children_of(v)
    }
    assert send_counts == expected


@given(multicast_sets(max_n=6), st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_jittered_runs_deterministic_and_bounded(mset, seed):
    s = reverse_leaves(greedy_schedule(mset))
    amp = 0.4
    a = simulate_schedule(s, jitter=uniform_jitter(amp, seed), verify=False)
    b = simulate_schedule(s, jitter=uniform_jitter(amp, seed), verify=False)
    assert a.reception_times == b.reception_times
    # per-path bound: |shift| <= amplitude * depth
    for v in range(1, mset.n + 1):
        depth, w = 0, v
        while w != 0:
            w = s.parent_of(w)
            depth += 1
        assert abs(a.reception_times[v] - s.reception_time(v)) <= amp * depth + 1e-9
