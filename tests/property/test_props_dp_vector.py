"""Property-based tests: scalar/vector DP bit-identity over random instances.

The vectorized backend's contract is *exact* equality with the scalar
scan — value, schedule, states — on every correlated instance, under
both engines (numpy slabs and the stdlib-``array`` fallback).  Random
snapshot round trips ride along: saving and loading a table built from a
random box must preserve every entry byte for byte.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.dp import solve_dp
from repro.core.dp_vector import NO_NUMPY_ENV, numpy_available, solve_dp_vector

from tests.strategies import multicast_sets

#: The engine fixture only flips a process-wide env var, identical across
#: examples, so not resetting it per example is sound.
ENGINE_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)


@pytest.fixture(params=["numpy", "array"])
def engine(request):
    """Both engines; Hypothesis forbids function-scoped monkeypatch."""
    previous = os.environ.get(NO_NUMPY_ENV)
    if request.param == "numpy":
        if not numpy_available():
            pytest.skip("numpy engine unavailable")
        os.environ.pop(NO_NUMPY_ENV, None)
    else:
        os.environ[NO_NUMPY_ENV] = "1"
    try:
        yield request.param
    finally:
        if previous is None:
            os.environ.pop(NO_NUMPY_ENV, None)
        else:  # pragma: no cover - env hygiene
            os.environ[NO_NUMPY_ENV] = previous


@given(multicast_sets(max_n=8, max_types=3))
@settings(max_examples=60, **ENGINE_SETTINGS)
def test_vector_solve_bit_identical(engine, mset):
    scalar = solve_dp(mset)
    vector = solve_dp_vector(mset)
    assert vector.value == scalar.value
    assert vector.schedule == scalar.schedule
    assert vector.schedule.reception_times == scalar.schedule.reception_times
    assert vector.schedule.delivery_times == scalar.schedule.delivery_times
    assert vector.states_computed == scalar.states_computed


@given(multicast_sets(max_n=7, max_types=3, max_latency=4))
@settings(max_examples=30, **ENGINE_SETTINGS)
def test_vector_snapshot_round_trip(engine, tmp_path_factory, mset):
    """A random table snapshots and reloads with every entry intact."""
    from repro.core.canonical import canonicalize
    from repro.core.dp_table import OptimalTable

    canon = canonicalize(mset).mset
    counts = canon.destination_type_counts()
    table = OptimalTable(
        canon.type_keys(), counts, canon.latency, backend="vector"
    ).build()
    path = tmp_path_factory.mktemp("snap") / "t.snap"
    table.save_snapshot(path)
    loaded = OptimalTable.load_snapshot(path)
    k = len(counts)
    for s in range(k):
        assert loaded.completion(s, counts) == table.completion(s, counts)
    assert loaded.schedule_for(canon) == table.schedule_for(canon)
