"""Property-based tests: the leaf reversal's paper-stated guarantees."""

import itertools

from hypothesis import given, settings

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import leaf_slots, reverse_leaves

from tests.strategies import multicast_sets


@given(multicast_sets())
@settings(max_examples=60, deadline=None)
def test_reversal_never_increases_completion(mset):
    """The paper's claim, verbatim."""
    before = greedy_schedule(mset)
    after = reverse_leaves(before)
    assert after.reception_completion <= before.reception_completion + 1e-9


@given(multicast_sets())
@settings(max_examples=60, deadline=None)
def test_reversal_preserves_internal_times(mset):
    before = greedy_schedule(mset)
    after = reverse_leaves(before)
    leaves = set(before.leaves())
    for v in range(1, mset.n + 1):
        if v not in leaves:
            assert after.delivery_time(v) == before.delivery_time(v)


@given(multicast_sets())
@settings(max_examples=60, deadline=None)
def test_reversal_preserves_delivery_multiset(mset):
    before = greedy_schedule(mset)
    after = reverse_leaves(before)
    assert sorted(before.delivery_times) == sorted(after.delivery_times)


@given(multicast_sets(max_n=6))
@settings(max_examples=30, deadline=None)
def test_reversal_is_optimal_assignment(mset):
    """Stronger than the paper: reversal is the best leaf permutation."""
    base = greedy_schedule(mset)
    slots = leaf_slots(base)
    leaves = list(base.leaves())
    if len(leaves) > 5:
        leaves = leaves[:5]  # keep the factorial small; slots align by zip
    reversed_value = reverse_leaves(base).reception_completion
    internal_max = max(
        (
            base.reception_time(v)
            for v in range(mset.n + 1)
            if v not in set(base.leaves())
        ),
        default=0.0,
    )
    for perm in itertools.permutations(base.leaves()):
        value = max(
            [internal_max]
            + [d + mset.receive(leaf) for (_p, _s, d), leaf in zip(slots, perm)]
        )
        assert reversed_value <= value + 1e-9


@given(multicast_sets())
@settings(max_examples=40, deadline=None)
def test_reversal_keeps_leaf_set(mset):
    before = greedy_schedule(mset)
    after = reverse_leaves(before)
    assert set(before.leaves()) == set(after.leaves())
