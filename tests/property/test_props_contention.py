"""Property-based cross-group contention tests.

Every multi-group composition strategy must place concurrent groups so
that no shared sender is claimed by two groups at once, each per-group
schedule stays a valid single-group plan, replanning the same instance on
a fresh planner reproduces the result bit-identically, and the sequential
baseline's max-makespan is invariant under group permutation while the
interleaving strategies never do worse than it.

Instances come from :func:`tests.strategies.multi_group_instances`, which
shares sender nodes across groups *by construction* (every group reuses
the template source verbatim), so these properties exercise real
contention on every example rather than hoping a free draw collides.

The nightly contention-fuzz CI step sets ``REPRO_CONTENTION_FUZZ_S`` to
widen the example budget; local and tier-1 runs use the quick default.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.multigroup import MultiGroupPlanner, available_multi_group_solvers
from repro.core.contention import MULTI_GROUP_STRATEGIES, MultiGroupSchedule
from repro.exceptions import ContentionError, SimulationError
from repro.simulation import simulate_multi_group

from tests.strategies import multi_group_instances

# the nightly contention-fuzz job exports REPRO_CONTENTION_FUZZ_S to buy a
# wider example budget; everything stays deterministic under the ci profile
_FUZZ = int(os.environ.get("REPRO_CONTENTION_FUZZ_S", "0"))
MAX_EXAMPLES = 150 if _FUZZ else 25

STRATEGIES = tuple(sorted(MULTI_GROUP_STRATEGIES))


def _compare(instance):
    """All strategies on one shared planner (inner solves cached once)."""
    return MultiGroupPlanner().compare_strategies(instance)


def test_strategy_inventory():
    """The properties below must cover every registered composition."""
    assert STRATEGIES == ("greedy-pack", "round-robin", "sequential")
    assert available_multi_group_solvers() == [
        "mg-greedy-pack", "mg-round-robin", "mg-sequential"
    ]


@given(instance=multi_group_instances())
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_no_shared_sender_overlap(instance):
    """Every strategy's output passes both the analytic and the simulated
    no-overlap check on shared nodes."""
    for name, result in _compare(instance).items():
        schedule = result.schedule
        schedule.assert_no_contention()  # analytic claim intervals
        sim = simulate_multi_group(schedule)  # replays + cross-checks
        assert abs(sim.makespan - result.max_makespan) < 1e-9, name


@given(instance=multi_group_instances())
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_groups_keep_valid_single_group_schedules(instance):
    """Composition only shifts groups rigidly: each inner schedule is a
    valid plan of exactly its group's multicast."""
    for result in _compare(instance).values():
        for g, schedule in enumerate(result.schedule.schedules):
            assert schedule.multicast == instance.groups[g]
            # Schedule validated itself on construction; re-derive the
            # completion to catch a composition that mutated times
            assert result.schedule.group_completion(g) == (
                result.schedule.offsets[g] + schedule.reception_completion
            )


@given(instance=multi_group_instances(), seed=st.integers(0, 3))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_deterministic_under_replay(instance, seed):
    """Two fresh planners agree bit-for-bit on offsets and objectives."""
    del seed  # the draw just varies example order; planning takes no seed
    first = _compare(instance)
    second = _compare(instance)
    assert sorted(first) == sorted(second)
    for name in first:
        a, b = first[name], second[name]
        assert a.schedule.offsets == b.schedule.offsets, name
        assert a.max_makespan == b.max_makespan, name
        assert a.weighted_sum == b.weighted_sum, name
        assert a.schedule == b.schedule, name


@given(instance=multi_group_instances(max_groups=3), data=st.data())
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_sequential_makespan_is_permutation_invariant(instance, data):
    """Serializing the groups costs the same total in any order."""
    order = data.draw(
        st.permutations(range(instance.n_groups)), label="order"
    )
    planner = MultiGroupPlanner()
    base = planner.plan_groups(instance, "mg-sequential")
    permuted = planner.plan_groups(instance.permuted(order), "mg-sequential")
    assert abs(base.max_makespan - permuted.max_makespan) < 1e-9


@given(instance=multi_group_instances())
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_interleaving_never_loses_to_sequential(instance):
    """The dominance sanity the conformance suite enforces, on random
    instances: greedy packing never exceeds the serialized max-makespan
    (its offsets are minimal-feasible, so the serialized placement is
    always available to it), hence the best interleaving never loses.
    Round-robin alone carries no such guarantee — its uniform stride can
    overshoot on skewed group sizes — which is why the conformance check
    compares sequential against the *best* interleaved strategy."""
    results = _compare(instance)
    sequential = results["mg-sequential"].max_makespan
    assert results["mg-greedy-pack"].max_makespan <= sequential + 1e-9
    best_interleaved = min(
        results[name].max_makespan
        for name in results
        if name != "mg-sequential"
    )
    assert best_interleaved <= sequential + 1e-9


@given(instance=multi_group_instances(max_groups=3))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_overlapping_offsets_are_rejected(instance):
    """Forcing every group to offset 0 must trip the contention check
    whenever two groups actually claim a shared sender together."""
    schedules = MultiGroupPlanner().plan_groups(instance).schedule.schedules
    zeroed = MultiGroupSchedule(
        instance, schedules, (0.0,) * instance.n_groups, validate=False
    )
    try:
        zeroed.assert_no_contention()
    except ContentionError:
        return  # the expected outcome on genuinely contended claims
    # all-zero offsets can be legitimately feasible (e.g. the shared
    # source's send slots happen to be disjoint) — then simulation must
    # agree that the placement is clean
    sim = simulate_multi_group(zeroed)
    sim.assert_no_cross_overlap()


@given(instance=multi_group_instances())
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_simulation_rejects_tampered_offsets(instance):
    """Shrinking a strictly positive offset below a conflicting claim is
    caught by the simulator's cross-group verification."""
    result = MultiGroupPlanner().plan_groups(instance, "mg-sequential")
    offsets = list(result.schedule.offsets)
    if all(t == 0 for t in offsets[1:]):
        return  # single group or degenerate placement: nothing to tamper
    tampered = MultiGroupSchedule(
        instance,
        result.schedule.schedules,
        tuple(0.0 for _ in offsets),
        validate=False,
    )
    try:
        simulate_multi_group(tampered)
    except SimulationError:
        pass  # overlap detected, as required
    else:
        # as above: zero offsets may be feasible for this instance; the
        # analytic checker must then agree
        tampered.assert_no_contention()
