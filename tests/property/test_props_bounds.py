"""Property-based tests: the bound lattice LB <= OPT <= heuristics <= bound."""

from hypothesis import given, settings

from repro.core.bounds import (
    certified_lower_bound,
    first_hop_lower_bound,
    homogeneous_relaxation_lower_bound,
    theorem1_bound,
)
from repro.core.brute_force import solve_exact
from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves

from tests.strategies import multicast_sets


@given(multicast_sets(max_n=6))
@settings(max_examples=40, deadline=None)
def test_bound_lattice(mset):
    """The full chain of inequalities on every random instance."""
    opt = solve_exact(mset).value
    greedy = greedy_schedule(mset).reception_completion
    refined = reverse_leaves(greedy_schedule(mset)).reception_completion
    lb = certified_lower_bound(mset)
    assert lb <= opt + 1e-9
    assert opt <= refined + 1e-9
    assert refined <= greedy + 1e-9
    assert greedy < theorem1_bound(mset, opt) + 1e-9


@given(multicast_sets())
@settings(max_examples=60, deadline=None)
def test_lower_bounds_below_greedy(mset):
    """Even without exact OPT the LBs must sit below any feasible value."""
    greedy = greedy_schedule(mset).reception_completion
    assert first_hop_lower_bound(mset) <= greedy + 1e-9
    assert homogeneous_relaxation_lower_bound(mset) <= greedy + 1e-9


@given(multicast_sets())
@settings(max_examples=60, deadline=None)
def test_first_hop_bound_structure(mset):
    lb = first_hop_lower_bound(mset)
    assert lb == mset.send(0) + mset.latency + max(
        d.receive_overhead for d in mset.destinations
    )
