"""Property-based tests for the collectives extensions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.gather import gather_completion
from repro.collectives.pipeline import pipelined_completion
from repro.collectives.reduce import reduce_completion_forward, reduce_plan
from repro.collectives.scatter import scatter_completion, star_children
from repro.model.linear import LinearCost, MachineSpec, NetworkSpec

from tests.strategies import multicast_sets


@st.composite
def affine_networks(draw, min_machines=3, max_machines=6):
    n = draw(st.integers(min_value=min_machines, max_value=max_machines))
    machines = []
    for i in range(n):
        fixed_s = draw(st.integers(min_value=5, max_value=30))
        fixed_r = fixed_s + draw(st.integers(min_value=0, max_value=20))
        machines.append(
            MachineSpec(
                f"m{i}",
                LinearCost(fixed_s, 0.01 * draw(st.integers(min_value=1, max_value=4))),
                LinearCost(fixed_r, 0.01 * draw(st.integers(min_value=1, max_value=5))),
            )
        )
    lat = LinearCost(
        draw(st.integers(min_value=5, max_value=60)),
        0.01 * draw(st.integers(min_value=1, max_value=8)),
    )
    return NetworkSpec(machines=tuple(machines), latency=lat)


@st.composite
def trees_over(draw, n):
    children = {}
    in_tree = [0]
    for i in range(1, n):
        parent = draw(st.sampled_from(in_tree))
        children.setdefault(parent, []).append(i)
        in_tree.append(i)
    return children


# ----------------------------------------------------------------------
# reduce duality
# ----------------------------------------------------------------------
@given(multicast_sets(max_n=7))
@settings(max_examples=40, deadline=None)
def test_reduce_duality_everywhere(mset):
    plan = reduce_plan(mset)
    assert abs(reduce_completion_forward(mset, plan) - plan.completion) < 1e-9


# ----------------------------------------------------------------------
# scatter / gather
# ----------------------------------------------------------------------
@given(affine_networks(), st.data())
@settings(max_examples=40, deadline=None)
def test_scatter_monotone_in_payloads(network, data):
    n = len(network.machines)
    tree = data.draw(trees_over(n))
    base = [0.0] + [float(data.draw(st.integers(min_value=1, max_value=5000)))
                    for _ in range(n - 1)]
    bigger = [0.0] + [p * 2 for p in base[1:]]
    small = scatter_completion(network, tree, base)
    large = scatter_completion(network, tree, bigger)
    assert large.completion >= small.completion


@given(affine_networks(), st.data())
@settings(max_examples=40, deadline=None)
def test_gather_waits_for_every_subtree(network, data):
    n = len(network.machines)
    tree = data.draw(trees_over(n))
    payloads = [0.0] + [100.0] * (n - 1)
    result = gather_completion(network, tree, payloads)
    # completion is at least any single child's full transfer into the root
    for child in tree.get(0, []):
        child_bytes = 100.0  # at minimum its own payload
        single = (
            network.machines[child].send.at(child_bytes, integral=False)
            + network.latency.at(child_bytes, integral=False)
            + network.machines[0].receive.at(child_bytes, integral=False)
        )
        assert result.completion >= single - 1e-9


@given(affine_networks())
@settings(max_examples=30, deadline=None)
def test_star_scatter_bytes_are_minimal(network):
    n = len(network.machines)
    payloads = [0.0] + [64.0] * (n - 1)
    star = scatter_completion(network, star_children(n), payloads)
    assert star.bytes_sent[0] == 64.0 * (n - 1)
    assert all(b == 0 for b in star.bytes_sent[1:])


# ----------------------------------------------------------------------
# pipelined multicast
# ----------------------------------------------------------------------
@given(affine_networks(), st.data())
@settings(max_examples=30, deadline=None)
def test_pipeline_single_segment_matches_recurrences(network, data):
    from repro.core.multicast import MulticastSet
    from repro.core.schedule import Schedule

    n = len(network.machines)
    tree = data.draw(trees_over(n))
    msg = float(data.draw(st.integers(min_value=10, max_value=10000)))
    result = pipelined_completion(network, tree, msg, segments=1)
    nodes = [m.node_at(msg, integral=False) for m in network.machines]
    mset = MulticastSet(
        nodes[0], nodes[1:], network.latency.at(msg, integral=False),
        validate_correlation=False,
    )
    name_to_idx = {nd.name: i for i, nd in enumerate(mset.nodes)}
    children = {
        name_to_idx[network.machines[p].name]: [
            name_to_idx[network.machines[c].name] for c in kids
        ]
        for p, kids in tree.items()
    }
    schedule = Schedule(mset, children)
    assert abs(result.completion - schedule.reception_completion) < 1e-6


@given(affine_networks(), st.data(), st.integers(min_value=2, max_value=8))
@settings(max_examples=30, deadline=None)
def test_pipeline_every_segment_reaches_everyone(network, data, segments):
    n = len(network.machines)
    tree = data.draw(trees_over(n))
    result = pipelined_completion(network, tree, 4096.0, segments)
    assert result.completion > 0
    assert len(result.last_segment_receptions) == n
    assert all(t > 0 for t in result.last_segment_receptions[1:])
