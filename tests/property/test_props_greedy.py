"""Property-based tests: the greedy algorithm's paper-stated invariants."""

from hypothesis import given, settings

from repro.core.brute_force import solve_exact
from repro.core.bounds import theorem1_bound
from repro.core.greedy import greedy_schedule
from repro.core.layered import min_layered_delivery_completion

from tests.strategies import multicast_sets


@given(multicast_sets())
@settings(max_examples=60, deadline=None)
def test_greedy_is_layered(mset):
    """Section 2: every schedule produced by the greedy is layered."""
    assert greedy_schedule(mset).is_layered()


@given(multicast_sets())
@settings(max_examples=60, deadline=None)
def test_greedy_is_canonical_spanning(mset):
    s = greedy_schedule(mset)
    assert s.is_canonical()
    assert sorted(s.descendants(0)) == list(range(1, mset.n + 1))


@given(multicast_sets())
@settings(max_examples=40, deadline=None)
def test_greedy_deliveries_sorted_with_index(mset):
    """Deliveries happen in canonical destination order (layering, indexed)."""
    s = greedy_schedule(mset)
    ds = [s.delivery_time(i) for i in range(1, mset.n + 1)]
    assert all(a <= b + 1e-9 for a, b in zip(ds, ds[1:]))


@given(multicast_sets(max_n=6))
@settings(max_examples=30, deadline=None)
def test_theorem1_bound_holds_vs_exact_optimum(mset):
    """Theorem 1 with the true optimum on every random instance."""
    greedy = greedy_schedule(mset).reception_completion
    opt = solve_exact(mset).value
    assert greedy < theorem1_bound(mset, opt) + 1e-9


@given(multicast_sets(max_n=5))
@settings(max_examples=25, deadline=None)
def test_corollary1_greedy_layered_optimal(mset):
    """Corollary 1: greedy D_T == min D_T over all layered schedules."""
    greedy_d = greedy_schedule(mset).delivery_completion
    assert abs(greedy_d - min_layered_delivery_completion(mset)) < 1e-9


@given(multicast_sets())
@settings(max_examples=40, deadline=None)
def test_lemma2_dominance(mset):
    """Lemma 2: greedy on a dominated instance completes no later."""
    dominated = mset  # original
    # build a componentwise >= instance by doubling every overhead
    from repro.core.multicast import MulticastSet

    bigger = MulticastSet(
        mset.source.with_overheads(
            mset.source.send_overhead * 2, mset.source.receive_overhead * 2
        ),
        [
            d.with_overheads(d.send_overhead * 2, d.receive_overhead * 2)
            for d in mset.destinations
        ],
        mset.latency,
    )
    assert (
        greedy_schedule(dominated).delivery_completion
        <= greedy_schedule(bigger).delivery_completion + 1e-9
    )
