"""Property-based tests: the Section 4 DP against independent oracles."""

from hypothesis import given, settings

from repro.core.brute_force import solve_exact
from repro.core.dp import solve_dp
from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves

from tests.strategies import multicast_sets


@given(multicast_sets(max_n=6, max_types=3))
@settings(max_examples=40, deadline=None)
def test_dp_equals_branch_and_bound(mset):
    """Theorem 2's optimality against the independent exact solver."""
    assert abs(solve_dp(mset).value - solve_exact(mset).value) < 1e-9


@given(multicast_sets(max_n=8, max_types=3))
@settings(max_examples=40, deadline=None)
def test_dp_schedule_attains_value(mset):
    sol = solve_dp(mset)
    assert abs(sol.schedule.reception_completion - sol.value) < 1e-9


@given(multicast_sets(max_n=8, max_types=3))
@settings(max_examples=40, deadline=None)
def test_dp_below_heuristics(mset):
    opt = solve_dp(mset).value
    assert opt <= greedy_schedule(mset).reception_completion + 1e-9
    assert opt <= reverse_leaves(greedy_schedule(mset)).reception_completion + 1e-9


@given(multicast_sets(max_n=8, max_types=3))
@settings(max_examples=30, deadline=None)
def test_dp_monotone_in_destinations(mset):
    """Dropping the slowest destination cannot increase the optimum."""
    if mset.n < 2:
        return
    from repro.core.multicast import MulticastSet

    smaller = MulticastSet(
        mset.source, mset.destinations[:-1], mset.latency
    )
    assert solve_dp(smaller).value <= solve_dp(mset).value + 1e-9


@given(multicast_sets(max_n=7, max_types=2))
@settings(max_examples=30, deadline=None)
def test_dp_schedule_verified_by_simulator(mset):
    from repro.simulation.executor import simulate_schedule

    sol = solve_dp(mset)
    result = simulate_schedule(sol.schedule)  # raises on divergence
    assert result.reception_completion == sol.value
