"""Property-based tests: schedule timing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import greedy_schedule
from repro.core.schedule import Schedule

from tests.strategies import multicast_sets


@st.composite
def random_schedules(draw):
    """A random canonical schedule over a random instance."""
    mset = draw(multicast_sets(max_n=7))
    children = {}
    in_tree = [0]
    for i in range(1, mset.n + 1):
        parent = draw(st.sampled_from(in_tree))
        children.setdefault(parent, []).append(i)
        in_tree.append(i)
    return Schedule(mset, children)


@given(random_schedules())
@settings(max_examples=60, deadline=None)
def test_recurrence_invariants(schedule):
    """d(w) = r(parent) + slot*o_send + L and r = d + o_recv, everywhere."""
    mset = schedule.multicast
    for parent, child, slot in schedule.edges():
        expected_d = (
            schedule.reception_time(parent) + slot * mset.send(parent) + mset.latency
        )
        assert schedule.delivery_time(child) == expected_d
        assert schedule.reception_time(child) == expected_d + mset.receive(child)


@given(random_schedules())
@settings(max_examples=60, deadline=None)
def test_children_delivered_after_parent(schedule):
    for parent, child, _slot in schedule.edges():
        if parent != 0:
            assert schedule.delivery_time(child) > schedule.delivery_time(parent)


@given(random_schedules())
@settings(max_examples=60, deadline=None)
def test_completion_bounds(schedule):
    mset = schedule.multicast
    assert schedule.reception_completion >= schedule.delivery_completion
    min_recv = min(mset.receive(i) for i in range(1, mset.n + 1))
    assert schedule.reception_completion >= schedule.delivery_completion + min_recv - 1e-9


@given(random_schedules())
@settings(max_examples=40, deadline=None)
def test_compact_idempotent_and_monotone(schedule):
    tight = schedule.compact()
    assert tight.is_canonical()
    assert tight.compact() == tight
    for v in range(1, schedule.multicast.n + 1):
        assert tight.delivery_time(v) <= schedule.delivery_time(v) + 1e-9


@given(random_schedules())
@settings(max_examples=40, deadline=None)
def test_every_schedule_at_least_first_hop(schedule):
    """No schedule beats the physics: source send + latency + own receive."""
    mset = schedule.multicast
    for v in range(1, mset.n + 1):
        assert (
            schedule.reception_time(v)
            >= mset.send(0) + mset.latency + mset.receive(v) - 1e-9
        )


@given(multicast_sets(max_n=6))
@settings(max_examples=30, deadline=None)
def test_greedy_at_most_any_random_tree(mset):
    """Greedy beats (or ties) an arbitrary deterministic random tree on D_T
    only when that tree is layered — but its R_T must always be within the
    Theorem 1 envelope of the tree's value (sanity ordering check)."""
    import random

    from repro.core.bounds import theorem1_factor

    rng = random.Random(0)
    children = {}
    in_tree = [0]
    for i in range(1, mset.n + 1):
        parent = rng.choice(in_tree)
        children.setdefault(parent, []).append(i)
        in_tree.append(i)
    arbitrary = Schedule(mset, children)
    greedy = greedy_schedule(mset)
    # the arbitrary schedule is an upper bound witness for OPT
    assert (
        greedy.reception_completion
        < theorem1_factor(mset) * arbitrary.reception_completion + mset.beta + 1e-9
    )
