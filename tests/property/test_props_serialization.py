"""Property-based tests: serialization round-trips."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.core.schedule import Schedule
from repro.io.serialization import (
    multicast_from_dict,
    multicast_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)

from tests.strategies import multicast_sets


@given(multicast_sets())
@settings(max_examples=60, deadline=None)
def test_multicast_roundtrip(mset):
    assert multicast_from_dict(multicast_to_dict(mset)) == mset


@given(multicast_sets())
@settings(max_examples=60, deadline=None)
def test_multicast_roundtrip_through_json_text(mset):
    text = json.dumps(multicast_to_dict(mset))
    assert multicast_from_dict(json.loads(text)) == mset


@given(multicast_sets())
@settings(max_examples=40, deadline=None)
def test_schedule_roundtrip_preserves_everything(mset):
    s = reverse_leaves(greedy_schedule(mset))
    back = schedule_from_dict(schedule_to_dict(s))
    assert back == s
    assert back.reception_times == s.reception_times
    assert back.delivery_times == s.delivery_times


@given(multicast_sets(max_n=6), st.integers(min_value=0, max_value=99))
@settings(max_examples=40, deadline=None)
def test_random_tree_roundtrip(mset, seed):
    import random

    rng = random.Random(seed)
    children = {}
    in_tree = [0]
    for i in range(1, mset.n + 1):
        parent = rng.choice(in_tree)
        children.setdefault(parent, []).append(i)
        in_tree.append(i)
    s = Schedule(mset, children)
    assert schedule_from_dict(schedule_to_dict(s)) == s
