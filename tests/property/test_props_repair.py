"""Property-based churn tests: repair is bit-identical to cold re-planning.

The headline property of the online layer: for every solver that declares
``reusable_table``, opening a session and streaming a random membership
delta chain yields, at every step, a plan byte-equal — values, schedules,
bounds, provenance — to cold-planning that step's membership from
scratch.  The chain strategy (:func:`tests.strategies.delta_chains`)
shrinks to minimal failing chains over minimal instances.

The nightly churn-fuzz CI step sets ``REPRO_CHURN_FUZZ_S`` to widen the
example budget; local and tier-1 runs use the quick default.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.planner import Planner
from repro.api.request import PlanRequest
from repro.api.solvers import available_solvers, resolve
from repro.conformance.invariants import canonical_result_payload
from repro.core.repair import apply_delta, apply_deltas, churn_chain, repair_mode
from repro.exceptions import ModelError
from repro.service.sessions import SessionManager

from tests.strategies import delta_chains, membership_deltas

# the nightly churn-fuzz job exports REPRO_CHURN_FUZZ_S to buy a wider
# example budget; everything stays deterministic under the ci profile
_FUZZ = int(os.environ.get("REPRO_CHURN_FUZZ_S", "0"))
MAX_EXAMPLES = 200 if _FUZZ else 25

REUSABLE_SOLVERS = tuple(
    name
    for name in available_solvers()
    if resolve(name)[0].capabilities.reusable_table
)


def test_reusable_solver_inventory():
    """The property below must actually cover the table-reusing solvers."""
    assert "dp" in REUSABLE_SOLVERS


@given(chain=delta_chains(max_n=5, max_types=3), solver=st.sampled_from(REUSABLE_SOLVERS))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_repair_identity_over_random_chains(chain, solver):
    """Session repair == cold re-plan, byte for byte, at every delta."""
    base, deltas = chain
    entry, _ = resolve(solver)
    if not entry.capabilities.supports(base):
        return
    manager = SessionManager(Planner(cache_size=0))
    cold = Planner(cache_size=0, reuse_tables=False)
    opened = manager.open(PlanRequest(instance=base, solver=solver))
    try:
        assert canonical_result_payload(opened.result) == canonical_result_payload(
            cold.plan(PlanRequest(instance=base, solver=solver))
        )
        mset = base
        for delta in deltas:
            mset = apply_delta(mset, delta)
            if not entry.capabilities.supports(mset):
                break
            update = manager.apply(opened.session_id, delta)
            assert update.seq == delta.seq
            assert canonical_result_payload(update.result) == canonical_result_payload(
                cold.plan(PlanRequest(instance=mset, solver=solver))
            ), f"repair diverged from cold re-plan at seq {delta.seq}"
    finally:
        manager.close(opened.session_id)


@given(chain=delta_chains(max_n=6))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_chains_never_empty_the_group(chain):
    """The chain strategy's core guarantee: every prefix stays plannable."""
    base, deltas = chain
    current = base
    for delta in deltas:
        current = apply_delta(current, delta)
        assert current.n >= 1
        assert current.source == base.source
        assert current.latency == base.latency


@given(chain=delta_chains(max_n=5))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_apply_deltas_matches_stepwise_fold(chain):
    """apply_deltas is exactly the left fold of apply_delta."""
    base, deltas = chain
    stepwise = base
    for delta in deltas:
        stepwise = apply_delta(stepwise, delta)
    assert apply_deltas(base, deltas) == stepwise


@given(chain=delta_chains(max_n=5))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_repair_mode_is_sound(chain):
    """"suffix" is only claimed when the canonical network truly matches."""
    base, deltas = chain
    after = apply_deltas(base, deltas)
    mode = repair_mode(base, after)
    assert mode in ("suffix", "rebuild")
    same = (
        base.canonical_form().network_key == after.canonical_form().network_key
    )
    assert (mode == "suffix") == same


@given(delta=membership_deltas())
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_arbitrary_deltas_apply_or_fail_closed(delta):
    """A structurally valid delta either applies cleanly or rejects whole."""
    from repro.core.multicast import MulticastSet

    base = MulticastSet.from_overheads(
        source=(2, 3), destinations=[(1, 1), (2, 3)], latency=1
    )
    before = base
    try:
        after = apply_delta(base, delta)
    except ModelError:
        # fail-closed: the membership object is untouched and replannable
        assert base == before
        return
    assert after.n >= 1
    assert after.source == base.source


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_churn_chain_is_deterministic_and_applicable(seed):
    """churn_chain replays bit-identically from (instance, seed) alone."""
    from repro.core.multicast import MulticastSet

    base = MulticastSet.from_overheads(
        source=(5, 8), destinations=[(1, 1), (1, 1), (2, 3)], latency=1
    )
    first = churn_chain(base, seed=seed, length=4)
    second = churn_chain(base, seed=seed, length=4)
    assert first == second
    final = apply_deltas(base, first)
    assert final.n >= 1
    assert tuple(d.seq for d in first) == (1, 2, 3, 4)
