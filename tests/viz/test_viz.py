"""Unit tests for the ASCII tree and Gantt renderers."""

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.schedule import Schedule
from repro.exceptions import ReproError
from repro.simulation.executor import simulate_schedule
from repro.viz.ascii_tree import render_tree
from repro.viz.gantt import gantt_for_schedule, render_gantt


class TestAsciiTree:
    def test_all_nodes_present(self, fig1_mset):
        text = render_tree(greedy_schedule(fig1_mset))
        for name in ("p0", "d1", "d2", "d3", "d4"):
            assert name in text

    def test_reception_times_bracketed(self, fig1_mset):
        text = render_tree(greedy_schedule(fig1_mset))
        for t in ("[4]", "[6]", "[7]", "[10]"):
            assert t in text

    def test_source_marked(self, fig1_mset):
        assert "[source]" in render_tree(greedy_schedule(fig1_mset))

    def test_slots_shown_when_requested(self, fig1_mset):
        gapped = Schedule(fig1_mset, {0: [(1, 1), (2, 3), (3, 4), (4, 6)]})
        text = render_tree(gapped, show_slots=True)
        assert "(slot 3)" in text and "(slot 6)" in text

    def test_line_count_matches_nodes(self, fig1_mset):
        text = render_tree(greedy_schedule(fig1_mset))
        assert len(text.splitlines()) == fig1_mset.n + 1

    def test_doctest_example(self):
        from repro.core.multicast import MulticastSet

        m = MulticastSet.from_overheads((1, 1), [(1, 1)], 1)
        assert render_tree(greedy_schedule(m)) == (
            "p0 (s=1, r=1) [source]\n`-- d1 (s=1, r=1) [3]"
        )


class TestGantt:
    def test_contains_send_and_receive_marks(self, fig1_mset):
        chart = gantt_for_schedule(greedy_schedule(fig1_mset))
        assert "S" in chart and "R" in chart

    def test_row_per_active_node(self, fig1_mset):
        chart = gantt_for_schedule(greedy_schedule(fig1_mset))
        for name in ("p0", "d1", "d4"):
            assert name in chart

    def test_width_respected(self, fig1_mset):
        result = simulate_schedule(greedy_schedule(fig1_mset))
        names = [fig1_mset.node(v).name for v in range(fig1_mset.n + 1)]
        chart = render_gantt(result.trace, node_names=names, width=40)
        body_lines = [l for l in chart.splitlines() if "|" in l]
        assert all(len(l.split("|")[1]) == 40 for l in body_lines)

    def test_narrow_width_rejected(self, fig1_mset):
        result = simulate_schedule(greedy_schedule(fig1_mset))
        with pytest.raises(ReproError):
            render_gantt(result.trace, width=2)

    def test_empty_trace_rejected(self):
        from repro.simulation.trace import Trace

        with pytest.raises(ReproError):
            render_gantt(Trace())

    def test_legend_present(self, fig1_mset):
        chart = gantt_for_schedule(greedy_schedule(fig1_mset))
        assert "S=sending" in chart
