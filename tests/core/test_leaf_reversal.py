"""Unit tests for the Section 3 leaf-reversal refinement."""

import itertools

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import greedy_with_reversal, leaf_slots, reverse_leaves
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule


class TestLeafSlots:
    def test_slots_sorted_by_delivery(self, fig1_mset):
        s = greedy_schedule(fig1_mset)
        slots = leaf_slots(s)
        deliveries = [d for _p, _s, d in slots]
        assert deliveries == sorted(deliveries)

    def test_slot_count_equals_leaf_count(self, small_random_msets):
        for m in small_random_msets:
            s = greedy_schedule(m)
            assert len(leaf_slots(s)) == len(s.leaves())


class TestReverseLeaves:
    def test_figure1_reversal_hits_optimum(self, fig1_mset):
        # greedy gives 10; reversal reaches the DP optimum 8
        assert greedy_with_reversal(fig1_mset).reception_completion == 8

    def test_never_increases_completion(self, small_random_msets):
        for m in small_random_msets:
            before = greedy_schedule(m)
            after = reverse_leaves(before)
            assert after.reception_completion <= before.reception_completion + 1e-9

    def test_internal_structure_untouched(self, fig1_mset):
        before = greedy_schedule(fig1_mset)
        after = reverse_leaves(before)
        internal_before = {
            v: before.children_of(v) for v in before.internal_nodes()
        }
        for v, kids in internal_before.items():
            after_kids = after.children_of(v)
            assert [slot for _c, slot in after_kids] == [slot for _c, slot in kids]

    def test_delivery_multiset_preserved(self, small_random_msets):
        # reversal permutes which leaf sits where; the multiset of delivery
        # times over all nodes must be unchanged
        for m in small_random_msets:
            before = greedy_schedule(m)
            after = reverse_leaves(before)
            assert sorted(before.delivery_times) == sorted(after.delivery_times)

    def test_single_leaf_is_noop(self):
        m = MulticastSet.from_overheads((1, 1), [(1, 1), (2, 3)], 1)
        chain = Schedule(m, {0: [1], 1: [2]})
        assert reverse_leaves(chain) == chain

    def test_single_destination_is_noop(self):
        m = MulticastSet.from_overheads((1, 1), [(2, 3)], 1)
        s = greedy_schedule(m)
        assert reverse_leaves(s) == s

    def test_idempotent_completion(self, small_random_msets):
        for m in small_random_msets:
            once = reverse_leaves(greedy_schedule(m))
            twice = reverse_leaves(once)
            assert twice.reception_completion == once.reception_completion


class TestReversalOptimality:
    """The opposite-sorted pairing is optimal among all leaf permutations."""

    def test_beats_every_permutation_fig1(self, fig1_mset):
        base = greedy_schedule(fig1_mset)
        slots = leaf_slots(base)
        leaves = list(base.leaves())
        best_by_reversal = reverse_leaves(base).reception_completion
        mset = base.multicast
        internal_max = max(
            base.reception_time(v)
            for v in range(mset.n + 1)
            if v not in set(leaves)
        )
        for perm in itertools.permutations(leaves):
            completion = max(
                [internal_max]
                + [d + mset.receive(leaf) for (_p, _s, d), leaf in zip(slots, perm)]
            )
            assert best_by_reversal <= completion + 1e-9

    def test_assignment_pairs_slow_leaves_with_early_slots(self, fig1_mset):
        after = reverse_leaves(greedy_schedule(fig1_mset))
        slots = leaf_slots(after)
        mset = after.multicast
        # walk slots in delivery order; the occupying leaves' receive
        # overheads must be non-increasing
        def occupant(parent, slot):
            for child, s in after.children_of(parent):
                if s == slot:
                    return child
            raise AssertionError

        overheads = [mset.receive(occupant(p, s)) for p, s, _d in slots]
        assert overheads == sorted(overheads, reverse=True)
