"""Unit tests for the exact branch-and-bound solver."""

import pytest

from repro.core.brute_force import optimal_completion_exact, solve_exact
from repro.core.greedy import greedy_schedule
from repro.core.layered import _enumerate_trees
from repro.core.leaf_reversal import reverse_leaves
from repro.core.multicast import MulticastSet
from repro.exceptions import SolverError


class TestExactValues:
    def test_figure1_optimum(self, fig1_mset):
        sol = solve_exact(fig1_mset)
        assert sol.value == 8
        assert sol.schedule.reception_completion == 8

    def test_single_destination(self):
        m = MulticastSet.from_overheads((3, 4), [(1, 2)], 2)
        assert solve_exact(m).value == 3 + 2 + 2

    def test_never_above_any_heuristic(self, small_random_msets):
        from repro.algorithms.registry import available_schedulers, get_scheduler

        for m in small_random_msets:
            opt = solve_exact(m).value
            for name in available_schedulers():
                assert opt <= get_scheduler(name)(m).reception_completion + 1e-9

    def test_never_above_enumerated_insertion_trees(self):
        # cross-check against a full (unpruned) enumeration of canonical
        # insertion-order trees on a tiny instance
        m = MulticastSet.from_overheads((2, 3), [(1, 1), (2, 3), (3, 4)], 1)
        best = min(s.reception_completion for s in _enumerate_trees(m))
        assert solve_exact(m).value <= best + 1e-9

    def test_seeded_with_reversal_upper_bound(self, small_random_msets):
        for m in small_random_msets:
            seed = reverse_leaves(greedy_schedule(m)).reception_completion
            assert solve_exact(m).value <= seed

    def test_wrapper(self, fig1_mset):
        assert optimal_completion_exact(fig1_mset) == 8


class TestExactGuardRails:
    def test_size_guard(self):
        m = MulticastSet.from_overheads((1, 1), [(1, 1)] * 11, 1)
        with pytest.raises(SolverError, match="limited to"):
            solve_exact(m)

    def test_size_guard_override(self):
        m = MulticastSet.from_overheads((1, 1), [(1, 1)] * 11, 1)
        sol = solve_exact(m, max_destinations=11)
        assert sol.value > 0

    def test_node_budget_enforced(self):
        # heterogeneous 8-destination instance with a hopeless budget
        m = MulticastSet.from_overheads(
            (5, 9), [(1, 2), (2, 3), (3, 5), (4, 7), (5, 9), (6, 10), (7, 12), (8, 13)], 1
        )
        with pytest.raises(SolverError, match="node budget"):
            solve_exact(m, node_budget=3)


class TestExactSolutionShape:
    def test_nodes_expanded_reported(self, fig1_mset):
        assert solve_exact(fig1_mset).nodes_expanded >= 1

    def test_schedule_is_canonical(self, small_random_msets):
        for m in small_random_msets:
            assert solve_exact(m).schedule.is_canonical()

    def test_symmetry_pruning_preserves_optimality(self):
        # many identical nodes: pruning collapses receiver symmetry; the
        # value must match the k=1 DP exactly
        from repro.core.dp import solve_dp

        m = MulticastSet.from_overheads((2, 2), [(2, 2)] * 7, 1)
        assert solve_exact(m).value == pytest.approx(solve_dp(m).value)
