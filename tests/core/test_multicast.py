"""Unit tests for repro.core.multicast."""

import pytest

from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.exceptions import CorrelationError, ModelError


def make(dest_pairs, source=(2, 3), latency=1, **kw):
    return MulticastSet.from_overheads(source, dest_pairs, latency, **kw)


class TestConstruction:
    def test_destinations_sorted_canonically(self):
        m = make([(3, 5), (1, 1), (2, 3)])
        assert [d.send_overhead for d in m.destinations] == [1, 2, 3]

    def test_sort_is_stable_for_equal_overheads(self):
        a, b = Node("a", 1, 1), Node("b", 1, 1)
        m = MulticastSet(Node("s", 2, 3), [b, a], 1)
        assert [d.name for d in m.destinations] == ["b", "a"]

    def test_n_and_nodes(self):
        m = make([(1, 1), (1, 1)])
        assert m.n == 2
        assert len(m.nodes) == 3
        assert m.nodes[0] is m.source

    def test_empty_destinations_rejected(self):
        with pytest.raises(ModelError, match="at least one destination"):
            make([])

    @pytest.mark.parametrize("latency", [0, -1, float("inf")])
    def test_bad_latency_rejected(self, latency):
        with pytest.raises(ModelError, match="latency"):
            make([(1, 1)], latency=latency)

    def test_bool_latency_rejected(self):
        with pytest.raises(ModelError, match="latency"):
            make([(1, 1)], latency=True)

    def test_duplicate_names_rejected(self):
        src = Node("x", 2, 3)
        with pytest.raises(ModelError, match="unique"):
            MulticastSet(src, [Node("x", 1, 1)], 1)

    def test_from_overheads_names(self):
        m = make([(1, 1), (2, 3)])
        assert m.source.name == "p0"
        assert {d.name for d in m.destinations} == {"d1", "d2"}


class TestCorrelationAssumption:
    def test_violation_raises(self):
        with pytest.raises(CorrelationError):
            make([(1, 5), (2, 3)])

    def test_equal_send_different_receive_raises(self):
        with pytest.raises(CorrelationError, match="equal send overheads"):
            make([(1, 1), (1, 2)])

    def test_source_participates_in_check(self):
        with pytest.raises(CorrelationError):
            make([(1, 4)], source=(2, 3))

    def test_violation_tolerated_when_disabled(self):
        m = make([(1, 5), (2, 3)], validate_correlation=False)
        assert m.correlated is False

    def test_correlated_flag_true_for_valid(self):
        assert make([(1, 1), (2, 3)]).correlated is True


class TestViewsAndAccessors:
    def test_send_receive_accessors(self, fig1_mset):
        assert fig1_mset.send(0) == 2 and fig1_mset.receive(0) == 3
        assert fig1_mset.send(1) == 1 and fig1_mset.receive(1) == 1

    def test_index_of(self, fig1_mset):
        assert fig1_mset.index_of("p0") == 0
        assert fig1_mset.index_of("d4") in range(1, 5)

    def test_index_of_unknown_raises(self, fig1_mset):
        with pytest.raises(KeyError):
            fig1_mset.index_of("nobody")


class TestTypeStructure:
    def test_type_keys_sorted(self, fig1_mset):
        assert fig1_mset.type_keys() == ((1, 1), (2, 3))

    def test_num_types(self, fig1_mset):
        assert fig1_mset.num_types == 2

    def test_type_of_source(self, fig1_mset):
        assert fig1_mset.type_of(0) == 1  # slow type

    def test_destination_type_counts(self, fig1_mset):
        assert fig1_mset.destination_type_counts() == (3, 1)

    def test_destinations_by_type_partition(self, fig1_mset):
        groups = fig1_mset.destinations_by_type()
        all_indices = sorted(i for idxs in groups.values() for i in idxs)
        assert all_indices == [1, 2, 3, 4]

    def test_single_type(self, homogeneous_mset):
        assert homogeneous_mset.num_types == 1
        assert homogeneous_mset.destination_type_counts() == (6,)


class TestTheorem1Quantities:
    def test_alpha_range(self, fig1_mset):
        assert fig1_mset.alpha_min == pytest.approx(1.0)
        assert fig1_mset.alpha_max == pytest.approx(1.5)

    def test_beta(self, fig1_mset):
        assert fig1_mset.beta == 2  # max recv 3, min recv 1 among destinations

    def test_beta_zero_for_homogeneous(self, homogeneous_mset):
        assert homogeneous_mset.beta == 0


class TestTransforms:
    def test_with_latency(self, fig1_mset):
        m2 = fig1_mset.with_latency(7)
        assert m2.latency == 7
        assert m2.destinations == fig1_mset.destinations

    def test_swapped_overheads(self, fig1_mset):
        m2 = fig1_mset.swapped_overheads()
        assert m2.source.send_overhead == fig1_mset.source.receive_overhead
        assert m2.source.receive_overhead == fig1_mset.source.send_overhead

    def test_swap_is_involution_on_values(self, fig1_mset):
        m2 = fig1_mset.swapped_overheads().swapped_overheads()
        assert [d.type_key for d in m2.destinations] == [
            d.type_key for d in fig1_mset.destinations
        ]

    def test_equality_and_hash(self, fig1_mset):
        other = MulticastSet.from_overheads(
            (2, 3), [(1, 1), (1, 1), (1, 1), (2, 3)], 1
        )
        assert other == fig1_mset
        assert hash(other) == hash(fig1_mset)

    def test_str_mentions_n(self, fig1_mset):
        assert "n=4" in str(fig1_mset)
