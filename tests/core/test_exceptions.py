"""Tests for the exception hierarchy contract."""

import pytest

from repro.exceptions import (
    CorrelationError,
    InvalidScheduleError,
    ModelError,
    ReproError,
    SimulationError,
    SolverError,
    TransformError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ModelError,
            CorrelationError,
            InvalidScheduleError,
            TransformError,
            SimulationError,
            SolverError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_correlation_is_a_model_error(self):
        assert issubclass(CorrelationError, ModelError)

    def test_single_except_catches_everything(self):
        """The documented catch-all behaviour."""
        from repro.core.multicast import MulticastSet

        with pytest.raises(ReproError):
            MulticastSet.from_overheads((1, 1), [], 1)

    def test_library_never_leaks_bare_exceptions_for_bad_instances(self):
        from repro.core.multicast import MulticastSet

        bad_inputs = [
            dict(source=(0, 1), destinations=[(1, 1)]),
            dict(source=(1, 1), destinations=[(1, 1)], latency=-5),
            dict(source=(1, 1), destinations=[(1, 2), (2, 1)]),
        ]
        for kwargs in bad_inputs:
            with pytest.raises(ReproError):
                MulticastSet.from_overheads(**kwargs)
