"""Incremental optimal-table growth is bit-identical to fresh builds.

Satellite of the amortized-batch work: when an instance outgrows a cached
box, :meth:`repro.core.dp._DPCore.extended_to` copies the existing entries
into the larger box's packed layout and computes only the margin.  Over
randomized growth sequences the extended table must match a from-scratch
build of the final box exactly — values, packed argmin choices, and the
schedules reconstructed from them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp import TypeSystem, _DPCore
from repro.core.dp_table import OptimalTable
from repro.core.multicast import MulticastSet
from repro.exceptions import SolverError

import pytest

from tests.strategies import correlated_types


@st.composite
def growth_chains(draw):
    """A type system plus a random sequence of count-vector requests."""
    types = draw(correlated_types(max_types=3, max_send=9))
    k = len(types)
    latency = draw(st.integers(min_value=1, max_value=4))
    steps = draw(
        st.lists(
            st.tuples(*(st.integers(min_value=0, max_value=5) for _ in range(k))),
            min_size=1,
            max_size=5,
        )
    )
    return types, latency, steps


class TestCoreExtension:
    @settings(max_examples=80)
    @given(chain=growth_chains())
    def test_extension_chain_matches_fresh_build(self, chain):
        types, latency, steps = chain
        system = TypeSystem(tuple(types))
        incremental = _DPCore(system, latency)
        for counts in steps:
            incremental.ensure(counts)
        fresh = _DPCore(system, latency)
        fresh.ensure(incremental._max)
        assert incremental._max == fresh._max
        assert incremental._strides == fresh._strides
        assert incremental.states_filled == fresh.states_filled
        for s in range(system.k):
            assert incremental._tau[s] == fresh._tau[s]
            assert incremental._choice[s] == fresh._choice[s]

    def test_extended_to_rejects_shrinking(self):
        core = _DPCore(TypeSystem(((1, 1), (2, 3))), 1)
        core.ensure((3, 3))
        with pytest.raises(SolverError, match="shrink"):
            core.extended_to((2, 4))


class TestTableExtension:
    def _mset(self, fast, slow):
        return MulticastSet.from_overheads(
            source=(2, 3),
            destinations=[(1, 1)] * fast + [(2, 3)] * slow,
            latency=1,
        )

    def test_extended_table_schedules_match_fresh(self):
        types = [(1, 1), (2, 3)]
        grown = OptimalTable(types, (2, 2), latency=1).build()
        for step in [(4, 2), (4, 5), (7, 7)]:
            grown = grown.extended(step)
        fresh = OptimalTable(types, (7, 7), latency=1).build()
        assert grown.spec == fresh.spec
        assert grown.entries == fresh.entries
        for fast in range(8):
            for slow in range(8):
                if fast + slow == 0:
                    continue
                assert grown.completion(1, (fast, slow)) == fresh.completion(
                    1, (fast, slow)
                )
                mset = self._mset(fast, slow)
                assert grown.schedule_for(mset) == fresh.schedule_for(mset)

    def test_extended_leaves_the_original_usable(self):
        # concurrent readers of the cached table must stay consistent:
        # extension returns a new object and never mutates the old one
        table = OptimalTable([(1, 1), (2, 3)], (3, 3), latency=1).build()
        before = (table.spec.max_counts, table.entries)
        bigger = table.extended((6, 6))
        assert (table.spec.max_counts, table.entries) == before
        assert bigger is not table
        assert bigger.spec.max_counts == (6, 6)
        mset = self._mset(2, 3)
        assert table.schedule_for(mset) == bigger.schedule_for(mset)

    def test_extended_validates_counts(self):
        table = OptimalTable([(1, 1), (2, 3)], (3, 3), latency=1).build()
        with pytest.raises(SolverError, match="expected 2 counts"):
            table.extended((4,))
        with pytest.raises(SolverError, match="non-negative"):
            table.extended((-1, 4))
