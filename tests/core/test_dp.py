"""Unit tests for the Section 4 dynamic program (Lemma 4 / Theorem 2)."""

import pytest

from repro.core.brute_force import solve_exact
from repro.core.dp import TypeSystem, optimal_completion_dp, solve_dp
from repro.core.greedy import greedy_schedule
from repro.core.multicast import MulticastSet
from repro.exceptions import SolverError
from repro.workloads.clusters import limited_type_cluster
from repro.workloads.generator import multicast_from_cluster


class TestTypeSystem:
    def test_types_discovered_sorted(self, fig1_mset):
        ts = TypeSystem.of(fig1_mset)
        assert ts.overheads == ((1, 1), (2, 3))
        assert ts.k == 2

    def test_accessors(self, fig1_mset):
        ts = TypeSystem.of(fig1_mset)
        assert ts.send(1) == 2 and ts.receive(1) == 3


class TestDPValues:
    def test_figure1_optimum_is_8(self, fig1_mset):
        assert solve_dp(fig1_mset).value == 8

    def test_single_destination(self):
        m = MulticastSet.from_overheads((2, 3), [(1, 1)], 1)
        # d = 2 + 1 = 3, r = 4
        assert solve_dp(m).value == 4

    def test_single_destination_same_type(self):
        m = MulticastSet.from_overheads((2, 3), [(2, 3)], 5)
        assert solve_dp(m).value == 2 + 5 + 3

    def test_homogeneous_chain_vs_star(self):
        # two identical destinations: star is optimal (2nd send cheaper than
        # a full forward hop)
        m = MulticastSet.from_overheads((1, 1), [(1, 1), (1, 1)], 1)
        # star: r2 = 2*1 + 1 + 1 = 4; chain: r2 = 3 + 1 + 1 + 1 = 6
        assert solve_dp(m).value == 4

    def test_latency_dominant_prefers_star(self):
        m = MulticastSet.from_overheads((1, 1), [(1, 1)] * 3, 10)
        s = solve_dp(m).schedule
        # with L >> overheads, forwarding wastes a whole latency; the source
        # should send all three itself
        assert s.children_of(0) == ((1, 1), (2, 2), (3, 3))

    def test_overhead_dominant_prefers_tree(self):
        m = MulticastSet.from_overheads((4, 4), [(4, 4)] * 4, 1)
        s = solve_dp(m).schedule
        # sends are expensive: recruiting helpers must beat the pure star
        star_completion = 4 * 4 + 1 + 4
        assert s.reception_completion < star_completion

    def test_value_equals_schedule_completion(self, small_random_msets):
        for m in small_random_msets:
            sol = solve_dp(m)
            assert sol.schedule.reception_completion == pytest.approx(sol.value)

    def test_dp_at_most_greedy(self, small_random_msets):
        for m in small_random_msets:
            assert solve_dp(m).value <= greedy_schedule(m).reception_completion + 1e-9

    def test_matches_brute_force(self, small_random_msets):
        for m in small_random_msets:
            assert solve_dp(m).value == pytest.approx(solve_exact(m).value)

    def test_wrapper(self, fig1_mset):
        assert optimal_completion_dp(fig1_mset) == 8


class TestDPScheduleReconstruction:
    def test_schedule_is_valid_tree(self, fig1_mset):
        s = solve_dp(fig1_mset).schedule
        assert sorted(s.descendants(0)) == [1, 2, 3, 4]

    def test_each_node_bound_to_correct_type(self, two_class_mset):
        sol = solve_dp(two_class_mset)
        # reconstruct: every node keeps its own overheads; just re-check the
        # completion against an independent recomputation
        assert sol.schedule.reception_completion == pytest.approx(sol.value)

    def test_three_types(self):
        nodes = limited_type_cluster([(1, 1), (2, 3), (4, 6)], [2, 2, 2])
        m = multicast_from_cluster(nodes, latency=1, source="slowest")
        sol = solve_dp(m)
        assert sol.value == pytest.approx(solve_exact(m).value)

    def test_states_computed_positive(self, fig1_mset):
        assert solve_dp(fig1_mset).states_computed > 0


class TestDPGuardRails:
    def test_state_space_guard(self):
        # 9 distinct types over 9 destinations => astronomically many states
        pairs = [(i, i) for i in range(1, 10)]
        m = MulticastSet.from_overheads((1, 1), pairs, 1)
        with pytest.raises(SolverError, match="state space too large"):
            solve_dp(m, max_states=1000)

    def test_guard_can_be_raised(self, fig1_mset):
        assert solve_dp(fig1_mset, max_states=10**9).value == 8
