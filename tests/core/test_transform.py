"""Unit tests for Lemma 3 exchanges and Theorem 1 rounding."""

import math

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.core.transform import (
    exchange,
    layer_schedule,
    next_power_of_two,
    round_up_instance,
    swap_same_type,
    uniform_ratio,
)
from repro.exceptions import TransformError


@pytest.fixture
def rounded_fig1(fig1_mset):
    return round_up_instance(fig1_mset)


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "x,expected",
        [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (9, 16), (16, 16), (17, 32)],
    )
    def test_integers(self, x, expected):
        assert next_power_of_two(x) == expected

    def test_fractional(self):
        assert next_power_of_two(0.3) == pytest.approx(0.5)

    def test_nonpositive_rejected(self):
        with pytest.raises(TransformError):
            next_power_of_two(0)

    def test_exact_powers_fixed_points(self):
        for k in range(0, 20):
            assert next_power_of_two(2**k) == 2**k


class TestUniformRatio:
    def test_uniform_detected(self):
        m = MulticastSet.from_overheads((2, 4), [(1, 2), (3, 6)], 1)
        assert uniform_ratio(m) == pytest.approx(2.0)

    def test_non_uniform_none(self, fig1_mset):
        assert uniform_ratio(fig1_mset) is None


class TestRoundUpInstance:
    def test_sends_become_powers_of_two(self, rounded_fig1):
        for nd in rounded_fig1.nodes:
            k = math.log2(nd.send_overhead)
            assert k == int(k)

    def test_ratio_becomes_uniform_ceil_alpha_max(self, fig1_mset, rounded_fig1):
        c = math.ceil(fig1_mset.alpha_max)
        assert uniform_ratio(rounded_fig1) == pytest.approx(c)

    def test_send_growth_bounded(self, small_random_msets):
        # o_send <= o_send' < 2 * o_send
        for m in small_random_msets:
            r = round_up_instance(m)
            pairs = zip(
                sorted(n.send_overhead for n in m.nodes),
                sorted(n.send_overhead for n in r.nodes),
            )
            for orig, new in pairs:
                assert orig <= new < 2 * orig

    def test_receive_growth_bounded(self, small_random_msets):
        # o_recv <= o_recv' < 2 * ceil(a_max)/a_min * o_recv  (Theorem 1 proof)
        for m in small_random_msets:
            r = round_up_instance(m)
            factor = 2 * math.ceil(m.alpha_max) / m.alpha_min
            for orig, new in zip(
                sorted(n.receive_overhead for n in m.nodes),
                sorted(n.receive_overhead for n in r.nodes),
            ):
                assert orig <= new < factor * orig + 1e-9

    def test_dominates_original_instance(self, small_random_msets):
        # Lemma 2's premise: the rounded instance dominates componentwise
        for m in small_random_msets:
            r = round_up_instance(m)
            for orig, new in zip(m.nodes, r.nodes):
                assert orig.send_overhead <= new.send_overhead
                assert orig.receive_overhead <= new.receive_overhead

    def test_latency_unchanged(self, fig1_mset, rounded_fig1):
        assert rounded_fig1.latency == fig1_mset.latency


class TestExchangePreconditions:
    def test_requires_uniform_ratio(self, fig1_mset):
        s = greedy_schedule(fig1_mset)
        with pytest.raises(TransformError, match="uniform"):
            exchange(s, 4, 1)

    def test_requires_non_root(self, rounded_fig1):
        s = greedy_schedule(rounded_fig1)
        with pytest.raises(TransformError, match="non-root"):
            exchange(s, 0, 1)

    def test_requires_delivery_order(self, rounded_fig1):
        s = greedy_schedule(rounded_fig1)
        slow = 4  # delivered last in the greedy layered schedule
        fast = 1
        with pytest.raises(TransformError, match="d\\(u\\) < d\\(v\\)"):
            exchange(s, slow, fast)

    def test_requires_integer_factor_at_least_two(self):
        m = MulticastSet.from_overheads((1, 2), [(1, 2), (1, 2)], 1)
        s = greedy_schedule(m)
        with pytest.raises(TransformError, match="e >= 2"):
            exchange(s, 1, 2)


class TestExchangeLemma3Properties:
    def _check_lemma3(self, schedule, u, v):
        """Assert all three Lemma 3 postconditions for one exchange."""
        out = exchange(schedule, u, v)
        # property 1: u and v trade delivery times
        assert out.delivery_time(v) == pytest.approx(schedule.delivery_time(u))
        assert out.delivery_time(u) == pytest.approx(schedule.delivery_time(v))
        # property 2: non-descendants unaffected
        affected = set(schedule.descendants(u)) | set(schedule.descendants(v)) | {u, v}
        for w in range(1, schedule.multicast.n + 1):
            if w not in affected:
                assert out.delivery_time(w) == pytest.approx(schedule.delivery_time(w))
        # property 3: delivery completion does not increase
        assert out.delivery_completion <= schedule.delivery_completion + 1e-9
        return out

    def test_unrelated_nodes(self):
        # uniform ratio C=2; u (send 4) delivered before v (send 2)
        m = MulticastSet.from_overheads(
            (2, 4), [(2, 4), (2, 4), (4, 8), (1, 2)], 1, validate_correlation=False
        )
        # canonical order: d1=(1,2) idx1, d2,d3=(2,4) idx2,3, d4=(4,8) idx4
        s = Schedule(m, {0: [4, 2], 4: [1], 2: [3]})
        assert s.delivery_time(4) < s.delivery_time(2)
        self._check_lemma3(s, 4, 2)

    def test_child_case(self):
        # v is a child of u
        m = MulticastSet.from_overheads(
            (2, 4), [(1, 2), (2, 4), (2, 4), (4, 8)], 1, validate_correlation=False
        )
        s = Schedule(m, {0: [4, 2], 4: [3, 1]})
        # u = node 4 (send 4), its child 3 (send 2) = v
        assert s.parent_of(3) == 4
        out = self._check_lemma3(s, 4, 3)
        assert out.parent_of(4) == 3  # u became a child of v

    def test_descendant_case(self):
        # v is a grandchild of u
        m = MulticastSet.from_overheads(
            (2, 4), [(1, 2), (2, 4), (2, 4), (4, 8)], 2, validate_correlation=False
        )
        s = Schedule(m, {0: [4], 4: [2], 2: [1, 3]})
        # u = 4 (send 4, delivered first), v = 3 (send 2, delivered later)
        assert 3 in s.descendants(4)
        self._check_lemma3(s, 4, 3)

    def test_children_of_u_keep_delivery_times(self):
        m = MulticastSet.from_overheads(
            (2, 4), [(1, 2), (1, 2), (2, 4), (4, 8)], 1, validate_correlation=False
        )
        s = Schedule(m, {0: [4, 3], 4: [1, 2]})
        out = exchange(s, 4, 3)
        for child in (1, 2):
            assert out.delivery_time(child) == pytest.approx(s.delivery_time(child))

    def test_exchange_on_greedy_of_rounded_instance(self, rounded_fig1):
        # construct a deliberately inverted schedule and fix it
        s = Schedule(rounded_fig1, {0: [4, 1], 4: [2, 3]})
        assert s.delivery_time(4) < s.delivery_time(1)
        self._check_lemma3(s, 4, 1)


class TestSwapSameType:
    def test_times_invariant(self, rounded_fig1):
        s = greedy_schedule(rounded_fig1)
        swapped = swap_same_type(s, 1, 2)
        assert sorted(swapped.delivery_times) == sorted(s.delivery_times)
        assert swapped.reception_completion == s.reception_completion

    def test_different_types_rejected(self, rounded_fig1):
        s = greedy_schedule(rounded_fig1)
        with pytest.raises(TransformError, match="different types"):
            swap_same_type(s, 1, 4)


class TestLayerSchedule:
    def test_layers_a_bad_schedule(self, rounded_fig1):
        bad = Schedule(rounded_fig1, {0: [4, 1], 4: [2, 3]})
        assert not bad.is_layered()
        fixed = layer_schedule(bad)
        assert fixed.is_layered()
        assert fixed.delivery_completion <= bad.delivery_completion + 1e-9

    def test_layered_input_unchanged(self, rounded_fig1):
        s = greedy_schedule(rounded_fig1)
        assert layer_schedule(s) == s

    def test_theorem1_chain_on_rounded_instance(self, fig1_mset):
        """The proof chain: greedy D on S' == layered(optimal-ish) D on S'."""
        from repro.core.brute_force import solve_exact

        rounded = round_up_instance(fig1_mset)
        opt = solve_exact(rounded)
        layered = layer_schedule(opt.schedule)
        greedy = greedy_schedule(rounded)
        # Lemma 3 preserves D; Corollary 1 says greedy D <= any layered D
        assert layered.delivery_completion <= opt.schedule.delivery_completion + 1e-9
        assert greedy.delivery_completion <= layered.delivery_completion + 1e-9
