"""Unit tests for the greedy algorithm (Section 2, Lemma 1)."""

from repro.core.greedy import greedy_completion, greedy_schedule
from repro.core.multicast import MulticastSet


class TestGreedyOnFigure1:
    def test_completion_matches_paper_narrative(self, fig1_mset):
        s = greedy_schedule(fig1_mset)
        assert s.reception_completion == 10

    def test_reception_times_match_narrative(self, fig1_mset):
        s = greedy_schedule(fig1_mset)
        assert sorted(s.reception_times[1:]) == [4, 6, 7, 10]

    def test_schedule_is_layered(self, fig1_mset):
        assert greedy_schedule(fig1_mset).is_layered()

    def test_schedule_is_canonical(self, fig1_mset):
        assert greedy_schedule(fig1_mset).is_canonical()


class TestGreedyMechanics:
    def test_single_destination(self):
        m = MulticastSet.from_overheads((2, 2), [(1, 1)], 3)
        s = greedy_schedule(m)
        # d = o_send(src) + L = 5, r = 6
        assert s.delivery_time(1) == 5
        assert s.reception_completion == 6

    def test_first_destination_gets_first_slot(self, fig1_mset):
        s = greedy_schedule(fig1_mset)
        assert s.parent_of(1) == 0 and s.slot_of(1) == 1

    def test_deliveries_non_decreasing_in_index(self, small_random_msets):
        # destinations are attached in sorted order at earliest times, so
        # delivery times must be non-decreasing with the canonical index
        for m in small_random_msets:
            s = greedy_schedule(m)
            ds = [s.delivery_time(i) for i in range(1, m.n + 1)]
            assert all(a <= b for a, b in zip(ds, ds[1:]))

    def test_deterministic(self, small_random_msets):
        for m in small_random_msets:
            assert greedy_schedule(m) == greedy_schedule(m)

    def test_homogeneous_matches_binomial_growth(self):
        # with o_send = o_recv = L = 1, a new transmission completes every
        # time unit per informed node: the informed-set growth follows the
        # postal-like recurrence; check the exact completion for n=7
        m = MulticastSet.from_overheads((1, 1), [(1, 1)] * 7, 1)
        s = greedy_schedule(m)
        # informed counts by reception: t=3:1, t=4:2, t=5:3, t=6:5 -> 7 by 7
        assert s.reception_completion == 7

    def test_greedy_completion_wrapper(self, fig1_mset):
        assert greedy_completion(fig1_mset) == 10


class TestGreedyTrace:
    def test_trace_records_every_iteration(self, fig1_mset):
        s, trace = greedy_schedule(fig1_mset, collect_trace=True)
        assert len(trace.steps) == fig1_mset.n
        assert [st.iteration for st in trace.steps] == [1, 2, 3, 4]

    def test_trace_consistent_with_schedule(self, fig1_mset):
        s, trace = greedy_schedule(fig1_mset, collect_trace=True)
        for step in trace.steps:
            assert s.parent_of(step.receiver) == step.sender
            assert s.delivery_time(step.receiver) == step.delivery_time
            assert s.reception_time(step.receiver) == step.reception_time

    def test_trace_senders_already_informed(self, small_random_msets):
        for m in small_random_msets:
            _s, trace = greedy_schedule(m, collect_trace=True)
            informed = {0}
            for step in trace.steps:
                assert step.sender in informed
                informed.add(step.receiver)


class TestGreedyQuality:
    def test_beats_or_ties_star_everywhere(self, small_random_msets):
        from repro.algorithms.baselines import sequential_star_naive

        for m in small_random_msets:
            greedy = greedy_schedule(m).reception_completion
            star = sequential_star_naive(m).reception_completion
            assert greedy <= star

    def test_min_delivery_completion_among_layered(self, fig1_mset):
        from repro.core.layered import min_layered_delivery_completion

        assert (
            greedy_schedule(fig1_mset).delivery_completion
            == min_layered_delivery_completion(fig1_mset)
        )

    def test_large_instance_runs_fast(self):
        from repro.workloads.clusters import bounded_ratio_cluster
        from repro.workloads.generator import multicast_from_cluster

        nodes = bounded_ratio_cluster(5001, seed=1)
        m = multicast_from_cluster(nodes, latency=2)
        s = greedy_schedule(m)
        assert s.multicast.n == 5000
        assert s.is_layered()
