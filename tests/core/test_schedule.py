"""Unit tests for repro.core.schedule.Schedule."""

import networkx as nx
import pytest

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import InvalidScheduleError


@pytest.fixture
def mset():
    return MulticastSet.from_overheads((2, 3), [(1, 1), (1.5, 2), (2, 3)], 1)


@pytest.fixture
def tree(mset):
    return Schedule(mset, {0: [1, 3], 1: [2]})


class TestStructure:
    def test_children_normalization(self, mset):
        s = Schedule(mset, {0: [1, 2, 3]})
        assert s.children_of(0) == ((1, 1), (2, 2), (3, 3))

    def test_explicit_slots_preserved(self, mset):
        s = Schedule(mset, {0: [(1, 1), (2, 4), (3, 6)]})
        assert s.children_of(0) == ((1, 1), (2, 4), (3, 6))

    def test_parent_of(self, tree):
        assert tree.parent_of(0) == -1
        assert tree.parent_of(1) == 0
        assert tree.parent_of(2) == 1

    def test_slot_of(self, tree):
        assert tree.slot_of(3) == 2
        assert tree.slot_of(2) == 1

    def test_slot_of_root_raises(self, tree):
        with pytest.raises(InvalidScheduleError):
            tree.slot_of(0)

    def test_leaves(self, tree):
        assert tree.leaves() == (2, 3)

    def test_internal_nodes(self, tree):
        assert tree.internal_nodes() == (0, 1)

    def test_descendants(self, tree):
        assert set(tree.descendants(0)) == {1, 2, 3}
        assert tree.descendants(1) == (2,)
        assert tree.descendants(2) == ()

    def test_edges_preorder(self, tree):
        edges = list(tree.edges())
        assert (0, 1, 1) in edges and (1, 2, 1) in edges and (0, 3, 2) in edges
        assert len(edges) == 3

    def test_invalid_tree_rejected(self, mset):
        with pytest.raises(InvalidScheduleError):
            Schedule(mset, {0: [1, 2]})  # node 3 missing

    def test_children_returns_copy(self, tree):
        tree.children[0] = "garbage"
        assert tree.children_of(0) == ((1, 1), (3, 2))


class TestTiming:
    def test_delivery_and_reception(self, tree):
        # d(1) = 0 + 1*2 + 1 = 3; r(1) = 4
        assert tree.delivery_time(1) == 3
        assert tree.reception_time(1) == 4
        # d(3) = 0 + 2*2 + 1 = 5; r(3) = 8
        assert tree.delivery_time(3) == 5
        assert tree.reception_time(3) == 8
        # d(2) = r(1) + 1*1 + 1 = 6; r(2) = 8
        assert tree.delivery_time(2) == 6
        assert tree.reception_time(2) == 8

    def test_completions(self, tree):
        assert tree.delivery_completion == 6
        assert tree.reception_completion == 8

    def test_send_completion_times(self, tree):
        assert tree.send_completion_times(0) == (3.0, 5.0)
        assert tree.send_completion_times(2) == ()

    def test_reception_completion_at_least_delivery(self, tree):
        assert tree.reception_completion >= tree.delivery_completion


class TestPredicates:
    def test_canonical(self, tree, mset):
        assert tree.is_canonical()
        assert not Schedule(mset, {0: [(1, 1), (2, 3), (3, 4)]}).is_canonical()

    def test_layered_star(self, mset):
        assert Schedule(mset, {0: [1, 2, 3]}).is_layered()

    def test_non_layered_detected(self, mset):
        # slowest destination (node 3) delivered first
        s = Schedule(mset, {0: [3, 1, 2]})
        assert not s.is_layered()

    def test_layered_tolerates_equal_overheads_any_order(self):
        m = MulticastSet.from_overheads((1, 1), [(1, 1), (1, 1)], 1)
        assert Schedule(m, {0: [2, 1]}).is_layered()


class TestTransforms:
    def test_compact_removes_gaps(self, mset):
        gapped = Schedule(mset, {0: [(1, 1), (2, 3), (3, 5)]})
        tight = gapped.compact()
        assert tight.is_canonical()
        assert tight.children_of(0) == ((1, 1), (2, 2), (3, 3))

    def test_compact_never_increases_times(self, mset):
        gapped = Schedule(mset, {0: [(1, 2), (2, 3)], 2: [(3, 2)]})
        tight = gapped.compact()
        for v in range(1, 4):
            assert tight.delivery_time(v) <= gapped.delivery_time(v)

    def test_with_children(self, tree, mset):
        other = tree.with_children({0: [1, 2, 3]})
        assert other.multicast is mset
        assert other.children_of(0) == ((1, 1), (2, 2), (3, 3))

    def test_relabeled_swap(self, mset):
        s = Schedule(mset, {0: [1, 2], 1: [3]})
        swapped = s.relabeled({1: 2, 2: 1})
        assert swapped.parent_of(3) == 2
        assert swapped.children_of(0) == ((2, 1), (1, 2))

    def test_to_networkx(self, tree):
        g = tree.to_networkx()
        assert isinstance(g, nx.DiGraph)
        assert g.number_of_nodes() == 4 and g.number_of_edges() == 3
        assert g.nodes[1]["reception"] == tree.reception_time(1)
        assert nx.is_arborescence(g)


class TestDunder:
    def test_equality(self, mset):
        assert Schedule(mset, {0: [1, 2, 3]}) == Schedule(mset, {0: [1, 2, 3]})

    def test_inequality_structure(self, mset):
        assert Schedule(mset, {0: [1, 2, 3]}) != Schedule(mset, {0: [1, 3, 2]})

    def test_hash_consistent(self, mset):
        a, b = Schedule(mset, {0: [1, 2, 3]}), Schedule(mset, {0: [1, 2, 3]})
        assert hash(a) == hash(b)

    def test_repr(self, tree):
        text = repr(tree)
        assert "R_T=8" in text and "n=3" in text
