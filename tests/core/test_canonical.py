"""Canonical instance forms: exactness, key unification, round-trips.

The load-bearing property (satellite of the amortized-batch work): planning
the *canonical* instance and mapping the schedule back must be **byte-equal**
to running ``solve_dp`` directly on the original — values, schedules, timing
vectors, argmin structure — across renames, destination permutations (the
proven ``permutation`` metamorphic invariant) and power-of-two rescalings
(the exactly-invertible subgroup of the proven ``scaling`` invariant).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import canonical_key, canonicalize, map_schedule
from repro.core.dp import solve_dp
from repro.core.greedy import greedy_schedule
from repro.core.multicast import MulticastSet
from repro.core.node import Node

from tests.strategies import multicast_sets


def _renamed(mset: MulticastSet, prefix: str) -> MulticastSet:
    nodes = [
        Node(f"{prefix}{i}", nd.send_overhead, nd.receive_overhead)
        for i, nd in enumerate(mset.nodes)
    ]
    return MulticastSet(nodes[0], nodes[1:], mset.latency)


def _scaled(mset: MulticastSet, factor: float) -> MulticastSet:
    nodes = [
        Node(nd.name, nd.send_overhead * factor, nd.receive_overhead * factor)
        for nd in mset.nodes
    ]
    return MulticastSet(nodes[0], nodes[1:], mset.latency * factor)


class TestCanonicalForm:
    @given(mset=multicast_sets())
    def test_rescale_is_exact_and_idempotent(self, mset):
        canon = mset.canonical_form()
        # the scale is a power of two and inverts exactly
        mantissa, _exp = math.frexp(canon.scale)
        assert mantissa == 0.5 or canon.scale == 1.0
        for orig, new in zip(mset.nodes, canon.mset.nodes):
            assert new.send_overhead * canon.scale == orig.send_overhead
            assert new.receive_overhead * canon.scale == orig.receive_overhead
        assert canon.mset.latency * canon.scale == mset.latency
        # largest parameter normalized into [1, 2)
        largest = max(
            canon.mset.latency,
            *(nd.send_overhead for nd in canon.mset.nodes),
            *(nd.receive_overhead for nd in canon.mset.nodes),
        )
        assert 1.0 <= largest < 2.0
        # canonicalizing the canonical form is the identity class
        again = canonicalize(canon.mset)
        assert again.scale == 1.0
        assert again.key == canon.key
        assert again.network_key == canon.network_key

    @given(mset=multicast_sets(), shift=st.integers(min_value=-2, max_value=3))
    def test_key_unifies_renames_and_power_of_two_scalings(self, mset, shift):
        variants = [
            _renamed(mset, "node"),
            _scaled(mset, 2.0**shift),
            _renamed(_scaled(mset, 2.0**shift), "w"),
            MulticastSet(
                mset.source, tuple(reversed(mset.destinations)), mset.latency
            ),
        ]
        for variant in variants:
            assert canonical_key(variant) == canonical_key(mset)
            assert (
                variant.canonical_form().network_key
                == mset.canonical_form().network_key
            )

    @given(mset=multicast_sets())
    def test_key_separates_non_power_of_two_scalings(self, mset):
        # a x3 scaling is value-equivalent (the conformance invariant) but
        # not exactly invertible in floats, so it must NOT share the class
        assert canonical_key(_scaled(mset, 3.0)) != canonical_key(mset)

    @given(mset=multicast_sets(max_n=6))
    def test_correlation_flag_preserved(self, mset):
        assert mset.canonical_form().mset.correlated == mset.correlated


class TestRoundTrip:
    @settings(max_examples=60)
    @given(
        mset=multicast_sets(max_types=3, max_n=7),
        shift=st.integers(min_value=0, max_value=2),
    )
    def test_dp_on_canonical_maps_back_byte_equal(self, mset, shift):
        """Plan the canonical instance, map back, compare against a direct
        ``solve_dp`` on the (renamed/rescaled) original: byte-equal."""
        original = _renamed(_scaled(mset, 2.0**shift), "host")
        canon = original.canonical_form()
        direct = solve_dp(original)
        canonical_solution = solve_dp(canon.mset)
        mapped = map_schedule(canonical_solution.schedule, original)
        assert mapped == direct.schedule
        assert mapped.children == direct.schedule.children
        assert mapped.reception_completion == direct.value
        assert mapped.reception_times == direct.schedule.reception_times
        assert mapped.delivery_times == direct.schedule.delivery_times
        assert canonical_solution.states_computed == direct.states_computed

    @settings(max_examples=60)
    @given(mset=multicast_sets(max_n=10))
    def test_greedy_on_canonical_maps_back_byte_equal(self, mset):
        canon = mset.canonical_form()
        direct = greedy_schedule(mset)
        mapped = map_schedule(greedy_schedule(canon.mset), mset)
        assert mapped == direct
        assert mapped.reception_times == direct.reception_times
