"""Unit tests for repro.core.node."""

import pytest

from repro.core.node import Node, overhead_key, same_type
from repro.exceptions import ModelError


class TestNodeValidation:
    def test_valid_node(self):
        nd = Node("w0", 2, 3)
        assert nd.send_overhead == 2
        assert nd.receive_overhead == 3

    def test_float_overheads_accepted(self):
        nd = Node("w0", 1.5, 2.25)
        assert nd.ratio == pytest.approx(1.5)

    @pytest.mark.parametrize("send", [0, -1, -0.5])
    def test_nonpositive_send_rejected(self, send):
        with pytest.raises(ModelError, match="send overhead"):
            Node("w0", send, 1)

    @pytest.mark.parametrize("recv", [0, -2])
    def test_nonpositive_receive_rejected(self, recv):
        with pytest.raises(ModelError, match="receive overhead"):
            Node("w0", 1, recv)

    def test_nan_rejected(self):
        with pytest.raises(ModelError):
            Node("w0", float("nan"), 1)

    def test_infinity_rejected(self):
        with pytest.raises(ModelError, match="finite"):
            Node("w0", 1, float("inf"))

    def test_bool_overhead_rejected(self):
        with pytest.raises(ModelError):
            Node("w0", True, 1)

    def test_string_overhead_rejected(self):
        with pytest.raises(ModelError):
            Node("w0", "2", 1)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError, match="name"):
            Node("", 1, 1)

    def test_non_string_name_rejected(self):
        with pytest.raises(ModelError, match="name"):
            Node(7, 1, 1)


class TestNodeDerived:
    def test_ratio(self):
        assert Node("w", 2, 3).ratio == pytest.approx(1.5)

    def test_type_key(self):
        assert Node("a", 2, 3).type_key == (2, 3)

    def test_same_type_true(self):
        assert same_type(Node("a", 2, 3), Node("b", 2, 3))

    def test_same_type_false(self):
        assert not same_type(Node("a", 2, 3), Node("b", 2, 4))

    def test_overhead_key_orders_by_send_then_receive(self):
        nodes = [Node("a", 2, 3), Node("b", 1, 1), Node("c", 2, 3)]
        ordered = sorted(nodes, key=overhead_key)
        assert [n.name for n in ordered] == ["b", "a", "c"]

    def test_frozen(self):
        nd = Node("w", 1, 1)
        with pytest.raises(AttributeError):
            nd.send_overhead = 5

    def test_equality_ignores_meta(self):
        assert Node("w", 1, 1, meta=(("rack", "r1"),)) == Node("w", 1, 1)


class TestNodeTransforms:
    def test_renamed(self):
        nd = Node("w", 2, 3).renamed("x")
        assert nd.name == "x" and nd.type_key == (2, 3)

    def test_with_overheads(self):
        nd = Node("w", 2, 3).with_overheads(4, 8)
        assert nd.type_key == (4, 8) and nd.name == "w"

    def test_swapped(self):
        nd = Node("w", 2, 3).swapped()
        assert nd.send_overhead == 3 and nd.receive_overhead == 2

    def test_swapped_is_involution(self):
        nd = Node("w", 2, 3)
        assert nd.swapped().swapped() == nd

    def test_str_contains_overheads(self):
        assert "s=2" in str(Node("w", 2, 3)) and "r=3" in str(Node("w", 2, 3))
