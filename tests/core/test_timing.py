"""Unit tests for the Section 2 timing recurrences (repro.core.timing)."""

import pytest

from repro.core.multicast import MulticastSet
from repro.core.timing import compute_times, validate_tree
from repro.exceptions import InvalidScheduleError


@pytest.fixture
def mset():
    return MulticastSet.from_overheads((2, 3), [(1, 1), (1, 1), (2, 3)], 1)


def slotted(children):
    """Normalize {parent: [child,...]} into explicit canonical slots."""
    return {
        p: [(c, i) for i, c in enumerate(kids, start=1)] for p, kids in children.items()
    }


class TestComputeTimes:
    def test_star_times(self, mset):
        delivery, reception = compute_times(mset, slotted({0: [1, 2, 3]}))
        # d(w_i) = r(0) + i*o_send(0) + L = 2i + 1
        assert delivery[1:] == [3, 5, 7]
        assert reception[1:] == [4, 6, 10]

    def test_chain_times(self, mset):
        delivery, reception = compute_times(mset, slotted({0: [1], 1: [2], 2: [3]}))
        assert delivery[1] == 3 and reception[1] == 4
        assert delivery[2] == 4 + 1 + 1 and reception[2] == 7
        assert delivery[3] == 7 + 1 + 1 and reception[3] == 12

    def test_source_times_are_zero(self, mset):
        delivery, reception = compute_times(mset, slotted({0: [1, 2, 3]}))
        assert delivery[0] == 0.0 and reception[0] == 0.0

    def test_slot_gap_adds_idle(self, mset):
        tight = compute_times(mset, {0: [(1, 1), (2, 2), (3, 3)]})
        gapped = compute_times(mset, {0: [(1, 1), (2, 3), (3, 5)]})
        assert gapped[0][2] == tight[0][2] + mset.send(0)
        assert gapped[0][3] == tight[0][3] + 2 * mset.send(0)

    def test_paper_figure1_narrative(self, fig1_mset):
        delivery, reception = compute_times(
            fig1_mset, slotted({0: [1, 2], 1: [3, 4]})
        )
        assert reception[1:] == [4, 6, 7, 10]


class TestValidateTree:
    def test_valid_passes(self):
        validate_tree(3, slotted({0: [1, 2], 1: [3]}))

    def test_missing_node(self):
        with pytest.raises(InvalidScheduleError, match="never receive"):
            validate_tree(3, slotted({0: [1, 2]}))

    def test_double_parent(self):
        with pytest.raises(InvalidScheduleError, match="two parents"):
            validate_tree(3, slotted({0: [1, 2, 3], 1: [3]}))

    def test_root_as_child(self):
        with pytest.raises(InvalidScheduleError, match="out of range"):
            validate_tree(2, slotted({0: [1, 2], 1: [0]}))

    def test_child_out_of_range(self):
        with pytest.raises(InvalidScheduleError, match="out of range"):
            validate_tree(2, slotted({0: [1, 2, 5]}))

    def test_parent_out_of_range(self):
        with pytest.raises(InvalidScheduleError, match="parent index"):
            validate_tree(2, {0: [(1, 1), (2, 2)], 9: []})

    def test_non_increasing_slots(self):
        with pytest.raises(InvalidScheduleError, match="strictly increasing"):
            validate_tree(2, {0: [(1, 2), (2, 2)]})

    def test_zero_slot(self):
        with pytest.raises(InvalidScheduleError, match="strictly increasing"):
            validate_tree(1, {0: [(1, 0)]})

    def test_non_int_slot(self):
        with pytest.raises(InvalidScheduleError, match="must be an int"):
            validate_tree(1, {0: [(1, 1.5)]})

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidScheduleError):
            validate_tree(2, {0: [(1, 1)], 2: [(2, 1)]})

    def test_cycle_detached_from_root(self):
        # 1 <-> 2 cycle, nothing hangs off the root
        with pytest.raises(InvalidScheduleError):
            validate_tree(2, {1: [(2, 1)], 2: [(1, 1)]})
