"""Unit tests for layered-schedule enumeration (Lemma 2 / Corollary 1)."""

import math

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.layered import (
    _enumerate_trees,
    count_layered_schedules,
    enumerate_layered_schedules,
    min_layered_delivery_completion,
)
from repro.core.multicast import MulticastSet


@pytest.fixture
def tiny():
    return MulticastSet.from_overheads((2, 3), [(1, 1), (2, 3), (3, 4)], 1)


class TestEnumeration:
    def test_tree_count_is_factorial(self, tiny):
        assert sum(1 for _ in _enumerate_trees(tiny)) == math.factorial(tiny.n)

    def test_all_yielded_are_layered(self, tiny):
        for s in enumerate_layered_schedules(tiny):
            assert s.is_layered()

    def test_layered_subset_of_all(self, tiny):
        assert count_layered_schedules(tiny) <= math.factorial(tiny.n)

    def test_greedy_schedule_among_enumerated(self, tiny):
        greedy = greedy_schedule(tiny)
        assert any(s == greedy for s in enumerate_layered_schedules(tiny))

    def test_homogeneous_all_trees_layered(self):
        # with a single type the layered predicate is vacuous
        m = MulticastSet.from_overheads((1, 1), [(1, 1)] * 4, 1)
        assert count_layered_schedules(m) == math.factorial(4)


class TestCorollary1:
    def test_greedy_minimizes_delivery_completion(self, tiny):
        assert greedy_schedule(tiny).delivery_completion == pytest.approx(
            min_layered_delivery_completion(tiny)
        )

    def test_corollary1_across_instances(self, small_random_msets):
        for m in small_random_msets:
            if m.n > 5:
                continue
            assert greedy_schedule(m).delivery_completion == pytest.approx(
                min_layered_delivery_completion(m)
            )

    def test_corollary1_on_figure1(self, fig1_mset):
        assert greedy_schedule(fig1_mset).delivery_completion == pytest.approx(
            min_layered_delivery_completion(fig1_mset)
        )

    def test_some_layered_schedule_can_beat_greedy_on_reception(self, fig1_mset):
        # Corollary 1 is about D_T, not R_T: on Figure 1 greedy's R_T (10)
        # is beaten by a *non-layered* schedule (8), while no layered
        # schedule beats its D_T
        best_layered_r = min(
            s.reception_completion for s in enumerate_layered_schedules(fig1_mset)
        )
        assert best_layered_r >= 9  # layered schedules cannot reach 8
        assert greedy_schedule(fig1_mset).delivery_completion == pytest.approx(
            min_layered_delivery_completion(fig1_mset)
        )
