"""Unit tests for the cross-group contention model (repro.core.contention)."""

import pytest

from repro.core.contention import (
    MULTI_GROUP_STRATEGIES,
    ClaimInterval,
    MultiGroupInstance,
    MultiGroupSchedule,
    available_strategies,
    busy_intervals,
    plan_greedy_pack,
    plan_round_robin,
    plan_sequential,
)
from repro.core.greedy import greedy_schedule
from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.exceptions import ContentionError


def _mset(dest_names, latency=1, source=("s", 2, 3)):
    name, send, receive = source
    return MulticastSet(
        Node(name, send, receive),
        [Node(n, 1, 2) for n in dest_names],
        latency,
    )


def _solved(instance):
    return [greedy_schedule(g) for g in instance.groups]


# ----------------------------------------------------------------------
# MultiGroupInstance
# ----------------------------------------------------------------------
def test_instance_requires_at_least_one_group():
    with pytest.raises(ContentionError, match="at least one group"):
        MultiGroupInstance([])


def test_instance_rejects_non_multicast_groups():
    with pytest.raises(ContentionError, match="must be MulticastSet"):
        MultiGroupInstance([object()])


def test_instance_rejects_weight_length_mismatch():
    with pytest.raises(ContentionError, match="lengths must match"):
        MultiGroupInstance([_mset(["a"]), _mset(["b"])], weights=[1.0])


@pytest.mark.parametrize("bad", [0, -1, float("inf"), float("nan")])
def test_instance_rejects_non_positive_weights(bad):
    with pytest.raises(ContentionError, match="positive and finite"):
        MultiGroupInstance([_mset(["a"])], weights=[bad])


def test_instance_rejects_inconsistent_shared_overheads():
    a = _mset(["d0"])
    b = MulticastSet(Node("s", 2, 3), [Node("d0", 4, 8)], 1)
    with pytest.raises(ContentionError, match="inconsistent overheads"):
        MultiGroupInstance([a, b])


def test_shared_nodes_are_sorted_names_in_two_or_more_groups():
    instance = MultiGroupInstance([_mset(["d0", "x"]), _mset(["d0", "y"])])
    assert instance.shared_nodes() == ("d0", "s")
    assert instance.n_groups == 2
    assert instance.weights == (1.0, 1.0)


def test_permuted_moves_weights_with_groups():
    a, b = _mset(["a"]), _mset(["b"])
    instance = MultiGroupInstance([a, b], weights=[1, 2])
    flipped = instance.permuted([1, 0])
    assert flipped.groups == (b, a)
    assert flipped.weights == (2.0, 1.0)
    with pytest.raises(ContentionError, match="not a permutation"):
        instance.permuted([0, 0])


# ----------------------------------------------------------------------
# busy_intervals
# ----------------------------------------------------------------------
def test_busy_intervals_follow_the_slot_formula():
    mset = _mset(["d0", "d1"], latency=1, source=("s", 2, 3))
    schedule = greedy_schedule(mset)
    intervals = busy_intervals(schedule)
    # the source never receives; its k-th send slot occupies
    # [r + (k-1)*o_send, r + k*o_send) with r = 0
    sends = [iv for iv in intervals["s"] if iv[0] == "send"]
    assert sends[0][1:] == (0.0, 2.0)
    for kind, start, end in sends:
        assert kind == "send" and end - start == 2.0
    # every destination is busy receiving from delivery to reception
    for i, node in enumerate(mset.nodes):
        if i == 0:
            continue
        receives = [iv for iv in intervals[node.name] if iv[0] == "receive"]
        assert receives == [
            ("receive", schedule.delivery_time(i), schedule.reception_time(i))
        ]


# ----------------------------------------------------------------------
# MultiGroupSchedule
# ----------------------------------------------------------------------
def test_schedule_validates_shapes_and_offsets():
    instance = MultiGroupInstance([_mset(["a"]), _mset(["b"])])
    schedules = _solved(instance)
    with pytest.raises(ContentionError, match="expected 2 schedules"):
        MultiGroupSchedule(instance, schedules[:1], (0.0,))
    with pytest.raises(ContentionError, match="not over instance group"):
        MultiGroupSchedule(instance, list(reversed(schedules)), (0.0, 0.0))
    with pytest.raises(ContentionError, match="finite and >= 0"):
        MultiGroupSchedule(instance, schedules, (0.0, -1.0))


def test_objectives_and_claims():
    instance = MultiGroupInstance(
        [_mset(["a"]), _mset(["b"])], weights=[2, 1]
    )
    schedules = _solved(instance)
    span = schedules[0].reception_completion
    mg = MultiGroupSchedule(instance, schedules, (0.0, span))
    assert mg.group_completion(0) == span
    assert mg.group_completion(1) == span + schedules[1].reception_completion
    assert mg.completions == (mg.group_completion(0), mg.group_completion(1))
    assert mg.max_makespan == max(mg.completions)
    assert mg.weighted_sum == 2 * mg.completions[0] + 1 * mg.completions[1]
    claims = mg.claims()
    # only the shared source can contend; per-group destinations are private
    assert set(claims) == {"s"}
    assert all(isinstance(c, ClaimInterval) for c in claims["s"])
    starts = [c.start for c in claims["s"]]
    assert starts == sorted(starts)


def test_overlapping_shared_claims_are_rejected():
    instance = MultiGroupInstance([_mset(["a"]), _mset(["b"])])
    schedules = _solved(instance)
    with pytest.raises(ContentionError, match="double-booked"):
        MultiGroupSchedule(instance, schedules, (0.0, 0.0))
    # validate=False defers the check
    lazy = MultiGroupSchedule(instance, schedules, (0.0, 0.0), validate=False)
    with pytest.raises(ContentionError, match="double-booked"):
        lazy.assert_no_contention()


def test_touching_endpoints_do_not_contend():
    instance = MultiGroupInstance([_mset(["a"]), _mset(["b"])])
    schedules = _solved(instance)
    # the source's last busy moment in group 0 (group-relative)
    last_busy = max(
        end for _, _, end in busy_intervals(schedules[0])["s"]
    )
    mg = MultiGroupSchedule(instance, schedules, (0.0, last_busy))
    mg.assert_no_contention()


def test_schedule_equality_and_hash():
    instance = MultiGroupInstance([_mset(["a"]), _mset(["b"])])
    schedules = _solved(instance)
    a = plan_sequential(instance, schedules)
    b = plan_sequential(instance, schedules)
    assert a == b and hash(a) == hash(b)
    assert a != plan_round_robin(instance, schedules)
    assert a.__eq__(object()) is NotImplemented


# ----------------------------------------------------------------------
# composition strategies
# ----------------------------------------------------------------------
def test_strategy_registry_matches_functions():
    assert available_strategies() == ["sequential", "round-robin", "greedy-pack"]
    assert MULTI_GROUP_STRATEGIES["sequential"][0] is plan_sequential
    assert MULTI_GROUP_STRATEGIES["round-robin"][0] is plan_round_robin
    assert MULTI_GROUP_STRATEGIES["greedy-pack"][0] is plan_greedy_pack


def test_strategies_reject_wrong_schedule_count():
    instance = MultiGroupInstance([_mset(["a"]), _mset(["b"])])
    schedules = _solved(instance)
    for fn, _ in MULTI_GROUP_STRATEGIES.values():
        with pytest.raises(ContentionError, match="per-group schedules"):
            fn(instance, schedules[:1])


def test_sequential_offsets_are_cumulative_completions():
    instance = MultiGroupInstance([_mset(["a"]), _mset(["b"]), _mset(["c"])])
    schedules = _solved(instance)
    mg = plan_sequential(instance, schedules)
    clock = 0.0
    for g, schedule in enumerate(schedules):
        assert mg.offsets[g] == clock
        clock += schedule.reception_completion
    assert mg.max_makespan == clock


def test_round_robin_uses_one_stride():
    instance = MultiGroupInstance([_mset(["a"]), _mset(["b"]), _mset(["c"])])
    mg = plan_round_robin(instance, _solved(instance))
    stride = mg.offsets[1]
    assert mg.offsets == (0.0, stride, 2 * stride)
    assert stride > 0


def test_disjoint_groups_run_fully_in_parallel():
    a = MulticastSet(Node("s0", 2, 3), [Node("a", 1, 2)], 1)
    b = MulticastSet(Node("s1", 2, 3), [Node("b", 1, 2)], 1)
    instance = MultiGroupInstance([a, b])
    assert instance.shared_nodes() == ()
    schedules = _solved(instance)
    assert plan_round_robin(instance, schedules).offsets == (0.0, 0.0)
    assert plan_greedy_pack(instance, schedules).offsets == (0.0, 0.0)


def test_greedy_pack_never_loses_to_sequential():
    instance = MultiGroupInstance(
        [_mset(["a", "a2"]), _mset(["b"]), _mset(["c", "c2", "c3"])]
    )
    schedules = _solved(instance)
    packed = plan_greedy_pack(instance, schedules)
    serialized = plan_sequential(instance, schedules)
    assert packed.max_makespan <= serialized.max_makespan
    packed.assert_no_contention()
