"""Unit tests for the precomputed optimal table (Theorem 2 closing note)."""

import pytest

from repro.core.dp import solve_dp
from repro.core.dp_table import OptimalTable
from repro.core.multicast import MulticastSet
from repro.exceptions import SolverError
from repro.workloads.clusters import limited_type_cluster
from repro.workloads.generator import multicast_from_cluster

TYPES = [(1, 1), (2, 3)]


@pytest.fixture
def table():
    return OptimalTable(TYPES, [4, 4], latency=1).build()


class TestConstruction:
    def test_build_idempotent(self, table):
        entries = table.entries
        assert table.build().entries == entries

    def test_entries_cover_full_grid(self, table):
        # 2 source types x 5 x 5 count vectors
        assert table.entries == 2 * 5 * 5

    def test_duplicate_types_rejected(self):
        with pytest.raises(SolverError, match="distinct"):
            OptimalTable([(1, 1), (1, 1)], [2, 2], latency=1)

    def test_misaligned_counts_rejected(self):
        with pytest.raises(SolverError, match="align"):
            OptimalTable(TYPES, [2], latency=1)

    def test_negative_counts_rejected(self):
        with pytest.raises(SolverError, match="non-negative"):
            OptimalTable(TYPES, [2, -1], latency=1)


class TestQueries:
    def test_zero_counts_complete_instantly(self, table):
        assert table.completion(0, (0, 0)) == 0.0
        assert table.completion(1, (0, 0)) == 0.0

    def test_figure1_entry(self, table):
        # Figure 1: slow source (type 1) to 3 fast + 1 slow
        assert table.completion(1, (3, 1)) == 8

    def test_matches_fresh_dp_everywhere(self, table):
        for s in range(2):
            for i in range(3):
                for j in range(3):
                    if i == j == 0:
                        continue
                    counts = [0, 0]
                    counts[0] = i
                    counts[1] = j
                    nodes = limited_type_cluster(
                        TYPES, [i + (1 if s == 0 else 0), j + (1 if s == 1 else 0)]
                    )
                    source = "slowest" if s == 1 else "fastest"
                    mset = multicast_from_cluster(nodes, latency=1, source=source)
                    assert table.completion(s, counts) == pytest.approx(
                        solve_dp(mset).value
                    )

    def test_out_of_capacity_rejected(self, table):
        with pytest.raises(SolverError, match="capacity"):
            table.completion(0, (5, 0))

    def test_unknown_source_type_rejected(self, table):
        with pytest.raises(SolverError, match="source type"):
            table.completion(7, (1, 1))

    def test_wrong_arity_rejected(self, table):
        with pytest.raises(SolverError, match="expected 2 counts"):
            table.completion(0, (1, 1, 1))


class TestScheduleMaterialization:
    def test_schedule_for_figure1(self, table, fig1_mset):
        s = table.schedule_for(fig1_mset)
        assert s.reception_completion == 8

    def test_schedule_for_subset_instance(self, table):
        # instance using only the fast type still works against a 2-type table
        m = MulticastSet.from_overheads((1, 1), [(1, 1), (1, 1)], 1)
        s = table.schedule_for(m)
        assert s.reception_completion == solve_dp(m).value

    def test_latency_mismatch_rejected(self, table, fig1_mset):
        with pytest.raises(SolverError, match="latency"):
            table.schedule_for(fig1_mset.with_latency(3))

    def test_foreign_type_rejected(self, table):
        m = MulticastSet.from_overheads((1, 1), [(9, 9)], 1)
        with pytest.raises(SolverError, match="not in the network"):
            table.schedule_for(m)

    def test_foreign_source_type_rejected(self, table):
        m = MulticastSet.from_overheads((9, 9), [(1, 1)], 1, validate_correlation=False)
        with pytest.raises(SolverError, match="source type"):
            table.schedule_for(m)

    def test_lazy_queries_without_build(self):
        lazy = OptimalTable(TYPES, [3, 3], latency=1)
        assert lazy.completion(1, (3, 1)) == 8
        assert lazy.entries > 0
