"""Unit tests for Theorem 1 bounds and certified lower bounds."""

import pytest

from repro.core.bounds import (
    bound_report,
    certified_lower_bound,
    first_hop_lower_bound,
    homogeneous_relaxation_lower_bound,
    theorem1_bound,
    theorem1_factor,
)
from repro.core.brute_force import solve_exact
from repro.core.greedy import greedy_schedule
from repro.core.multicast import MulticastSet


class TestTheorem1Factor:
    def test_figure1_factor(self, fig1_mset):
        # alpha_max = 1.5 -> ceil = 2; alpha_min = 1 -> factor 4
        assert theorem1_factor(fig1_mset) == pytest.approx(4.0)

    def test_special_case_equal_overheads_gives_two(self, homogeneous_mset):
        # the paper: "if the sending overhead is equal to the receiving
        # overhead in each node then ... the bound becomes 2 x OPT_R + beta"
        assert theorem1_factor(homogeneous_mset) == pytest.approx(2.0)

    def test_bound_evaluation(self, fig1_mset):
        assert theorem1_bound(fig1_mset, 8) == pytest.approx(4 * 8 + 2)


class TestLowerBounds:
    def test_first_hop_bound_figure1(self, fig1_mset):
        # o_send(src)=2, L=1, max dest recv=3
        assert first_hop_lower_bound(fig1_mset) == 6

    def test_first_hop_is_valid(self, small_random_msets):
        for m in small_random_msets:
            assert first_hop_lower_bound(m) <= solve_exact(m).value + 1e-9

    def test_homogeneous_relaxation_is_valid(self, small_random_msets):
        for m in small_random_msets:
            assert homogeneous_relaxation_lower_bound(m) <= solve_exact(m).value + 1e-9

    def test_relaxation_exact_on_homogeneous(self, homogeneous_mset):
        assert homogeneous_relaxation_lower_bound(homogeneous_mset) == pytest.approx(
            solve_exact(homogeneous_mset).value
        )

    def test_certified_is_max_of_both(self, fig1_mset):
        assert certified_lower_bound(fig1_mset) == max(
            first_hop_lower_bound(fig1_mset),
            homogeneous_relaxation_lower_bound(fig1_mset),
        )

    def test_certified_below_optimum(self, small_random_msets):
        for m in small_random_msets:
            assert certified_lower_bound(m) <= solve_exact(m).value + 1e-9


class TestTheorem1Holds:
    """The theorem itself, verified with exact optima."""

    def test_on_figure1(self, fig1_mset):
        greedy = greedy_schedule(fig1_mset).reception_completion
        opt = solve_exact(fig1_mset).value
        assert greedy < theorem1_bound(fig1_mset, opt)

    def test_across_random_instances(self, small_random_msets):
        for m in small_random_msets:
            greedy = greedy_schedule(m).reception_completion
            opt = solve_exact(m).value
            assert greedy < theorem1_bound(m, opt)

    def test_adversarial_wide_ratios(self):
        m = MulticastSet.from_overheads(
            (10, 40), [(1, 1), (2, 5), (10, 40), (12, 50)], 3
        )
        greedy = greedy_schedule(m).reception_completion
        opt = solve_exact(m).value
        assert greedy < theorem1_bound(m, opt)


class TestBoundReport:
    def test_fields(self, fig1_mset):
        report = bound_report(fig1_mset, 10, 8, opt_is_exact=True)
        assert report.n == 4
        assert report.factor == pytest.approx(4.0)
        assert report.beta == 2
        assert report.guarantee == pytest.approx(34)
        assert report.measured_ratio == pytest.approx(1.25)
        assert report.within_guarantee

    def test_with_lower_bound(self, fig1_mset):
        lb = certified_lower_bound(fig1_mset)
        report = bound_report(
            fig1_mset, 10, lb, opt_is_exact=False
        )
        assert not report.opt_is_exact
        assert report.measured_ratio >= 10 / 8  # LB <= OPT inflates the ratio
