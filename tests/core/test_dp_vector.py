"""The slab-vectorized DP backend is bit-identical to the scalar scan.

Every test runs against both engines of :mod:`repro.core.dp_vector`:
the numpy slab engine (skipped when numpy is unavailable) and the
stdlib-``array`` fallback (forced via ``REPRO_NO_NUMPY``).  Identity is
exact — ``==`` on values, schedules, argmin splits and state counts, no
tolerances — because the planner, conformance corpus and snapshot codec
all rely on the backends being interchangeable byte for byte.
"""

import pytest

from repro.core.dp import (
    _DPCore,
    TypeSystem,
    estimated_states,
    solve_dp,
)
from repro.core.dp_vector import (
    AUTO_VECTOR_MIN_STATES,
    DP_BACKENDS,
    NO_NUMPY_ENV,
    _VectorCore,
    core_cls_for,
    numpy_available,
    resolve_backend,
    solve_dp_backend,
    solve_dp_vector,
    vector_engine,
)
from repro.exceptions import SolverError
from repro.experiments.dp_scaling import TYPE_SETS, _split
from repro.workloads.clusters import limited_type_cluster
from repro.workloads.generator import multicast_from_cluster


def _instance(k: int, n: int, latency: float = 1):
    nodes = limited_type_cluster(TYPE_SETS[k], _split(n + 1, k))
    return multicast_from_cluster(nodes, latency=latency, source="slowest")


@pytest.fixture(params=["numpy", "array"])
def engine(request, monkeypatch):
    """Run the test under one concrete vector engine."""
    if request.param == "numpy":
        if not numpy_available():
            pytest.skip("numpy engine unavailable")
        monkeypatch.delenv(NO_NUMPY_ENV, raising=False)
    else:
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
    assert vector_engine() == request.param
    return request.param


def assert_cores_identical(scalar: _DPCore, vector: _VectorCore) -> None:
    """Full table equality: tau values and (ell, ysplit) choices."""
    assert scalar._max == vector._max
    assert scalar._strides == vector._strides
    k = scalar.types.k
    size = scalar._size
    for s in range(k):
        assert list(vector._tau[s]) == list(scalar._tau[s])
        for code in range(size):
            choice = scalar._choice[s][code]
            ell = vector._ell[s][code]
            ysp = vector._ysplit[s][code]
            if choice is None:
                assert (ell, ysp) == (-1, 0), (s, code)
            else:
                assert (ell, ysp) == choice, (s, code)


# ----------------------------------------------------------------------
# solve-level parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "k,n,latency",
    [(1, 1, 1), (1, 7, 2), (1, 24, 1), (2, 2, 1), (2, 9, 3), (2, 17, 1),
     (3, 3, 1), (3, 8, 2), (3, 14, 1)],
)
def test_solve_parity(engine, k, n, latency):
    mset = _instance(k, n, latency)
    scalar = solve_dp(mset)
    vector = solve_dp_vector(mset)
    assert vector.value == scalar.value
    assert vector.schedule == scalar.schedule
    assert vector.schedule.reception_times == scalar.schedule.reception_times
    assert vector.states_computed == scalar.states_computed


def test_choice_table_identity(engine):
    for k, counts in [(2, (6, 5)), (3, (4, 3, 3))]:
        mset = _instance(k, sum(counts))
        types = TypeSystem.of(mset)
        box = tuple(counts)
        scalar = _DPCore(types, mset.latency)
        scalar.ensure(box)
        vector = _VectorCore(types, mset.latency)
        vector.ensure(box)
        assert_cores_identical(scalar, vector)


def test_incremental_grow_identity(engine):
    """Two-step growth matches a fresh scalar build of the final box."""
    for k, first, second in [
        (2, (4, 3), (7, 6)),
        (3, (2, 2, 2), (4, 3, 5)),
    ]:
        mset = _instance(k, sum(second))
        types = TypeSystem.of(mset)
        vector = _VectorCore(types, mset.latency)
        vector.ensure(first)
        grown = vector.extended_to(second)
        fresh = _DPCore(types, mset.latency)
        fresh.ensure(second)
        assert_cores_identical(fresh, grown)
        # the original core is untouched (readers stay consistent)
        assert vector._max == first


# ----------------------------------------------------------------------
# backend resolution and the spec surface
# ----------------------------------------------------------------------
def test_backend_names_are_stable():
    assert DP_BACKENDS == ("auto", "scalar", "vector")


def test_resolve_backend_auto_rules():
    big = AUTO_VECTOR_MIN_STATES * 10
    assert resolve_backend("scalar", k=2, states=big) == "scalar"
    assert resolve_backend("vector", k=1, states=1) == "vector"
    # homogeneous instances always take the scalar closed form
    assert resolve_backend("auto", k=1, states=big) == "scalar"
    # small boxes stay scalar: the slab setup cost dominates
    assert resolve_backend("auto", k=2, states=AUTO_VECTOR_MIN_STATES - 1) == "scalar"
    if numpy_available():
        assert resolve_backend("auto", k=2, states=big) == "vector"


def test_resolve_backend_auto_without_numpy(monkeypatch):
    monkeypatch.setenv(NO_NUMPY_ENV, "1")
    assert not numpy_available()
    assert resolve_backend("auto", k=2, states=AUTO_VECTOR_MIN_STATES * 10) == "scalar"


def test_unknown_backend_raises():
    mset = _instance(2, 4)
    with pytest.raises(SolverError, match="unknown dp backend"):
        resolve_backend("bogus")
    with pytest.raises(SolverError, match="unknown dp backend"):
        solve_dp_backend(mset, backend="bogus")
    with pytest.raises(SolverError, match="unknown dp backend"):
        core_cls_for("bogus")


def test_solve_dp_backend_dispatch(engine):
    mset = _instance(2, 8)
    for backend in DP_BACKENDS:
        solution = solve_dp_backend(mset, backend=backend)
        scalar = solve_dp(mset)
        assert solution.value == scalar.value
        assert solution.schedule == scalar.schedule
        assert solution.states_computed == scalar.states_computed


def test_core_cls_for_matches_resolution():
    assert core_cls_for("scalar", k=2, states=10**6) is _DPCore
    assert core_cls_for("vector", k=2, states=1) is _VectorCore
    if numpy_available():
        assert core_cls_for("auto", k=2, states=10**6) is _VectorCore
    assert core_cls_for("auto", k=1, states=10**6) is _DPCore


def test_max_states_guard_applies_to_vector():
    mset = _instance(2, 20)
    with pytest.raises(SolverError, match="max_states"):
        solve_dp_vector(mset, max_states=10)


# ----------------------------------------------------------------------
# the full quick-corpus identity sweep (mirrors test_reference_identity)
# ----------------------------------------------------------------------
MAX_IDENTITY_STATES = 200_000


def test_vector_bit_identical_on_quick_corpus():
    from repro.api.solvers import capable_solvers
    from repro.conformance import generate_corpus

    checked = 0
    for spec in generate_corpus("quick"):
        mset = spec.build()
        if "dp" not in capable_solvers(mset):
            continue
        if estimated_states(mset) > MAX_IDENTITY_STATES:
            continue  # pragma: no cover - quick corpus stays tiny
        scalar = solve_dp(mset)
        vector = solve_dp_vector(mset)
        assert vector.value == scalar.value, spec.key
        assert vector.schedule == scalar.schedule, spec.key
        assert (
            vector.schedule.reception_times == scalar.schedule.reception_times
        ), spec.key
        assert vector.states_computed == scalar.states_computed, spec.key
        checked += 1
    # the corpus must actually exercise the DP, not skip everything
    assert checked > 100
