"""``repro/perf-v1`` record round-trips, digests and file handling."""

import json

import pytest

from repro.exceptions import ReproError
from repro.perf.baseline import (
    BenchmarkRecord,
    CaseResult,
    baseline_filename,
    load_baseline,
    load_baselines,
    write_baseline,
)
from repro.perf.measure import TimingStats


def _record(name="dp_scaling", min_s=0.002, **overrides):
    timing = TimingStats(
        min_s=min_s, mean_s=min_s * 1.2, max_s=min_s * 2, stddev_s=min_s / 10,
        repeats=5,
    )
    fields = dict(
        name=name,
        mode="quick",
        environment={"python": "3.11.7", "machine": "x86_64"},
        results=(
            CaseResult("k=2,n=16", timing, {"states": 160, "optimum": 13.0}),
        ),
        summary={"speedup_vs_reference": 6.5},
        floors={"speedup_vs_reference": 3.0},
    )
    fields.update(overrides)
    return BenchmarkRecord(**fields)


class TestRecordRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        record = _record()
        clone = BenchmarkRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.digest == record.digest

    def test_digest_is_deterministic_and_content_bound(self):
        assert _record().digest == _record().digest
        assert _record().digest != _record(min_s=0.003).digest

    def test_format_checked(self):
        with pytest.raises(ReproError, match="repro/perf-v1"):
            BenchmarkRecord.from_dict({"format": "something-else"})

    def test_tampered_digest_rejected(self):
        data = _record().to_dict()
        data["summary"]["speedup_vs_reference"] = 99.0  # edited by hand
        with pytest.raises(ReproError, match="digest mismatch"):
            BenchmarkRecord.from_dict(data)

    def test_case_lookup(self):
        record = _record()
        assert record.case("k=2,n=16").extra_info["states"] == 160
        with pytest.raises(ReproError, match="no case"):
            record.case("k=9,n=9")


class TestBaselineFiles:
    def test_write_then_load_round_trips(self, tmp_path):
        record = _record()
        path = write_baseline(tmp_path, record)
        assert path.name == baseline_filename("dp_scaling") == "BENCH_dp_scaling.json"
        assert load_baseline(path) == record

    def test_file_is_sorted_pretty_json(self, tmp_path):
        path = write_baseline(tmp_path, _record())
        text = path.read_text()
        assert text.endswith("\n")
        data = json.loads(text)
        assert list(data) == sorted(data)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="no baseline"):
            load_baseline(tmp_path / "BENCH_nope.json")

    def test_malformed_json_rejected(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_baseline(bad)

    def test_directory_expansion(self, tmp_path):
        write_baseline(tmp_path, _record("dp_scaling"))
        write_baseline(tmp_path, _record("greedy_scaling"))
        (tmp_path / "unrelated.json").write_text("{}")
        names = [r.name for r in load_baselines([tmp_path])]
        assert names == ["dp_scaling", "greedy_scaling"]

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="no BENCH_"):
            load_baselines([tmp_path])

    def test_duplicate_kernel_rejected(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        write_baseline(a, _record())
        write_baseline(b, _record())
        with pytest.raises(ReproError, match="appears in both"):
            load_baselines([a, b])
