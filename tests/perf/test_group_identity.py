"""Acceptance: group-solve batches are byte-identical to per-instance plans.

Sweeps the full conformance ``quick`` corpus — every cluster family x
source policy x size plus the adversarial catalogue — planning every
``dp``-capable instance twice: once through ``plan_batch(group_solve=True)``
(one table per canonical type-system bucket) and once per-instance through
a table-reuse-free planner.  Every serialized result must match byte for
byte, *including* provenance and ``states_computed``, which is exactly
what the conformance service-parity invariant compares — so group-solve
can never be observed from the outside.
"""

import json

from repro.api import Planner, PlanRequest
from repro.api.solvers import capable_solvers
from repro.conformance import generate_corpus
from repro.core.dp import estimated_states
from repro.io.serialization import plan_result_to_dict

#: Cap mirroring tests/perf/test_reference_identity.py: keep per-spec cost
#: test-sized (the quick corpus tops out far below this).
MAX_IDENTITY_STATES = 200_000


def _payload(result) -> str:
    body = plan_result_to_dict(result)
    body["elapsed_s"] = 0.0
    return json.dumps(body, sort_keys=True)


def test_group_solve_bit_identical_on_quick_corpus():
    instances = []
    for spec in generate_corpus("quick"):
        mset = spec.build()
        if "dp" not in capable_solvers(mset):
            continue
        if estimated_states(mset) > MAX_IDENTITY_STATES:
            continue  # pragma: no cover - quick corpus stays tiny
        instances.append((spec.key, mset))
    assert len(instances) > 100  # the corpus must actually exercise the DP

    requests = [
        PlanRequest(instance=mset, solver="dp", tag=key) for key, mset in instances
    ]
    grouped_planner = Planner(cache_size=0)
    grouped = grouped_planner.plan_batch(requests, group_solve=True)
    per_instance = Planner(cache_size=0, reuse_tables=False).plan_batch(
        requests, group_solve=False
    )
    assert len(grouped) == len(per_instance) == len(requests)
    for ours, theirs in zip(grouped, per_instance):
        assert _payload(ours) == _payload(theirs), theirs.tag
    # the sweep really was amortized: far fewer tables than instances
    cache = grouped_planner.table_cache
    assert 0 < cache.builds + cache.extensions < len(instances) / 2
