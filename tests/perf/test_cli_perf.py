"""CLI exit codes and plumbing for ``hnow-multicast perf``.

The dp_table kernel (fast, floor-free) exercises the run path; compare
exit codes are driven by hand-built baselines so the tests stay
deterministic on any machine.
"""

import json

from repro.cli.main import main
from repro.perf.baseline import (
    BenchmarkRecord,
    CaseResult,
    load_baseline,
    write_baseline,
)
from repro.perf.environment import environment_fingerprint
from repro.perf.measure import TimingStats


def _run_dp_table(tmp_path):
    out = tmp_path / "records"
    code = main([
        "perf", "run", "--kernel", "dp_table", "--repeats", "1",
        "-o", str(out),
    ])
    return code, out / "BENCH_dp_table.json"


class TestPerfRun:
    def test_run_writes_records_and_exits_zero(self, tmp_path, capsys):
        code, path = _run_dp_table(tmp_path)
        assert code == 0
        record = load_baseline(path)
        assert record.name == "dp_table"
        assert record.environment == environment_fingerprint()
        assert all(case.timing.min_s > 0 for case in record.results)
        assert "dp_table" in capsys.readouterr().out

    def test_kernel_list(self, capsys):
        assert main(["perf", "run", "--kernel", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("dp_scaling", "greedy_scaling", "service_throughput"):
            assert name in out

    def test_unknown_kernel_is_usage_error(self, capsys):
        assert main(["perf", "run", "--kernel", "nope"]) == 2
        assert "unknown perf kernel" in capsys.readouterr().err

    def test_run_batch_amortized_self_gates_its_floor(self, tmp_path, capsys):
        # the kernel's own run enforces the committed >= 3x group-solve
        # floor (exit 1 on a miss) and writes a loadable record
        out = tmp_path / "records"
        code = main([
            "perf", "run", "--kernel", "batch_amortized", "--repeats", "1",
            "-o", str(out),
        ])
        printed = capsys.readouterr().out
        record = load_baseline(out / "BENCH_batch_amortized.json")
        assert record.floors == {"speedup_vs_per_instance": 3.0}
        speedup = record.summary["speedup_vs_per_instance"]
        assert code == (0 if speedup >= 3.0 else 1)
        assert "batch_amortized" in printed


class TestPerfCompare:
    def test_green_compare_exits_zero(self, tmp_path, capsys):
        _, path = _run_dp_table(tmp_path)
        code = main([
            "perf", "compare", "--baseline", str(path),
            "--tolerance", "10000%", "--repeats", "1",
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        _, path = _run_dp_table(tmp_path)
        record = load_baseline(path)
        # shrink the recorded timings 1000x: the same machine cannot keep
        # up with them, so the (env-matched, enforced) tolerance trips
        shrunk = BenchmarkRecord(
            name=record.name,
            mode=record.mode,
            environment=record.environment,
            results=tuple(
                CaseResult(
                    case.case,
                    TimingStats(
                        min_s=case.timing.min_s / 1000,
                        mean_s=case.timing.mean_s / 1000,
                        max_s=case.timing.max_s / 1000,
                        stddev_s=0.0,
                        repeats=case.timing.repeats,
                    ),
                    dict(case.extra_info),
                )
                for case in record.results
            ),
            summary=dict(record.summary),
            floors=dict(record.floors),
        )
        write_baseline(path.parent, shrunk)
        code = main([
            "perf", "compare", "--baseline", str(path),
            "--tolerance", "25%", "--repeats", "1",
        ])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_floor_violation_exits_one(self, tmp_path, capsys):
        _, path = _run_dp_table(tmp_path)
        record = load_baseline(path)
        gated = BenchmarkRecord(
            name=record.name,
            mode=record.mode,
            environment=record.environment,
            results=record.results,
            summary=record.summary,
            floors={"speedup_vs_reference": 99.0},  # dp_table reports none
        )
        write_baseline(path.parent, gated)
        code = main([
            "perf", "compare", "--baseline", str(path),
            "--tolerance", "10000%", "--repeats", "1",
        ])
        assert code == 1
        assert "MISSING" in capsys.readouterr().out

    def test_malformed_tolerance_is_usage_error(self, tmp_path, capsys):
        _, path = _run_dp_table(tmp_path)
        assert main([
            "perf", "compare", "--baseline", str(path), "--tolerance", "fast",
        ]) == 2
        assert "malformed tolerance" in capsys.readouterr().err

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        assert main([
            "perf", "compare", "--baseline", str(tmp_path / "BENCH_x.json"),
        ]) == 2

    def test_tampered_baseline_is_rejected(self, tmp_path, capsys):
        _, path = _run_dp_table(tmp_path)
        data = json.loads(path.read_text())
        data["results"][0]["timing"]["min_s"] = 1e-9
        path.write_text(json.dumps(data))
        assert main(["perf", "compare", "--baseline", str(path)]) == 2
        assert "digest mismatch" in capsys.readouterr().err


class TestPerfBaseline:
    def test_baseline_writes_to_output_dir(self, tmp_path, capsys):
        code = main([
            "perf", "baseline", "--kernel", "dp_table", "--repeats", "1",
            "-o", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "BENCH_dp_table.json").exists()
        assert "wrote" in capsys.readouterr().out
