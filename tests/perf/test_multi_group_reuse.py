"""Acceptance: multi-group inner solves hit the shared amortization stack.

The tentpole claim of the contention layer's architecture is that
planning many concurrent groups costs *one* single-group solve per
canonical network, not one per group: the inner subproblems route through
``Planner.plan_batch``, so canonical-key caching collapses equivalent
groups and ``dp`` table work lands in the shared
:class:`~repro.api.tables.OptimalTableCache`.  This test pins that wiring
— a regression that silently re-solves per group fails here, not just in
wall-clock time.
"""

from repro.api import MultiGroupPlanner, Planner
from repro.core.contention import MultiGroupInstance
from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.workloads import multi_group_workload


def _equivalent_groups(n_groups=4, n=4):
    """Groups over disjoint-name copies of one canonical network."""
    source = Node("hub", 2, 4)
    return MultiGroupInstance(
        [
            MulticastSet(
                source,
                [Node(f"g{g}d{i}", 1, 2) for i in range(n)],
                1,
            )
            for g in range(n_groups)
        ]
    )


def test_equivalent_groups_collapse_to_one_canonical_solve():
    planner = Planner()
    instance = _equivalent_groups()
    result = MultiGroupPlanner(planner).plan_groups(instance, solver="dp")
    info = planner.cache_info()
    # groups 1..3 are canonically equivalent to group 0: one real solve,
    # the rest rebind through the canonical key
    assert info.canonical_hits == instance.n_groups - 1
    assert planner.table_cache.stats()["builds"] == 1
    assert all(r.exact for r in result.group_results)


def test_repeated_networks_reuse_tables_across_scenarios():
    """Replanning the same workload family keeps hitting the shared cache."""
    planner = Planner()
    mg_planner = MultiGroupPlanner(planner)
    first = multi_group_workload(groups=3, n=4, seed=0, latency=2)
    second = multi_group_workload(groups=3, n=4, seed=0, latency=2)
    mg_planner.plan_groups(first, solver="dp")
    builds_after_first = planner.table_cache.stats()["builds"]
    mg_planner.plan_groups(second, solver="dp")
    info = planner.cache_info()
    # the second instance is identical: every inner solve is a cache hit
    assert info.hits >= second.n_groups
    assert planner.table_cache.stats()["builds"] == builds_after_first


def test_compare_strategies_pays_for_inner_solves_once():
    planner = Planner()
    instance = _equivalent_groups(n_groups=3)
    results = MultiGroupPlanner(planner).compare_strategies(
        instance, solver="dp"
    )
    info = planner.cache_info()
    # 3 strategies x 3 groups = 9 requests; after the first strategy the
    # other two batches are pure cache hits, and within the first batch
    # two of three groups rebind canonically
    assert len(results) == 3
    assert info.canonical_hits >= instance.n_groups - 1
    assert info.hits >= 2 * instance.n_groups
    assert planner.table_cache.stats()["builds"] == 1
