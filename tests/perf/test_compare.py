"""Regression detection: tolerances, environment policy, floors."""

import pytest

from repro.exceptions import ReproError
from repro.perf.baseline import BenchmarkRecord, CaseResult
from repro.perf.compare import compare_records
from repro.perf.environment import environment_fingerprint, environment_mismatches
from repro.perf.measure import TimingStats


ENV_A = {"python": "3.11.7", "machine": "x86_64"}
ENV_B = {"python": "3.12.1", "machine": "arm64"}


def _timing(min_s):
    return TimingStats(
        min_s=min_s, mean_s=min_s, max_s=min_s, stddev_s=0.0, repeats=3
    )


def _record(name, min_s, *, env=ENV_A, summary=None, floors=None, case="n=1024"):
    return BenchmarkRecord(
        name=name,
        mode="quick",
        environment=dict(env),
        results=(CaseResult(case, _timing(min_s)),),
        summary=dict(summary or {}),
        floors=dict(floors or {}),
    )


class TestTimingPolicy:
    def test_within_tolerance_passes(self):
        report = compare_records(
            [_record("greedy_scaling", 0.010)],
            [_record("greedy_scaling", 0.012)],
            tolerance=0.25,
        )
        assert report.ok
        assert report.deltas[0].ratio == pytest.approx(1.2)
        assert not report.deltas[0].regressed

    def test_above_tolerance_fails_on_same_environment(self):
        report = compare_records(
            [_record("greedy_scaling", 0.010)],
            [_record("greedy_scaling", 0.014)],
            tolerance=0.25,
        )
        assert not report.ok
        assert report.deltas[0].failed
        assert "REGRESSED" in report.summary()
        assert report.summary().endswith("FAIL")

    def test_speedup_never_fails(self):
        report = compare_records(
            [_record("greedy_scaling", 0.010)],
            [_record("greedy_scaling", 0.004)],
            tolerance=0.0,
        )
        assert report.ok

    def test_environment_mismatch_demotes_timings_to_warnings(self):
        report = compare_records(
            [_record("greedy_scaling", 0.010, env=ENV_A)],
            [_record("greedy_scaling", 0.050, env=ENV_B)],
            tolerance=0.25,
        )
        assert report.ok  # 5x slower, but on a different machine
        assert report.deltas[0].regressed and not report.deltas[0].failed
        assert any("environment differs" in w for w in report.warnings)
        assert "advisory" in report.summary()

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ReproError, match="tolerance"):
            compare_records([], [], tolerance=-0.1)


class TestFloors:
    def test_floor_enforced_even_across_environments(self):
        baseline = _record(
            "greedy_scaling", 0.010, env=ENV_A,
            floors={"speedup_vs_reference": 2.0},
        )
        current = _record(
            "greedy_scaling", 0.010, env=ENV_B,
            summary={"speedup_vs_reference": 1.4},
        )
        report = compare_records([baseline], [current], tolerance=0.25)
        assert not report.ok
        assert report.floors[0].failed
        assert "FLOOR VIOLATED" in report.summary()

    def test_floor_met_passes(self):
        baseline = _record(
            "dp_scaling", 0.010, floors={"speedup_vs_reference": 3.0}
        )
        current = _record(
            "dp_scaling", 0.010, summary={"speedup_vs_reference": 6.1}
        )
        assert compare_records([baseline], [current], tolerance=0.25).ok

    def test_missing_summary_metric_fails(self):
        baseline = _record(
            "dp_scaling", 0.010, floors={"speedup_vs_reference": 3.0}
        )
        current = _record("dp_scaling", 0.010)  # no summary at all
        report = compare_records([baseline], [current], tolerance=0.25)
        assert not report.ok
        assert "MISSING" in report.summary()


class TestCoverageWarnings:
    def test_unran_kernel_warns(self):
        report = compare_records(
            [_record("dp_scaling", 0.010)], [], tolerance=0.25
        )
        assert report.ok  # nothing regressed; but visibly incomplete
        assert any("was not run" in w for w in report.warnings)

    def test_missing_case_warns(self):
        report = compare_records(
            [_record("dp_scaling", 0.010, case="k=3,n=21")],
            [_record("dp_scaling", 0.010, case="k=2,n=16")],
            tolerance=0.25,
        )
        assert any("missing from the current run" in w for w in report.warnings)


class TestEnvironment:
    def test_fingerprint_shape(self):
        env = environment_fingerprint()
        for key in ("python", "implementation", "platform", "machine",
                    "cpu_count", "repro_version"):
            assert key in env

    def test_mismatch_reporting(self):
        assert environment_mismatches(ENV_A, ENV_A) == []
        diffs = environment_mismatches(ENV_A, ENV_B)
        assert any("machine" in d for d in diffs)
        # keys present on only one side still surface
        assert environment_mismatches({"python": "3.11"}, {}) == [
            "python: baseline '3.11' vs current None"
        ]
