"""Unit tests for the perf timing harness."""

import pytest

from repro.exceptions import ReproError
from repro.perf.measure import TimingStats, measure, measure_pair


class TestMeasure:
    def test_returns_stats_and_payload(self):
        calls = []
        stats, payload = measure(lambda: calls.append(1) or len(calls), repeats=3)
        assert payload == len(calls)
        assert calls == [1] * 4  # 1 warmup + 3 timed
        assert stats.repeats == 3
        assert 0 <= stats.min_s <= stats.mean_s <= stats.max_s

    def test_warmup_configurable(self):
        calls = []
        measure(lambda: calls.append(1), repeats=2, warmup=0)
        assert len(calls) == 2

    def test_rejects_zero_repeats(self):
        with pytest.raises(ReproError, match="repeats"):
            measure(lambda: None, repeats=0)

    def test_pair_interleaves(self):
        order = []
        measure_pair(
            lambda: order.append("a"),
            lambda: order.append("b"),
            repeats=3,
            warmup=1,
        )
        assert order == ["a", "b"] * 4  # warmup pair + 3 timed pairs

    def test_pair_returns_both_payloads(self):
        (sa, pa), (sb, pb) = measure_pair(lambda: "A", lambda: "B", repeats=2)
        assert (pa, pb) == ("A", "B")
        assert sa.repeats == sb.repeats == 2


class TestTimingStats:
    def test_round_trip(self):
        stats = TimingStats(
            min_s=0.001, mean_s=0.002, max_s=0.004, stddev_s=0.0005, repeats=7
        )
        assert TimingStats.from_dict(stats.to_dict()) == stats

    def test_missing_field_rejected(self):
        with pytest.raises(ReproError, match="min_s"):
            TimingStats.from_dict({"mean_s": 1.0})
