"""Acceptance: optimized kernels are bit-identical to the frozen seed code.

Sweeps the full conformance ``quick`` corpus — every cluster family x
source policy x size plus the adversarial catalogue — asserting exact
(``==``, no tolerance) equality of values, schedules and timing vectors
between the optimized DP/greedy and :mod:`repro.perf.reference`.
"""

import pytest

from repro.api.solvers import capable_solvers
from repro.conformance import generate_corpus
from repro.core.dp import estimated_states, solve_dp
from repro.core.greedy import greedy_schedule
from repro.core.schedule import Schedule
from repro.perf.reference import reference_greedy_schedule, reference_solve_dp
from repro.workloads.clusters import bounded_ratio_cluster
from repro.workloads.generator import multicast_from_cluster

#: Cap for the identity sweep: reference DP is the seed's recursion, so
#: keep the per-spec cost test-sized (the corpus tops out far below this).
MAX_IDENTITY_STATES = 200_000

QUICK_SPECS = generate_corpus("quick")


def _spec_id(spec):
    return spec.key


@pytest.mark.parametrize("spec", QUICK_SPECS, ids=_spec_id)
def test_greedy_bit_identical_on_quick_corpus(spec):
    mset = spec.build()
    optimized = greedy_schedule(mset)
    reference = reference_greedy_schedule(mset)
    assert optimized == reference
    assert optimized.delivery_times == reference.delivery_times
    assert optimized.reception_times == reference.reception_times


def test_dp_bit_identical_on_quick_corpus():
    checked = 0
    for spec in QUICK_SPECS:
        mset = spec.build()
        if "dp" not in capable_solvers(mset):
            continue
        if estimated_states(mset) > MAX_IDENTITY_STATES:
            continue  # pragma: no cover - quick corpus stays tiny
        solution = solve_dp(mset)
        ref_value, ref_schedule = reference_solve_dp(mset)
        assert solution.value == ref_value, spec.key
        assert solution.schedule == ref_schedule, spec.key
        assert (
            solution.schedule.reception_times == ref_schedule.reception_times
        ), spec.key
        checked += 1
    # the corpus must actually exercise the DP, not skip everything
    assert checked > 100


class TestTrustedScheduleConstruction:
    """``Schedule._from_solver`` must agree with the validating path."""

    @pytest.mark.parametrize("n,seed", [(1, 0), (5, 1), (33, 2), (200, 3)])
    def test_greedy_trusted_equals_public_constructor(self, n, seed):
        nodes = bounded_ratio_cluster(n + 1, seed=seed)
        mset = multicast_from_cluster(nodes, latency=1 + seed, source="slowest")
        fast = greedy_schedule(mset)
        # rebuild through the full validate + normalize + recompute path
        rebuilt = Schedule(
            mset, {p: [c for c, _slot in kids] for p, kids in fast.children.items()}
        )
        assert rebuilt == fast
        assert rebuilt.children == fast.children
        assert rebuilt.delivery_times == fast.delivery_times
        assert rebuilt.reception_times == fast.reception_times
        assert [rebuilt.parent_of(v) for v in range(n + 1)] == [
            fast.parent_of(v) for v in range(n + 1)
        ]
        assert rebuilt.is_layered() == fast.is_layered()
