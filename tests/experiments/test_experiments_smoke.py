"""Smoke + verdict tests for the experiment harness (fast parameterizations).

Each experiment runs with shrunken parameters so the whole file stays quick;
the assertions check the *claims*, not just that code executes: Theorem 1
holds, reversal never regresses, DP == exact, Corollary 1 equality, etc.
"""

import pytest

from repro.analysis.tables import Table
from repro.experiments import (
    bound_tightness,
    dp_scaling,
    layered_optimality,
    leaf_reversal,
    model_comparison,
    ratio_bound,
    scaling,
    table_precompute,
)
from repro.experiments.runner import (
    DESCRIPTIONS,
    EXPERIMENTS,
    render_report,
    run_all,
    run_experiment,
)
from repro.exceptions import ReproError


class TestRatioBound:
    def test_theorem1_never_violated(self):
        tables = ratio_bound.run(suites=("bounded-ratio",), exact_max_n=6)
        verdict = tables[-1]
        assert verdict.column("violations") == ["0"]

    def test_holds_column_all_yes_for_exact(self):
        (table, _verdict) = ratio_bound.run(suites=("uniform-ratio",), exact_max_n=6)
        kinds = table.column("opt kind")
        holds = table.column("holds")
        for kind, h in zip(kinds, holds):
            if kind == "exact":
                assert h == "yes"


class TestScalingExperiments:
    def test_greedy_scaling_fits_nlogn(self):
        # sizes start at 512: the optimized greedy finishes 256 nodes in
        # tens of microseconds, where scheduler jitter drowns the fit
        tables = scaling.run(sizes=(512, 1024, 2048, 4096), repeats=5)
        note = tables[0].notes[0]
        assert "R^2" in note
        # extract the nlogn fit quality and require a sane fit
        r2 = float(note.split("=")[1].split(";")[0])
        assert r2 > 0.95

    def test_dp_optimality_table_all_equal(self):
        opt_table, _scale = dp_scaling.run(
            optimality_suites=("two-type",),
            optimality_max_n=6,
            sizes_by_k={1: (4, 8, 16)},
            repeats=1,
        )
        assert set(opt_table.column("equal")) == {"yes"}


class TestLeafReversalExperiment:
    def test_zero_regressions(self):
        (table,) = leaf_reversal.run(suites=("two-class", "uniform-ratio"))
        assert set(table.column("regressions")) == {"0"}

    def test_improvements_exist_somewhere(self):
        (table,) = leaf_reversal.run(suites=("two-class",))
        assert int(table.column("improved")[0]) > 0


class TestBoundTightness:
    def test_residual_zero(self):
        (table,) = bound_tightness.run(suites=("uniform-ratio",), exact_max_n=6)
        assert all(float(r) == 0.0 for r in table.column("mean additive residual"))

    def test_factor_exceeds_measured(self):
        (table,) = bound_tightness.run(suites=("bounded-ratio",), exact_max_n=6)
        factors = [float(x) for x in table.column("mean factor")]
        measured = [float(x) for x in table.column("mean measured ratio")]
        assert all(f > m for f, m in zip(factors, measured))


class TestModelComparison:
    def test_reference_loses_only_to_local_search(self):
        # every *baseline* sits at >= 1.0; our own local-search extension
        # is allowed to (and does) dip below the reference
        tables = model_comparison.run(suites=("two-class",))
        for table in tables:
            for name in table.headers[1:]:
                for cell in table.column(name):
                    if name == "greedy+ls":
                        assert float(cell) <= 1.0 + 1e-9
                    else:
                        assert float(cell) >= 1.0 - 1e-9


class TestTablePrecompute:
    def test_speedup_reported(self):
        (table,) = table_precompute.run(fresh_solve_samples=2)
        assert len(table.rows) == 2
        for cell in table.column("mean query (us)"):
            assert float(cell) >= 0


class TestLayeredOptimality:
    def test_no_mismatches(self):
        (table,) = layered_optimality.run(suites=("uniform-ratio",), max_n=4)
        assert set(table.column("equal")) == {"yes"}


class TestRunner:
    def test_every_experiment_registered_and_described(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}
        assert set(DESCRIPTIONS) == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            run_experiment("E99")

    def test_run_all_selected(self):
        results = run_all(["e1"])
        assert list(results) == ["E1"]
        assert all(isinstance(t, Table) for t in results["E1"])

    def test_render_report_text_and_markdown(self):
        results = run_all(["E1"])
        text = render_report(results)
        assert "E1:" in text and "==" in text
        md = render_report(results, markdown=True)
        assert md.startswith("## E1")
