"""E1: the Figure 1 reproduction must match the paper exactly."""

from repro.experiments.fig1 import (
    PAPER_COMPLETION_A,
    PAPER_COMPLETION_B,
    PAPER_NARRATED_RECEPTIONS,
    figure1_instance,
    figure1_schedule_a,
    figure1_schedule_b,
    run,
)


class TestFigure1Instance:
    def test_population(self):
        m = figure1_instance()
        assert m.source.type_key == (2, 3)
        assert [d.type_key for d in m.destinations] == [(1, 1)] * 3 + [(2, 3)]
        assert m.latency == 1

    def test_schedule_a_completion(self):
        assert figure1_schedule_a().reception_completion == PAPER_COMPLETION_A

    def test_schedule_a_narrated_times(self):
        s = figure1_schedule_a()
        assert tuple(sorted(s.reception_times[1:])) == PAPER_NARRATED_RECEPTIONS

    def test_schedule_a_narrative_walkthrough(self):
        """Re-check every number in the Section 1 narrative."""
        s = figure1_schedule_a()
        # "this fast node receives the message at time 4"
        assert s.reception_time(1) == 4
        # "the second fast node receives the message from the source at 6"
        assert s.reception_time(2) == 6
        # "the fast child receives the message at time 4 + 1 + 1 + 1 = 7"
        assert s.reception_time(3) == 7
        # "the slow child receives the message at time 5 + 1 + 1 + 3 = 10"
        assert s.reception_time(4) == 10

    def test_schedule_b_completion(self):
        assert figure1_schedule_b().reception_completion == PAPER_COMPLETION_B

    def test_schedules_share_instance_shape(self):
        a, b = figure1_schedule_a(), figure1_schedule_b()
        assert a.multicast == b.multicast
        # same unordered tree, different delivery order at the fast node
        assert a.parent_of(4) == 1 and b.parent_of(4) == 1


class TestRun:
    def test_tables_produced(self):
        tables = run()
        assert len(tables) == 2

    def test_comparison_flags_optimum(self):
        times, algos = run()
        # greedy+reversal and the DP must agree at 8
        rows = {row[0]: row for row in algos.rows}
        assert rows["greedy+reversal"][1] == "8"
        assert rows["DP optimum (k=2)"][1] == "8"
        assert rows["greedy"][1] == "10"

    def test_paper_columns_match_measured(self):
        times, _ = run()
        for row in times.rows:
            assert row[-1] == row[-2]  # "paper says" == "completes at"
