"""Unit tests for the E10 ablation experiment and its variant builders."""

import pytest

from repro.core.greedy import greedy_schedule
from repro.experiments.ablation import (
    greedy_with_insertion_order,
    random_attachment,
    run,
)


class TestInsertionOrderVariant:
    def test_sorted_order_reproduces_paper_greedy(self, fig1_mset):
        canonical = list(range(1, fig1_mset.n + 1))
        assert greedy_with_insertion_order(fig1_mset, canonical) == greedy_schedule(
            fig1_mset
        )

    def test_sorted_order_property(self, small_random_msets):
        for m in small_random_msets:
            order = list(range(1, m.n + 1))
            assert greedy_with_insertion_order(m, order) == greedy_schedule(m)

    def test_non_permutation_rejected(self, fig1_mset):
        with pytest.raises(ValueError):
            greedy_with_insertion_order(fig1_mset, [1, 1, 2, 3])

    def test_reverse_order_still_spanning(self, fig1_mset):
        s = greedy_with_insertion_order(fig1_mset, [4, 3, 2, 1])
        assert sorted(s.descendants(0)) == [1, 2, 3, 4]

    def test_reverse_order_not_better(self, small_random_msets):
        # ablating the sort can tie but (modulo reversal) not systematically win
        wins = sum(
            greedy_with_insertion_order(m, list(range(m.n, 0, -1))).reception_completion
            < greedy_schedule(m).reception_completion - 1e-9
            for m in small_random_msets
        )
        assert wins <= len(small_random_msets) // 2


class TestRandomAttachment:
    def test_deterministic(self, fig1_mset):
        assert random_attachment(fig1_mset, 5) == random_attachment(fig1_mset, 5)

    def test_spanning(self, two_class_mset):
        s = random_attachment(two_class_mset, 1)
        assert sorted(s.descendants(0)) == list(range(1, two_class_mset.n + 1))


class TestRun:
    def test_full_is_best_ablation(self):
        tables = run(suites=("two-class",), max_n=16)
        (table,) = tables
        rel = {row[0]: float(row[1]) for row in table.rows}
        assert rel["full (greedy+rev)"] == 1.0
        for variant, value in rel.items():
            if variant == "+ local search":
                assert value <= 1.0 + 1e-9
            else:
                assert value >= 1.0 - 1e-9

    def test_random_attachment_is_worst(self):
        (table,) = run(suites=("two-class",), max_n=16)
        rel = {row[0]: float(row[1]) for row in table.rows}
        non_ls = {k: v for k, v in rel.items() if k != "+ local search"}
        assert max(non_ls, key=non_ls.get) == "random attachment"
