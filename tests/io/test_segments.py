"""JSONL segment files: naming, append/iterate, crash-tail tolerance."""

import pytest

from repro.exceptions import ReproError
from repro.io.segments import (
    append_jsonl,
    iter_jsonl,
    list_segments,
    segment_index,
    segment_name,
    write_jsonl,
)


class TestNaming:
    def test_name_round_trips(self):
        assert segment_name(7) == "segment-000007.jsonl"
        assert segment_index(segment_name(7)) == 7

    def test_invalid_index(self):
        with pytest.raises(ReproError, match="segment index"):
            segment_name(0)

    def test_non_segment_name_rejected(self):
        with pytest.raises(ReproError, match="not a segment"):
            segment_index("plans.jsonl")

    def test_list_segments_sorted_and_filtered(self, tmp_path):
        for index in (3, 1, 12):
            (tmp_path / segment_name(index)).write_text("")
        (tmp_path / "notes.txt").write_text("ignore me")
        assert [segment_index(p) for p in list_segments(tmp_path)] == [1, 3, 12]

    def test_list_segments_missing_dir(self, tmp_path):
        assert list_segments(tmp_path / "absent") == []


class TestReadWrite:
    def test_append_then_iterate(self, tmp_path):
        path = tmp_path / segment_name(1)
        assert append_jsonl(path, [{"a": 1}, {"b": 2}]) == 2
        assert append_jsonl(path, [{"c": 3}]) == 1
        records = [record for _, record in iter_jsonl(path)]
        assert records == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_write_truncates(self, tmp_path):
        path = tmp_path / segment_name(1)
        append_jsonl(path, [{"old": True}])
        write_jsonl(path, [{"new": True}])
        assert [r for _, r in iter_jsonl(path)] == [{"new": True}]

    def test_corrupt_line_raises_by_default(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_text('{"ok": 1}\n{broken\n')
        with pytest.raises(ReproError, match="malformed JSON"):
            list(iter_jsonl(path))

    def test_truncate_mode_drops_torn_tail(self, tmp_path):
        # simulate a crash mid-append: last line has no closing brace
        path = tmp_path / segment_name(1)
        path.write_text('{"ok": 1}\n{"ok": 2}\n{"torn": ')
        records = [r for _, r in iter_jsonl(path, on_error="truncate")]
        assert records == [{"ok": 1}, {"ok": 2}]

    def test_truncate_mode_still_raises_on_interior_corruption(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_text('{"ok": 1}\n{broken\n{"ok": 2}\n')
        with pytest.raises(ReproError, match="malformed JSON"):
            list(iter_jsonl(path, on_error="truncate"))

    def test_skip_mode_drops_everything_bad(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_text('{"ok": 1}\n{broken\n[1, 2]\n{"ok": 2}\n')
        records = [r for _, r in iter_jsonl(path, on_error="skip")]
        assert records == [{"ok": 1}, {"ok": 2}]

    def test_non_object_record_rejected(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ReproError, match="expected a JSON object"):
            list(iter_jsonl(path))

    def test_invalid_on_error_value(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_text("")
        with pytest.raises(ReproError, match="on_error"):
            list(iter_jsonl(path, on_error="ignore"))


class TestRepairTornTail:
    def test_drops_a_partial_final_line(self, tmp_path):
        from repro.io.segments import append_jsonl, iter_jsonl, repair_torn_tail

        path = tmp_path / "segment-000001.jsonl"
        append_jsonl(path, [{"a": 1}, {"a": 2}])
        with open(path, "a") as fh:
            fh.write('{"a": 3')  # crash mid-append
        assert repair_torn_tail(path) is True
        assert [r for _n, r in iter_jsonl(path)] == [{"a": 1}, {"a": 2}]
        # appends after the repair stay well-formed
        append_jsonl(path, [{"a": 4}])
        assert [r for _n, r in iter_jsonl(path)] == [{"a": 1}, {"a": 2}, {"a": 4}]

    def test_intact_and_missing_files_untouched(self, tmp_path):
        from repro.io.segments import append_jsonl, repair_torn_tail

        path = tmp_path / "segment-000001.jsonl"
        assert repair_torn_tail(path) is False  # missing: left alone
        append_jsonl(path, [{"a": 1}])
        before = path.read_text()
        assert repair_torn_tail(path) is False
        assert path.read_text() == before
