"""Digest-stamped mmap table snapshots: round trips and fail-closed loads.

The ``repro/table-snapshot-v1`` container must load *zero-copy* (the
table planes alias the mmap) and must reject anything short of a fully
intact file: truncation, bit flips, header tampering and torn writes all
raise instead of warm-starting a service from corrupt tables.  Both DP
engines must snapshot to identical bytes — the snapshot is part of the
bit-identity contract, not an engine detail.
"""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.dp_table import TABLE_SNAPSHOT_FORMAT, OptimalTable
from repro.core.dp_vector import NO_NUMPY_ENV, numpy_available
from repro.exceptions import ReproError
from repro.io.segments import read_snapshot, write_snapshot

TYPES = [(1, 1), (3, 5)]
COUNTS = (5, 4)


def _built(backend="auto"):
    return OptimalTable(TYPES, COUNTS, latency=1, backend=backend).build()


def _instance(counts):
    from repro.workloads.clusters import limited_type_cluster
    from repro.workloads.generator import multicast_from_cluster

    nodes = limited_type_cluster(TYPES, list(counts))
    return multicast_from_cluster(nodes, latency=1, source="slowest")


# ----------------------------------------------------------------------
# the generic container
# ----------------------------------------------------------------------
class TestSnapshotContainer:
    def test_round_trip_sections(self, tmp_path):
        path = tmp_path / "x.snap"
        write_snapshot(
            path,
            {"format": "repro/test-v1", "meta": 7},
            [("a", b"hello"), ("b", b""), ("c", bytes(range(16)))],
        )
        snap = read_snapshot(path, expected_format="repro/test-v1")
        assert snap.section_names() == ["a", "b", "c"]
        assert bytes(snap.view("a")) == b"hello"
        assert bytes(snap.view("b")) == b""
        assert bytes(snap.view("c")) == bytes(range(16))
        assert snap.header["meta"] == 7
        with pytest.raises(ReproError, match="no section"):
            snap.view("missing")
        snap.close()

    def test_sections_are_8_byte_aligned(self, tmp_path):
        path = tmp_path / "x.snap"
        write_snapshot(
            path, {"format": "f"}, [("a", b"xyz"), ("b", b"q" * 9), ("c", b"!")]
        )
        snap = read_snapshot(path)
        for entry in snap.header["sections"]:
            assert entry["offset"] % 8 == 0
        snap.close()

    def test_missing_format_key_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="'format' key"):
            write_snapshot(tmp_path / "x.snap", {}, [("a", b"x")])

    def test_duplicate_section_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="duplicate"):
            write_snapshot(
                tmp_path / "x.snap", {"format": "f"}, [("a", b"x"), ("a", b"y")]
            )

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            read_snapshot(tmp_path / "nope.snap")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "x.snap"
        path.write_bytes(b"")
        with pytest.raises(ReproError, match="empty"):
            read_snapshot(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "x.snap"
        write_snapshot(path, {"format": "f"}, [("a", b"x")])
        with pytest.raises(ReproError, match="has format"):
            read_snapshot(path, expected_format="g")

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "x.snap"
        write_snapshot(path, {"format": "f"}, [("a", b"x" * 64)])
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(ReproError, match="truncated or padded"):
            read_snapshot(path)

    def test_padded_file_rejected(self, tmp_path):
        path = tmp_path / "x.snap"
        write_snapshot(path, {"format": "f"}, [("a", b"x" * 64)])
        path.write_bytes(path.read_bytes() + b"\0" * 8)
        with pytest.raises(ReproError, match="truncated or padded"):
            read_snapshot(path)

    def test_body_bit_flip_rejected(self, tmp_path):
        path = tmp_path / "x.snap"
        write_snapshot(path, {"format": "f"}, [("a", b"x" * 64)])
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(ReproError, match="sha256 mismatch"):
            read_snapshot(path)

    def test_header_tamper_rejected(self, tmp_path):
        path = tmp_path / "x.snap"
        write_snapshot(path, {"format": "f", "n": 1}, [("a", b"x" * 8)])
        data = path.read_bytes()
        path.write_bytes(data.replace(b'"n": 1', b'"n": 2'))
        with pytest.raises(ReproError, match="digest mismatch"):
            read_snapshot(path)

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "x.snap"
        path.write_bytes(b"\x00\x01\x02 garbage\nmore")
        with pytest.raises(ReproError, match="header"):
            read_snapshot(path)


# ----------------------------------------------------------------------
# OptimalTable snapshots
# ----------------------------------------------------------------------
class TestTableSnapshot:
    def test_round_trip_answers_identical(self, tmp_path):
        path = tmp_path / "t.snap"
        built = _built()
        built.save_snapshot(path)
        loaded = OptimalTable.load_snapshot(path)
        assert loaded.entries == built.entries
        for s in range(len(TYPES)):
            for i in range(COUNTS[0] + 1):
                for j in range(COUNTS[1] + 1):
                    assert loaded.completion(s, (i, j)) == built.completion(
                        s, (i, j)
                    )
        mset = _instance(COUNTS)
        assert loaded.schedule_for(mset) == built.schedule_for(mset)

    def test_format_stamp(self, tmp_path):
        path = tmp_path / "t.snap"
        _built().save_snapshot(path)
        snap = read_snapshot(path)
        try:
            assert snap.header["format"] == TABLE_SNAPSHOT_FORMAT
            assert snap.header["endian"] == "little"
        finally:
            snap.close()

    def test_scalar_and_vector_builds_snapshot_identically(self, tmp_path):
        a, b = tmp_path / "scalar.snap", tmp_path / "vector.snap"
        _built(backend="scalar").save_snapshot(a)
        _built(backend="vector").save_snapshot(b)
        assert a.read_bytes() == b.read_bytes()

    @pytest.mark.skipif(not numpy_available(), reason="needs both engines")
    def test_numpy_and_array_engines_snapshot_identically(self, tmp_path):
        a, b = tmp_path / "np.snap", tmp_path / "arr.snap"
        _built(backend="vector").save_snapshot(a)
        env_was = os.environ.get(NO_NUMPY_ENV)
        os.environ[NO_NUMPY_ENV] = "1"
        try:
            _built(backend="vector").save_snapshot(b)
        finally:
            if env_was is None:
                del os.environ[NO_NUMPY_ENV]
            else:  # pragma: no cover - env hygiene
                os.environ[NO_NUMPY_ENV] = env_was
        assert a.read_bytes() == b.read_bytes()

    def test_load_without_numpy(self, tmp_path, monkeypatch):
        path = tmp_path / "t.snap"
        built = _built()
        built.save_snapshot(path)
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        loaded = OptimalTable.load_snapshot(path)
        assert loaded.completion(0, COUNTS) == built.completion(0, COUNTS)
        mset = _instance(COUNTS)
        assert loaded.schedule_for(mset) == built.schedule_for(mset)

    def test_loaded_table_extends(self, tmp_path):
        """Growth off a read-only mmap core matches a fresh build."""
        path = tmp_path / "t.snap"
        _built().save_snapshot(path)
        loaded = OptimalTable.load_snapshot(path)
        bigger = (COUNTS[0] + 2, COUNTS[1] + 3)
        grown = loaded.extended(bigger)
        fresh = OptimalTable(TYPES, bigger, latency=1, backend="scalar").build()
        for s in range(len(TYPES)):
            for i in range(bigger[0] + 1):
                for j in range(bigger[1] + 1):
                    assert grown.completion(s, (i, j)) == fresh.completion(
                        s, (i, j)
                    )

    def test_truncated_table_snapshot_rejected(self, tmp_path):
        path = tmp_path / "t.snap"
        _built().save_snapshot(path)
        data = path.read_bytes()
        for cut in (len(data) // 2, len(data) - 1):
            path.write_bytes(data[:cut])
            with pytest.raises(ReproError):
                OptimalTable.load_snapshot(path)

    def test_metadata_mismatch_rejected(self, tmp_path):
        path = tmp_path / "t.snap"
        write_snapshot(path, {"format": TABLE_SNAPSHOT_FORMAT}, [("a", b"x")])
        with pytest.raises(ReproError, match="table metadata"):
            OptimalTable.load_snapshot(path)


# ----------------------------------------------------------------------
# torn writes: kill -9 mid-save never publishes a corrupt snapshot
# ----------------------------------------------------------------------
WRITER = textwrap.dedent(
    """
    import sys
    from repro.core.dp_table import OptimalTable

    directory = sys.argv[1]
    table = OptimalTable([(1, 1), (3, 5)], (12, 12), latency=1).build()
    print("ready", flush=True)
    i = 0
    while True:
        table.save_snapshot(f"{directory}/table-{i % 4}.snap")
        i += 1
    """
)


def test_kill9_during_save_leaves_only_loadable_snapshots(tmp_path):
    """SIGKILL a process that is saving in a loop; survivors must load.

    The writer publishes via write-to-temp + ``os.replace``, so whatever
    the kill interrupts, every ``*.snap`` present afterwards is either
    absent or complete — a load must never see a half-written table.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.Popen(
        [sys.executable, "-c", WRITER, str(tmp_path)],
        stdout=subprocess.PIPE,
        env=env,
    )
    try:
        assert proc.stdout is not None
        assert proc.stdout.readline().strip() == b"ready"
        # let a few saves land, then kill mid-flight
        import time

        time.sleep(0.25)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait()
    snaps = sorted(tmp_path.glob("*.snap"))
    assert snaps, "the writer never published a snapshot"
    reference = OptimalTable([(1, 1), (3, 5)], (12, 12), latency=1).build()
    for snap_path in snaps:
        loaded = OptimalTable.load_snapshot(snap_path)
        assert loaded.completion(0, (12, 12)) == reference.completion(0, (12, 12))
    # torn temp files may remain, but they are never *.snap
    for leftover in tmp_path.iterdir():
        if leftover.suffix != ".snap":
            assert ".tmp-" in leftover.name
