"""Unit tests for JSON serialization."""

import json

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.schedule import Schedule
from repro.exceptions import ReproError
from repro.io.serialization import (
    load_multicast,
    load_schedule,
    multicast_from_dict,
    multicast_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
)


class TestMulticastRoundtrip:
    def test_roundtrip(self, fig1_mset):
        assert multicast_from_dict(multicast_to_dict(fig1_mset)) == fig1_mset

    def test_format_tag_present(self, fig1_mset):
        assert multicast_to_dict(fig1_mset)["format"] == "repro/multicast-v1"

    def test_wrong_format_rejected(self, fig1_mset):
        data = multicast_to_dict(fig1_mset)
        data["format"] = "other"
        with pytest.raises(ReproError, match="not a"):
            multicast_from_dict(data)

    def test_missing_field_rejected(self, fig1_mset):
        data = multicast_to_dict(fig1_mset)
        del data["source"]["send"]
        with pytest.raises(ReproError, match="missing field"):
            multicast_from_dict(data)

    def test_json_serializable(self, fig1_mset):
        json.dumps(multicast_to_dict(fig1_mset))


class TestScheduleRoundtrip:
    def test_roundtrip(self, fig1_mset):
        s = greedy_schedule(fig1_mset)
        assert schedule_from_dict(schedule_to_dict(s)) == s

    def test_slots_preserved(self, fig1_mset):
        gapped = Schedule(fig1_mset, {0: [(1, 1), (2, 4)], 1: [(3, 2), (4, 3)]})
        back = schedule_from_dict(schedule_to_dict(gapped))
        assert back.children_of(0) == ((1, 1), (2, 4))

    def test_completion_preserved(self, small_random_msets):
        for m in small_random_msets:
            s = greedy_schedule(m)
            back = schedule_from_dict(schedule_to_dict(s))
            assert back.reception_completion == s.reception_completion

    def test_wrong_format_rejected(self, fig1_mset):
        data = schedule_to_dict(greedy_schedule(fig1_mset))
        data["format"] = "repro/multicast-v1"
        with pytest.raises(ReproError):
            schedule_from_dict(data)


class TestFiles:
    def test_save_and_load_multicast(self, fig1_mset, tmp_path):
        path = save_json(fig1_mset, tmp_path / "m.json")
        assert load_multicast(path) == fig1_mset

    def test_save_and_load_schedule(self, fig1_mset, tmp_path):
        s = greedy_schedule(fig1_mset)
        path = save_json(s, tmp_path / "s.json")
        assert load_schedule(path) == s

    def test_save_and_load_multi_group(self, tmp_path):
        from repro.io import multi_group_from_dict
        from repro.workloads import multi_group_workload

        mg = multi_group_workload(groups=2, n=3, seed=0, latency=1)
        path = save_json(mg, tmp_path / "mg.json")
        assert multi_group_from_dict(json.loads(path.read_text())) == mg

    def test_save_unknown_type_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            save_json({"a": 1}, tmp_path / "x.json")

    def test_file_is_valid_json(self, fig1_mset, tmp_path):
        path = save_json(fig1_mset, tmp_path / "m.json")
        parsed = json.loads(path.read_text())
        assert parsed["latency"] == 1
