"""Unit tests for instance generation from clusters."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.clusters import bounded_ratio_cluster, two_class_cluster
from repro.workloads.generator import multicast_from_cluster, random_subset_multicast


@pytest.fixture
def cluster():
    return bounded_ratio_cluster(10, seed=1)


class TestMulticastFromCluster:
    def test_broadcast_size(self, cluster):
        m = multicast_from_cluster(cluster)
        assert m.n == 9

    def test_slowest_source_policy(self, cluster):
        m = multicast_from_cluster(cluster, source="slowest")
        assert m.source.send_overhead == max(n.send_overhead for n in cluster)

    def test_fastest_source_policy(self, cluster):
        m = multicast_from_cluster(cluster, source="fastest")
        assert m.source.send_overhead == min(n.send_overhead for n in cluster)

    def test_median_source_policy(self, cluster):
        m = multicast_from_cluster(cluster, source="median")
        sends = sorted(n.send_overhead for n in cluster)
        assert m.source.send_overhead == sends[len(sends) // 2]

    def test_first_source_policy(self, cluster):
        m = multicast_from_cluster(cluster, source="first")
        assert m.source == cluster[0]

    def test_random_source_deterministic(self, cluster):
        a = multicast_from_cluster(cluster, source="random", seed=5)
        b = multicast_from_cluster(cluster, source="random", seed=5)
        assert a.source == b.source

    def test_unknown_policy_rejected(self, cluster):
        with pytest.raises(WorkloadError):
            multicast_from_cluster(cluster, source="psychic")

    def test_tiny_cluster_rejected(self):
        with pytest.raises(WorkloadError):
            multicast_from_cluster(two_class_cluster(1, 0))

    def test_latency_propagates(self, cluster):
        assert multicast_from_cluster(cluster, latency=7).latency == 7


class TestRandomSubset:
    def test_subset_size(self, cluster):
        m = random_subset_multicast(cluster, 4, seed=2)
        assert m.n == 4

    def test_source_not_among_destinations(self, cluster):
        m = random_subset_multicast(cluster, 5, source="slowest", seed=3)
        assert all(d.name != m.source.name for d in m.destinations)

    def test_deterministic(self, cluster):
        assert random_subset_multicast(cluster, 4, seed=9) == random_subset_multicast(
            cluster, 4, seed=9
        )

    def test_bounds_checked(self, cluster):
        with pytest.raises(WorkloadError):
            random_subset_multicast(cluster, 0)
        with pytest.raises(WorkloadError):
            random_subset_multicast(cluster, len(cluster))
