"""Unit tests for named experiment suites."""

import pytest

from repro.workloads.suites import SUITES, instances, suite


class TestSuites:
    def test_all_names_resolvable(self):
        for name in SUITES:
            assert suite(name).name == name

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            suite("imaginary")

    def test_instances_deterministic(self):
        a = [(n, s, m) for n, s, m in instances("bounded-ratio")]
        b = [(n, s, m) for n, s, m in instances("bounded-ratio")]
        assert a == b

    def test_sizes_match_declared(self):
        s = suite("two-class")
        produced = {n for n, _seed, _m in s.instances()}
        assert produced == set(s.sizes)

    def test_instance_n_matches_label(self):
        for name in SUITES:
            for n, _seed, mset in suite(name).instances():
                assert mset.n == n, f"suite {name}"

    def test_type_suites_have_declared_k(self):
        for n, _seed, m in instances("two-type"):
            assert m.num_types == 2
        for n, _seed, m in instances("three-type"):
            assert m.num_types == 3

    def test_power_of_two_suite_satisfies_lemma3(self):
        from repro.core.transform import uniform_ratio

        for _n, _seed, m in instances("power-of-two"):
            assert uniform_ratio(m) == 2
            for nd in m.nodes:
                send = int(nd.send_overhead)
                assert send & (send - 1) == 0

    def test_all_instances_correlated(self):
        for name in SUITES:
            for _n, _seed, m in suite(name).instances():
                assert m.correlated, f"suite {name}"

    def test_descriptions_present(self):
        assert all(s.description for s in SUITES.values())
