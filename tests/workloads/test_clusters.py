"""Unit tests for cluster generators."""

import pytest

from repro.core.multicast import MulticastSet
from repro.exceptions import WorkloadError
from repro.workloads.clusters import (
    bounded_ratio_cluster,
    figure1_nodes,
    limited_type_cluster,
    pareto_cluster,
    power_of_two_cluster,
    two_class_cluster,
    uniform_ratio_cluster,
)


def correlated(nodes) -> bool:
    try:
        MulticastSet(nodes[0], nodes[1:], 1)
        return True
    except Exception:
        return False


class TestTwoClass:
    def test_counts(self):
        nodes = two_class_cluster(3, 2)
        assert len(nodes) == 5
        assert sum(1 for n in nodes if n.type_key == (1, 1)) == 3

    def test_figure1_nodes(self):
        nodes = figure1_nodes()
        assert nodes[0].type_key == (2, 3)  # slow source first
        assert [n.type_key for n in nodes[1:4]] == [(1, 1)] * 3

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            two_class_cluster(0, 0)

    def test_inverted_classes_rejected(self):
        with pytest.raises(WorkloadError):
            two_class_cluster(1, 1, fast=(3, 3), slow=(1, 1))


class TestBoundedRatio:
    def test_deterministic(self):
        assert bounded_ratio_cluster(10, 42) == bounded_ratio_cluster(10, 42)

    def test_different_seeds_differ(self):
        assert bounded_ratio_cluster(10, 1) != bounded_ratio_cluster(10, 2)

    def test_correlation_holds(self):
        for seed in range(10):
            assert correlated(bounded_ratio_cluster(12, seed))

    def test_ratios_in_band(self):
        # default send range is large enough that rounding keeps ratios
        # within ~[1.0, 2.0]
        for seed in range(10):
            for node in bounded_ratio_cluster(20, seed):
                assert 1.0 <= node.ratio <= 2.0

    def test_bad_params_rejected(self):
        with pytest.raises(WorkloadError):
            bounded_ratio_cluster(0, 0)
        with pytest.raises(WorkloadError):
            bounded_ratio_cluster(5, 0, send_range=(10, 2))
        with pytest.raises(WorkloadError):
            bounded_ratio_cluster(5, 0, ratio_range=(2.0, 1.0))


class TestLimitedTypes:
    def test_grouped_output(self):
        nodes = limited_type_cluster([(1, 1), (2, 3)], [2, 3])
        assert [n.type_key for n in nodes] == [(1, 1)] * 2 + [(2, 3)] * 3

    def test_correlation_validated(self):
        with pytest.raises(WorkloadError, match="correlation"):
            limited_type_cluster([(1, 5), (2, 3)], [1, 1])

    def test_equal_sends_rejected(self):
        with pytest.raises(WorkloadError, match="correlation"):
            limited_type_cluster([(1, 1), (1, 2)], [1, 1])

    def test_misaligned_counts_rejected(self):
        with pytest.raises(WorkloadError):
            limited_type_cluster([(1, 1)], [1, 2])

    def test_zero_total_rejected(self):
        with pytest.raises(WorkloadError):
            limited_type_cluster([(1, 1)], [0])


class TestUniformAndPowerOfTwo:
    def test_uniform_ratio_exact(self):
        for node in uniform_ratio_cluster(10, 3, ratio=3):
            assert node.receive_overhead == 3 * node.send_overhead

    def test_uniform_bad_ratio_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_ratio_cluster(5, 0, ratio=0)

    def test_power_of_two_sends(self):
        for node in power_of_two_cluster(12, 5, ratio=2):
            send = node.send_overhead
            assert send & (send - 1) == 0  # power of two
            assert node.receive_overhead == 2 * send

    def test_power_of_two_exponent_capped(self):
        for node in power_of_two_cluster(30, 1, ratio=1, max_exponent=2):
            assert node.send_overhead <= 4


class TestPareto:
    def test_heavy_tail_present(self):
        nodes = pareto_cluster(200, 0)
        sends = sorted(n.send_overhead for n in nodes)
        assert sends[-1] >= 4 * sends[len(sends) // 2]  # tail >> median

    def test_correlation_holds(self):
        for seed in range(5):
            assert correlated(pareto_cluster(30, seed))

    def test_cap_respected(self):
        for node in pareto_cluster(100, 2, cap=50):
            assert node.send_overhead <= 50

    def test_bad_alpha_rejected(self):
        with pytest.raises(WorkloadError):
            pareto_cluster(5, 0, alpha=0)
