"""Solve deadlines and graceful degradation: bounded answers, never hangs."""

import time
import uuid

import pytest

from repro import faults
from repro.api import (
    PlanRequest,
    SolverCapabilities,
    SolverOutput,
    register_solver,
    unregister_solver,
)
from repro.api.planner import _plan_standalone
from repro.core.greedy import greedy_schedule
from repro.exceptions import ReproError
from repro.faults import FaultPlan, FaultSpec
from repro.service.client import InProcessClient, ServiceClient
from repro.service.server import PlanningService


@pytest.fixture()
def slow_solver():
    """A registered solver that always overruns a sub-100ms deadline."""
    name = f"sluggish-{uuid.uuid4().hex[:8]}"

    @register_solver(name, "test: always slower than the solve deadline",
                     capabilities=SolverCapabilities(max_n=0))
    def _sluggish(mset, **options):
        time.sleep(0.4)
        return SolverOutput(schedule=greedy_schedule(mset))

    yield name
    unregister_solver(name)


class TestConstruction:
    @pytest.mark.parametrize("deadline", [0.0, -1.0])
    def test_rejects_non_positive_deadline(self, deadline):
        with pytest.raises(ReproError, match="solve_deadline_s"):
            PlanningService(solve_deadline_s=deadline)

    def test_no_deadline_by_default(self):
        assert PlanningService().solve_deadline_s is None


class TestDegradedServing:
    def test_overrun_solve_degrades_with_bounds_sandwich(
        self, fig1_mset, slow_solver
    ):
        service = PlanningService(num_shards=1, solve_deadline_s=0.05)
        service.start_background()
        client = InProcessClient(service)
        try:
            served = client.plan(fig1_mset, solver=slow_solver)
            assert served.degraded
            assert served.tier == "degraded"
            result = served.result
            # the fallback is the paper's fast greedy plan, bounds attached
            assert result.solver == "greedy+reversal"
            assert result.bounds is not None
            assert result.bounds.opt_value <= result.value + 1e-9
            assert result.provenance["degraded"] is True
            assert result.provenance["requested_solver"] == slow_solver
            assert result.provenance["deadline_s"] == 0.05
            fallback = _plan_standalone(
                PlanRequest(
                    instance=fig1_mset,
                    solver="greedy+reversal",
                    include_bounds=True,
                )
            )
            assert result.value == fallback.value
            assert result.schedule == fallback.schedule
            metrics = service.describe_metrics()
            assert metrics["timeouts"] == 1
            assert metrics["degraded_served"] == 1
        finally:
            service.stop()

    def test_degraded_answers_are_never_cached(self, fig1_mset, slow_solver):
        service = PlanningService(num_shards=1, solve_deadline_s=0.05)
        service.start_background()
        client = InProcessClient(service)
        try:
            assert client.plan(fig1_mset, solver=slow_solver).degraded
            # same request again: re-solved (and re-degraded), not served
            # from the memory/store tiers
            again = client.plan(fig1_mset, solver=slow_solver)
            assert again.degraded
            assert service.describe_metrics()["degraded_served"] == 2
        finally:
            service.stop()

    def test_fast_requests_still_serve_exactly(self, fig1_mset, slow_solver):
        service = PlanningService(num_shards=1, solve_deadline_s=0.5)
        service.start_background()
        client = InProcessClient(service)
        try:
            served = client.plan(fig1_mset, solver="greedy+reversal")
            assert not served.degraded
            assert served.tier == "solve"
            direct = _plan_standalone(
                PlanRequest(instance=fig1_mset, solver="greedy+reversal")
            )
            assert served.result.value == direct.value
            assert served.result.schedule == direct.schedule
            assert "degraded_served" not in service.describe_metrics()
        finally:
            service.stop()


class TestDegradedOnTheWire:
    def test_tcp_response_carries_the_degraded_flag(self, fig1_mset):
        service = PlanningService(num_shards=1, solve_deadline_s=0.1)
        host, port = service.start_background(tcp=True)
        client = ServiceClient(host, port, timeout=5.0)
        storm = FaultPlan([FaultSpec("solver.delay", delay_s=60.0, count=1)])
        try:
            with faults.inject(storm):
                served = client.plan(fig1_mset, solver="dp")
            assert served.degraded
            assert served.tier == "degraded"
            assert served.result.provenance["degraded"] is True
            assert served.result.bounds is not None
            assert served.result.bounds.opt_value <= served.result.value + 1e-9
            # the injected stall is charged against the deadline, so the
            # call returns in deadline time, not stall time
            clean = client.plan(fig1_mset, solver="dp")
            assert not clean.degraded
            assert clean.result.exact
        finally:
            client.close()
            service.stop()

    def test_injected_stall_respects_remaining_deadline(self, fig1_mset):
        service = PlanningService(num_shards=1, solve_deadline_s=0.2)
        service.start_background()
        client = InProcessClient(service)
        try:
            started = time.monotonic()
            with faults.inject(
                FaultPlan([FaultSpec("solver.delay", delay_s=60.0, count=1)])
            ):
                served = client.plan(fig1_mset, solver="greedy")
            elapsed = time.monotonic() - started
            assert served.degraded
            assert elapsed < 5.0  # the 60s stall was clamped to the budget
        finally:
            service.stop()
