"""repro.faults: deterministic plans, hook sites, durability effects."""

import json

import pytest

from repro import faults
from repro.api import PlanRequest, instance_fingerprint
from repro.api.planner import _plan_standalone
from repro.api.tables import TableCacheConfig
from repro.exceptions import ReproError, ServiceRetryableError
from repro.faults import FaultPlan, FaultSpec
from repro.io.segments import list_segments
from repro.service import PlanStore
from repro.service.shard import ShardRouter


class TestFaultSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            FaultSpec("client.drop_everything")

    def test_rate_bounds(self):
        with pytest.raises(ReproError, match="rate"):
            FaultSpec("solver.error", rate=1.5)
        with pytest.raises(ReproError, match="rate"):
            FaultSpec("solver.error", rate=-0.1)

    def test_count_after_delay_bounds(self):
        with pytest.raises(ReproError, match="count"):
            FaultSpec("solver.error", count=0)
        with pytest.raises(ReproError, match="after"):
            FaultSpec("solver.error", after=-1)
        with pytest.raises(ReproError, match="delay_s"):
            FaultSpec("solver.delay", delay_s=-0.5)

    def test_plan_rejects_duplicates_and_non_specs(self):
        spec = FaultSpec("solver.error")
        with pytest.raises(ReproError, match="duplicate"):
            FaultPlan([spec, FaultSpec("solver.error", rate=0.5)])
        with pytest.raises(ReproError, match="must be FaultSpec"):
            FaultPlan(["solver.error"])


class TestFaultPlanStream:
    def test_count_and_after_semantics(self):
        plan = FaultPlan([FaultSpec("solver.error", count=2, after=1)])
        decisions = [plan.fire("solver.error") is not None for _ in range(6)]
        # first consultation skipped, next two fire, cap reached after that
        assert decisions == [False, True, True, False, False, False]
        assert plan.fired() == {"solver.error": 2}
        assert plan.total_fired() == 2

    def test_unknown_or_unplanned_site_never_fires(self):
        plan = FaultPlan([FaultSpec("solver.error")])
        assert plan.fire("worker.kill") is None
        assert plan.fired() == {"solver.error": 0}

    def test_seeded_stream_replays_after_reset(self):
        plan = FaultPlan([FaultSpec("solver.error", rate=0.4, count=50)], seed=7)
        first = [plan.fire("solver.error") is not None for _ in range(100)]
        plan.reset()
        second = [plan.fire("solver.error") is not None for _ in range(100)]
        assert first == second
        assert any(first) and not all(first)  # probabilistic, not degenerate

    def test_distinct_seeds_give_distinct_streams(self):
        def stream(seed):
            plan = FaultPlan([FaultSpec("solver.error", rate=0.5)], seed=seed)
            return [plan.fire("solver.error") is not None for _ in range(64)]

        assert stream(1) != stream(2)


class TestInjection:
    def test_disabled_by_default(self):
        assert faults.ACTIVE is None
        assert faults.fire("solver.error") is None

    def test_inject_installs_and_restores(self):
        plan = FaultPlan([FaultSpec("solver.error")])
        with faults.inject(plan) as active:
            assert active is plan
            assert faults.ACTIVE is plan
            assert faults.fire("solver.error") is not None
        assert faults.ACTIVE is None

    def test_inject_restores_on_exception(self):
        plan = FaultPlan([FaultSpec("solver.error")])
        with pytest.raises(RuntimeError):
            with faults.inject(plan):
                raise RuntimeError("boom")
        assert faults.ACTIVE is None

    def test_plans_do_not_nest(self):
        plan = FaultPlan([FaultSpec("solver.error")], name="outer")
        with faults.inject(plan):
            with pytest.raises(ReproError, match="do not nest"):
                with faults.inject(FaultPlan([FaultSpec("worker.kill")])):
                    pass  # pragma: no cover
        assert faults.ACTIVE is None


class TestFaultEffects:
    def test_corrupt_file_flips_midfile_bytes(self, tmp_path):
        target = tmp_path / "blob.bin"
        original = bytes(range(64))
        target.write_bytes(original)
        faults.corrupt_file(target)
        tampered = target.read_bytes()
        assert len(tampered) == len(original)
        assert tampered != original
        assert tampered[:16] == original[:16]  # header untouched

    def test_torn_append_leaves_partial_line(self, tmp_path):
        target = tmp_path / "segment.jsonl"
        target.write_text('{"ok": 1}\n')
        faults.torn_append(target, '{"ok": 2}\n')
        text = target.read_text()
        assert not text.endswith("\n")
        assert text.startswith('{"ok": 1}\n')
        with pytest.raises(ReproError, match="fraction"):
            faults.torn_append(target, "x", fraction=1.5)


def _solved(mset, solver="greedy"):
    request = PlanRequest(instance=mset, solver=solver)
    result = _plan_standalone(request)
    key = (instance_fingerprint(mset), result.solver, "{}", False)
    return key, result


class TestStoreTornAppendSite:
    def test_torn_append_surfaces_retryable_and_store_recovers(
        self, tmp_path, fig1_mset, homogeneous_mset
    ):
        store = PlanStore(tmp_path)
        key1, result1 = _solved(fig1_mset)
        key2, result2 = _solved(homogeneous_mset)
        plan = FaultPlan([FaultSpec("store.torn_append", count=1)])
        with faults.inject(plan):
            with pytest.raises(ServiceRetryableError, match="torn mid-write"):
                store.put(key1, result1)
            assert store.get(key1) is None  # failed append not indexed
            [segment] = list_segments(tmp_path)
            assert not segment.read_text().endswith("\n")  # torn residue
            # the next append repairs the torn tail before writing
            store.put(key2, result2)
        lines = segment.read_text().splitlines()
        assert all(json.loads(line) for line in lines)
        assert store.get(key2).schedule == result2.schedule
        # a restarted store loads clean and verifies
        reopened = PlanStore(tmp_path)
        assert reopened.verify() >= 1
        assert reopened.get(key2).value == result2.value

    def test_torn_tail_alone_repairs_on_reload(self, tmp_path, fig1_mset):
        store = PlanStore(tmp_path)
        key, result = _solved(fig1_mset)
        with faults.inject(FaultPlan([FaultSpec("store.torn_append", count=1)])):
            with pytest.raises(ServiceRetryableError):
                store.put(key, result)
        # crash here: no further appends — a fresh load must still verify
        reopened = PlanStore(tmp_path)
        reopened.verify()
        assert reopened.get(key) is None


class TestSnapshotCorruptSite:
    def test_corrupted_snapshot_fails_closed_and_rebuilds(self, tmp_path):
        config = TableCacheConfig(snapshot_dir=tmp_path)
        router = ShardRouter(1, mode="thread", table_config=config)
        try:
            request = PlanRequest(
                instance=(mset := _fig1_like()), solver="dp"
            )
            with faults.inject(FaultPlan([FaultSpec("snapshot.corrupt", count=1)])):
                tampered = router.solve_sync(request)
            assert router.tables.stats()["snapshot_saves"] == 1
        finally:
            router.shutdown()
        # a restarted router must reject the tampered snapshot and rebuild
        fresh = ShardRouter(1, mode="thread", table_config=config)
        try:
            again = fresh.solve_sync(request)
            stats = fresh.tables.stats()
            assert stats["snapshot_rejects"] == 1
            assert stats["attaches"] == 0
            assert stats["builds"] == 1
            assert again.value == tampered.value
            assert again.schedule == tampered.schedule
        finally:
            fresh.shutdown()


def _fig1_like():
    from repro.core.multicast import MulticastSet

    return MulticastSet.from_overheads(
        source=(2, 3), destinations=[(1, 1)] * 3 + [(2, 3)], latency=1
    )
