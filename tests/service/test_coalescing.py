"""Duplicate-solve coalescing under concurrent identical submits.

Identical requests always hash to the same shard, whose worker re-checks
the cache right before solving — so a burst of identical submits must
produce exactly one real solve, with every response bit-identical to the
first.  Covered here directly over both client surfaces (in-process and
TCP) and for the submit-while-solving race.
"""

import threading
import time
import uuid

import pytest

from repro.api import SolverCapabilities, SolverOutput, register_solver, unregister_solver
from repro.conformance.invariants import canonical_result_payload
from repro.core.greedy import greedy_schedule
from repro.service.client import InProcessClient, ServiceClient
from repro.service.server import PlanningService


@pytest.fixture
def sleepy_solver():
    """A deliberately slow solver so duplicates really race the first solve."""
    name = f"sleepy-{uuid.uuid4().hex[:8]}"

    @register_solver(name, "test: slow greedy",
                     capabilities=SolverCapabilities(max_n=0))
    def _sleepy(mset, **options):
        time.sleep(0.25)
        return SolverOutput(schedule=greedy_schedule(mset))

    yield name
    unregister_solver(name)


def _submit_concurrently(submit, count):
    """Run ``submit(i)`` from ``count`` threads; returns (plans, errors)."""
    plans, errors = [], []
    barrier = threading.Barrier(count)

    def run(i):
        try:
            barrier.wait(timeout=10)
            plans.append(submit(i))
        except Exception as exc:  # pragma: no cover - surfaced by assertion
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    return plans, errors


class TestInProcessCoalescing:
    def test_identical_submits_solve_once_and_answer_identically(
        self, fig1_mset, sleepy_solver
    ):
        with PlanningService(num_shards=2, worker_mode="thread") as service:
            def submit(i):
                client = InProcessClient(service, client_id=f"client-{i}")
                return client.plan(fig1_mset, solver=sleepy_solver)

            plans, errors = _submit_concurrently(submit, 6)
            assert not errors
            assert len(plans) == 6
            assert service.metrics.get("solves") == 1
            assert service.metrics.get("coalesced") == 5
            payloads = {canonical_result_payload(p.result) for p in plans}
            assert len(payloads) == 1, "coalesced answers must be bit-identical"

    def test_same_client_id_duplicates_also_coalesce(self, fig1_mset, sleepy_solver):
        """Fair-queue sub-queues are per client; coalescing must not be."""
        with PlanningService(num_shards=1, worker_mode="thread") as service:
            client = InProcessClient(service, client_id="burst")
            plans, errors = _submit_concurrently(
                lambda i: client.plan(fig1_mset, solver=sleepy_solver), 4
            )
            assert not errors
            assert service.metrics.get("solves") == 1
            assert service.metrics.get("coalesced") == 3
            assert len({p.result.value for p in plans}) == 1

    def test_distinct_requests_do_not_coalesce(self, fig1_mset, small_random_msets):
        with PlanningService(num_shards=2, worker_mode="thread") as service:
            client = InProcessClient(service)
            for mset in small_random_msets:
                client.plan(mset, solver="greedy")
            assert service.metrics.get("solves") == len(small_random_msets)
            assert service.metrics.get("coalesced") == 0


class TestTcpCoalescing:
    def test_identical_wire_submits_solve_once(self, fig1_mset, sleepy_solver):
        service = PlanningService(num_shards=2, worker_mode="thread")
        host, port = service.start_background(tcp=True)
        try:
            def submit(i):
                with ServiceClient(host, port, client_id=f"wire-{i}",
                                   timeout=30.0) as client:
                    return client.plan(fig1_mset, solver=sleepy_solver)

            plans, errors = _submit_concurrently(submit, 4)
            assert not errors
            assert service.metrics.get("solves") == 1
            assert service.metrics.get("coalesced") == 3
            payloads = {canonical_result_payload(p.result) for p in plans}
            assert len(payloads) == 1
        finally:
            service.stop()
