"""PlanStore: persistence, rotation, compaction, crash tolerance, tiering."""

import pytest

from repro.api import Planner, PlanRequest, instance_fingerprint
from repro.api.planner import _plan_standalone
from repro.exceptions import ReproError
from repro.io.segments import list_segments
from repro.io.serialization import plan_result_to_dict
from repro.service import PlanStore
from repro.service.store import PLAN_STORE_FORMAT, key_string


def _solved(mset, solver="greedy"):
    request = PlanRequest(instance=mset, solver=solver)
    result = _plan_standalone(request)
    key = (instance_fingerprint(mset), result.solver, "{}", False)
    return key, result


class TestRoundTrip:
    def test_put_get(self, tmp_path, fig1_mset):
        store = PlanStore(tmp_path)
        key, result = _solved(fig1_mset)
        assert store.get(key) is None
        store.put(key, result)
        loaded = store.get(key)
        assert loaded.value == result.value
        assert loaded.schedule == result.schedule
        assert loaded.solver == result.solver

    def test_survives_reopen(self, tmp_path, fig1_mset):
        key, result = _solved(fig1_mset)
        PlanStore(tmp_path).put(key, result)
        reopened = PlanStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.get(key).schedule == result.schedule

    def test_records_use_plan_result_v1(self, tmp_path, fig1_mset):
        """The acceptance-criteria format check: raw records are repro.io."""
        import json

        key, result = _solved(fig1_mset)
        store = PlanStore(tmp_path)
        store.put(key, result)
        [segment] = list_segments(tmp_path)
        record = json.loads(segment.read_text().splitlines()[0])
        assert record["format"] == PLAN_STORE_FORMAT
        assert record["key"] == key_string(key)
        assert record["result"]["format"] == "repro/plan-result-v1"
        assert record["result"] == plan_result_to_dict(result)

    def test_identical_put_is_deduplicated(self, tmp_path, fig1_mset):
        key, result = _solved(fig1_mset)
        store = PlanStore(tmp_path)
        store.put(key, result)
        store.put(key, result)  # identical payload: no second record
        assert store.stats().total_records == 1


class TestSegments:
    def test_rotation_at_max_records(self, tmp_path, small_random_msets):
        store = PlanStore(tmp_path, segment_max_records=2)
        for mset in small_random_msets:  # 6 instances -> 3 full segments
            store.put(*_solved(mset))
        assert store.stats().segments == 3
        assert len(store) == len(small_random_msets)

    def test_reopen_continues_active_segment(self, tmp_path, small_random_msets):
        store = PlanStore(tmp_path, segment_max_records=4)
        store.put(*_solved(small_random_msets[0]))
        reopened = PlanStore(tmp_path, segment_max_records=4)
        for mset in small_random_msets[1:3]:
            reopened.put(*_solved(mset))
        # 3 records still fit the first (active) segment
        assert reopened.stats().segments == 1

    def test_torn_tail_is_dropped_on_load(self, tmp_path, small_random_msets):
        store = PlanStore(tmp_path)
        for mset in small_random_msets[:3]:
            store.put(*_solved(mset))
        [segment] = list_segments(tmp_path)
        with open(segment, "a") as fh:
            fh.write('{"format": "repro/plan-store-v1", "key": "torn')  # crash
        reopened = PlanStore(tmp_path)
        assert len(reopened) == 3

    def test_append_after_torn_tail_does_not_corrupt(
        self, tmp_path, fig1_mset, small_random_msets
    ):
        """Regression: a reopened store must physically remove a torn tail
        before appending, or the new record glues onto the fragment and the
        store becomes unloadable on the *next* open."""
        store = PlanStore(tmp_path)
        store.put(*_solved(fig1_mset))
        [segment] = list_segments(tmp_path)
        with open(segment, "a") as fh:
            fh.write('{"format": "repro/plan-store-v1", "key": "torn')  # crash
        reopened = PlanStore(tmp_path)
        reopened.put(*_solved(small_random_msets[0]))  # append after crash
        third = PlanStore(tmp_path)  # must still load cleanly
        assert len(third) == 2
        assert third.verify() == 2

    def test_wrong_format_record_rejected(self, tmp_path):
        (tmp_path / "segment-000001.jsonl").write_text(
            '{"format": "something-else", "key": "k", "result": {}}\n'
        )
        with pytest.raises(ReproError, match="plan-store-v1"):
            PlanStore(tmp_path)

    def test_record_missing_fields_rejected_as_repro_error(self, tmp_path):
        # right format stamp, but no key/result: must be ReproError with
        # segment:line context, never a raw KeyError
        (tmp_path / "segment-000001.jsonl").write_text(
            '{"format": "repro/plan-store-v1"}\n'
        )
        with pytest.raises(ReproError, match="segment-000001.jsonl:1"):
            PlanStore(tmp_path)

    def test_invalid_segment_max_records(self, tmp_path):
        with pytest.raises(ReproError, match="segment_max_records"):
            PlanStore(tmp_path, segment_max_records=0)


class TestCompaction:
    def test_compact_reclaims_superseded_records(self, tmp_path, fig1_mset):
        store = PlanStore(tmp_path, segment_max_records=2)
        key, result = _solved(fig1_mset)
        store.put(key, result)
        for elapsed in (0.25, 0.5, 0.75):  # supersede with varying payloads
            import dataclasses

            store.put(key, dataclasses.replace(result, elapsed_s=elapsed))
        assert store.stats().total_records == 4
        reclaimed = store.compact()
        assert reclaimed == 3
        stats = store.stats()
        assert (stats.live_keys, stats.total_records, stats.segments) == (1, 1, 1)
        assert store.get(key).elapsed_s == 0.75  # newest record won

    def test_compacted_store_reloads(self, tmp_path, small_random_msets):
        store = PlanStore(tmp_path, segment_max_records=2)
        solved = [_solved(mset) for mset in small_random_msets]
        for key, result in solved:
            store.put(key, result)
        store.compact()
        reopened = PlanStore(tmp_path, segment_max_records=2)
        assert len(reopened) == len(solved)
        for key, result in solved:
            assert reopened.get(key).schedule == result.schedule

    def test_compact_empty_store(self, tmp_path):
        store = PlanStore(tmp_path)
        assert store.compact() == 0
        assert len(store) == 0

    def test_verify_counts_and_round_trips(self, tmp_path, small_random_msets):
        store = PlanStore(tmp_path)
        for mset in small_random_msets:
            store.put(*_solved(mset))
        assert store.verify() == len(small_random_msets)

    def test_verify_rejects_corruption(self, tmp_path, fig1_mset):
        store = PlanStore(tmp_path)
        store.put(*_solved(fig1_mset))
        [segment] = list_segments(tmp_path)
        segment.write_text(
            segment.read_text().replace(
                '"format": "repro/plan-result-v1"', '"format": "repro/plan-result-v9"'
            )
        )
        with pytest.raises(ReproError):
            PlanStore(tmp_path).verify()


class TestAsCacheTier:
    def test_planner_integration(self, tmp_path, fig1_mset):
        store = PlanStore(tmp_path)
        planner = Planner(cache_tiers=[store])
        first = planner.plan(fig1_mset, solver="dp")
        assert not first.cache_hit
        assert len(store) == 1  # write-through on solve

        # a brand-new planner (cold LRU) hits the persistent tier
        fresh = Planner(cache_tiers=[PlanStore(tmp_path)])
        second = fresh.plan(fig1_mset, solver="dp")
        assert second.cache_hit
        assert second.schedule == first.schedule
        info = fresh.cache_info()
        assert (info.hits, info.tier_hits, info.misses) == (0, 1, 0)

        # the tier hit was promoted into the LRU: third lookup is in-memory
        third = fresh.plan(fig1_mset, solver="dp")
        assert third.cache_hit
        assert fresh.cache_info().hits == 1
