"""RetryPolicy + ServiceClient resilience: backoff, reconnect, recovery."""

import time
import uuid

import pytest

from repro import faults
from repro.exceptions import ReproError, ServiceError, ServiceRetryableError
from repro.faults import FaultPlan, FaultSpec
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.server import PlanningService


class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"attempts": 0}, "attempts"),
            ({"base_delay_s": -0.1}, "base_delay_s"),
            ({"multiplier": 0.5}, "multiplier"),
            ({"base_delay_s": 1.0, "max_delay_s": 0.5}, "max_delay_s"),
            ({"jitter": 1.5}, "jitter"),
            ({"deadline_s": 0.0}, "deadline_s"),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs, match):
        with pytest.raises(ReproError, match=match):
            RetryPolicy(**kwargs)


class TestBackoffSchedule:
    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(
            attempts=5, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_is_seeded_and_bounded(self):
        def schedule(seed):
            policy = RetryPolicy(
                attempts=6, base_delay_s=0.1, max_delay_s=1.0, jitter=0.5, seed=seed
            )
            return list(policy.delays())

        assert schedule(3) == schedule(3)  # deterministic replay
        assert schedule(3) != schedule(4)  # but seed-dependent
        plain = RetryPolicy(
            attempts=6, base_delay_s=0.1, max_delay_s=1.0, jitter=0.0
        )
        for jittered, base in zip(schedule(3), plain.delays()):
            assert base <= jittered <= base * 1.5 + 1e-12

    def test_single_attempt_means_no_delays(self):
        assert list(RetryPolicy(attempts=1).delays()) == []


@pytest.fixture()
def service():
    service = PlanningService(num_shards=1)
    address = service.start_background(tcp=True)
    try:
        yield service, address
    finally:
        service.stop()


class TestTransportRecovery:
    def test_dropped_frame_is_retried_transparently(self, service, fig1_mset):
        _, (host, port) = service
        client = ServiceClient(
            host,
            port,
            timeout=0.3,
            retry=RetryPolicy(attempts=4, base_delay_s=0.02, jitter=0.0),
        )
        plan = FaultPlan([FaultSpec("client.drop_send", count=1)])
        try:
            with faults.inject(plan):
                served = client.plan(fig1_mset, solver="greedy")
            assert served.result.value > 0
            assert plan.fired() == {"client.drop_send": 1}
            assert client.local_metrics.get("timeouts") == 1
            assert client.local_metrics.get("retries") == 1
            assert client.local_metrics.get("reconnects") == 1
        finally:
            client.close()

    def test_partial_frame_is_retried_transparently(self, service, fig1_mset):
        _, (host, port) = service
        client = ServiceClient(
            host,
            port,
            timeout=1.0,
            retry=RetryPolicy(attempts=4, base_delay_s=0.02, jitter=0.0),
        )
        plan = FaultPlan([FaultSpec("client.partial_send", count=1)])
        try:
            with faults.inject(plan):
                served = client.plan(fig1_mset, solver="greedy")
            assert served.result.value > 0
            assert plan.fired() == {"client.partial_send": 1}
            assert client.local_metrics.get("retries") == 1
            assert client.local_metrics.get("reconnects") == 1
        finally:
            client.close()

    def test_non_idempotent_verbs_are_never_replayed(self, service, fig1_mset):
        _, (host, port) = service
        client = ServiceClient(
            host,
            port,
            timeout=0.3,
            retry=RetryPolicy(attempts=5, base_delay_s=0.02, jitter=0.0),
        )
        plan = FaultPlan([FaultSpec("client.drop_send", count=1)])
        try:
            with faults.inject(plan):
                with pytest.raises(ServiceRetryableError):
                    client.open_session(fig1_mset)
            assert plan.fired() == {"client.drop_send": 1}  # exactly one send
            assert client.local_metrics.get("retries") == 0
            # the broken transport still heals on the next idempotent call
            assert client.ping()
            assert client.local_metrics.get("reconnects") == 1
        finally:
            client.close()

    def test_deadline_budget_stops_retrying_early(self, service, fig1_mset):
        _, (host, port) = service
        client = ServiceClient(
            host,
            port,
            timeout=0.2,
            retry=RetryPolicy(
                attempts=10, base_delay_s=0.3, jitter=0.0, deadline_s=0.25
            ),
        )
        try:
            started = time.monotonic()
            with faults.inject(FaultPlan([FaultSpec("client.drop_send")])):
                with pytest.raises(ServiceRetryableError):
                    client.plan(fig1_mset, solver="greedy")
            # one read timeout, then the budget forbids sleeping again
            assert time.monotonic() - started < 1.0
            assert client.local_metrics.get("retries") == 0
        finally:
            client.close()


class TestManualReconnect:
    def test_reconnect_restores_a_broken_client(self, service, fig1_mset):
        _, (host, port) = service
        client = ServiceClient(host, port, timeout=0.3)
        try:
            with faults.inject(FaultPlan([FaultSpec("client.drop_send", count=1)])):
                with pytest.raises(ServiceError, match="connection failed"):
                    client.plan(fig1_mset, solver="greedy")
            with pytest.raises(ServiceError, match="reconnect"):
                client.ping()  # fail-closed until explicitly recovered
            client.reconnect()
            assert client.ping()
            assert client.plan(fig1_mset, solver="greedy").result.value > 0
            assert client.local_metrics.get("reconnects") == 1
        finally:
            client.close()

    def test_close_is_idempotent_and_reconnectable(self, service):
        _, (host, port) = service
        client = ServiceClient(host, port, timeout=1.0)
        client.close()
        client.close()  # second close is a no-op
        client.reconnect()
        try:
            assert client.ping()
        finally:
            client.close()


class TestEndToEndRecovery:
    def test_retry_policy_recovers_from_a_server_side_stall(self, fig1_mset):
        """Acceptance path: a timed-out call heals via retry + reconnect."""
        from repro.api import (
            SolverCapabilities,
            SolverOutput,
            register_solver,
            unregister_solver,
        )
        from repro.core.greedy import greedy_schedule

        name = f"dawdling-{uuid.uuid4().hex[:8]}"
        calls = []

        @register_solver(name, "test: first call slower than the read timeout",
                         capabilities=SolverCapabilities(max_n=0))
        def _dawdling(mset, **options):
            calls.append(time.monotonic())
            if len(calls) == 1:
                time.sleep(0.6)
            return SolverOutput(schedule=greedy_schedule(mset))

        service = PlanningService(num_shards=1)
        host, port = service.start_background(tcp=True)
        client = ServiceClient(
            host,
            port,
            timeout=0.3,
            retry=RetryPolicy(attempts=6, base_delay_s=0.05, jitter=0.0),
        )
        try:
            served = client.plan(fig1_mset, solver=name)
            assert served.result.value > 0
            assert not served.degraded
            assert client.local_metrics.get("timeouts") >= 1
            assert client.local_metrics.get("retries") >= 1
            assert client.local_metrics.get("reconnects") >= 1
        finally:
            client.close()
            service.stop()
            unregister_solver(name)
