"""FairQueue: round-robin fairness across clients, admission control."""

import asyncio

import pytest

from repro.exceptions import ReproError, ServiceError
from repro.service import FairQueue


def run(coro):
    return asyncio.run(coro)


class TestFairness:
    def test_round_robin_interleaves_clients(self):
        async def go():
            queue = FairQueue()
            for item in range(5):
                await queue.put("hog", f"hog-{item}")
            await queue.put("mouse", "mouse-0")
            served = [await queue.get() for _ in range(queue.pending)]
            return [client for client, _ in served]

        order = run(go())
        # the one-request client is served second, not after the hog's five
        assert order[0] == "hog"
        assert order[1] == "mouse"
        assert order[2:] == ["hog"] * 4

    def test_three_clients_rotate(self):
        async def go():
            queue = FairQueue()
            for client in ("a", "b", "c"):
                for item in range(2):
                    await queue.put(client, item)
            return [client for client, _ in
                    [await queue.get() for _ in range(6)]]

        assert run(go()) == ["a", "b", "c", "a", "b", "c"]

    def test_fifo_within_a_client(self):
        async def go():
            queue = FairQueue()
            for item in range(4):
                await queue.put("solo", item)
            return [item for _, item in [await queue.get() for _ in range(4)]]

        assert run(go()) == [0, 1, 2, 3]

    def test_get_blocks_until_put(self):
        async def go():
            queue = FairQueue()

            async def producer():
                await asyncio.sleep(0.01)
                await queue.put("late", "payload")

            asyncio.get_running_loop().create_task(producer())
            client, item = await asyncio.wait_for(queue.get(), timeout=2)
            return client, item

        assert run(go()) == ("late", "payload")


class TestAdmission:
    def test_rejects_when_full(self):
        async def go():
            queue = FairQueue(max_pending=2)
            await queue.put("a", 1)
            await queue.put("b", 2)
            with pytest.raises(ServiceError, match="admission queue full"):
                await queue.put("c", 3)
            return queue.pending

        assert run(go()) == 2

    def test_capacity_frees_up_after_get(self):
        async def go():
            queue = FairQueue(max_pending=1)
            await queue.put("a", 1)
            await queue.get()
            await queue.put("a", 2)  # accepted again
            return queue.pending

        assert run(go()) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ReproError, match="max_pending"):
            run(self._build(0))

    @staticmethod
    async def _build(max_pending):
        return FairQueue(max_pending=max_pending)

    def test_drain_empties_everything(self):
        async def go():
            queue = FairQueue()
            await queue.put("a", 1)
            await queue.put("b", 2)
            drained = queue.drain()
            return drained, queue.pending, queue.clients()

        drained, pending, clients = run(go())
        assert sorted(drained) == [("a", 1), ("b", 2)]
        assert pending == 0 and clients == []
