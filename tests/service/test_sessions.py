"""Group sessions: sequencing, repair identity, pinning, crash replay.

The session protocol's contract, end to end: out-of-order deltas are
rejected fail-closed with session state untouched, exact duplicates are
answered idempotently, a reconnecting client resumes from the last
acknowledged update, cache eviction pressure never invalidates a
session's pinned table mid-repair, and a ``kill -9``'d service replays a
session's plans bit-identically from its :class:`PlanStore` on restart.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Planner, PlanRequest
from repro.api.tables import TableCacheConfig
from repro.conformance.invariants import canonical_result_payload
from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.core.repair import MembershipDelta, apply_delta, churn_chain
from repro.exceptions import ServiceError
from repro.service import (
    InProcessClient,
    PlanningService,
    ServiceClient,
    SessionManager,
)


@pytest.fixture
def tcp_service(tmp_path):
    service = PlanningService(
        store_path=tmp_path / "planstore", num_shards=2, worker_mode="thread"
    )
    address = service.start_background(tcp=True)
    try:
        yield service, address
    finally:
        service.stop()


def _base(latency=1):
    return MulticastSet.from_overheads(
        source=(2, 3),
        destinations=[(1, 1), (1, 1), (2, 3)],
        latency=latency,
    )


def _join(seq, name):
    return MembershipDelta(seq=seq, joins=(Node(name, 1, 1),))


def _cold(mset, solver="dp"):
    return Planner(cache_size=0, reuse_tables=False).plan(
        PlanRequest(instance=mset, solver=solver)
    )


class TestSequencing:
    """Fail-closed ordering on the SessionManager itself."""

    def test_open_matches_cold_plan(self):
        manager = SessionManager(Planner(cache_size=0))
        opened = manager.open(PlanRequest(instance=_base(), solver="dp"))
        assert opened.seq == 0
        assert canonical_result_payload(opened.result) == canonical_result_payload(
            _cold(_base())
        )
        manager.close(opened.session_id)

    def test_out_of_order_rejected_and_state_intact(self):
        manager = SessionManager(Planner(cache_size=0))
        opened = manager.open(PlanRequest(instance=_base(), solver="dp"))
        sid = opened.session_id
        with pytest.raises(ServiceError, match="out-of-order delta seq 2"):
            manager.apply(sid, _join(2, "j1"))
        # the session is exactly where it was: seq 1 still the next step
        session = manager.session(sid)
        assert session.last_seq == 0
        assert session.request.instance == _base()
        update = manager.apply(sid, _join(1, "j1"))
        assert update.seq == 1
        assert manager.metrics.get("session_rejects") == 1
        manager.close(sid)

    def test_exact_duplicate_is_idempotent(self):
        manager = SessionManager(Planner(cache_size=0))
        opened = manager.open(PlanRequest(instance=_base(), solver="dp"))
        sid = opened.session_id
        delta = _join(1, "j1")
        first = manager.apply(sid, delta)
        replay = manager.apply(sid, delta)
        assert replay is first  # the stored update, not a re-plan
        assert manager.metrics.get("session_duplicates") == 1
        assert manager.session(sid).last_seq == 1
        manager.close(sid)

    def test_duplicate_seq_with_different_content_rejected(self):
        manager = SessionManager(Planner(cache_size=0))
        opened = manager.open(PlanRequest(instance=_base(), solver="dp"))
        sid = opened.session_id
        manager.apply(sid, _join(1, "j1"))
        with pytest.raises(ServiceError, match="out-of-order delta seq 1"):
            manager.apply(sid, _join(1, "j2"))  # same seq, different delta
        assert manager.session(sid).last_seq == 1
        manager.close(sid)

    def test_rejected_content_leaves_state_intact(self):
        manager = SessionManager(Planner(cache_size=0))
        opened = manager.open(PlanRequest(instance=_base(), solver="dp"))
        sid = opened.session_id
        bad = MembershipDelta(seq=1, leaves=("nobody",))
        with pytest.raises(ServiceError, match="rejected delta 1"):
            manager.apply(sid, bad)
        session = manager.session(sid)
        assert session.last_seq == 0 and session.request.instance == _base()
        assert manager.apply(sid, _join(1, "j1")).seq == 1  # seq 1 still free
        manager.close(sid)

    def test_unknown_and_closed_sessions_error(self):
        manager = SessionManager(Planner(cache_size=0))
        with pytest.raises(ServiceError, match="unknown session"):
            manager.apply("s999", _join(1, "j1"))
        opened = manager.open(PlanRequest(instance=_base(), solver="dp"))
        manager.close(opened.session_id)
        with pytest.raises(ServiceError, match="unknown session"):
            manager.resume(opened.session_id)

    def test_resume_replays_last_update(self):
        manager = SessionManager(Planner(cache_size=0))
        opened = manager.open(PlanRequest(instance=_base(), solver="dp"))
        sid = opened.session_id
        assert manager.resume(sid) is opened
        applied = manager.apply(sid, _join(1, "j1"))
        assert manager.resume(sid) is applied
        assert manager.metrics.get("session_resumes") == 2
        manager.close(sid)

    def test_close_releases_the_pin(self):
        manager = SessionManager(Planner(cache_size=0))
        opened = manager.open(PlanRequest(instance=_base(), solver="dp"))
        tables = manager.planner.table_cache
        assert tables.stats()["pins"] == 1
        manager.close(opened.session_id)
        assert tables.stats()["pins"] == 0


class TestEvictionDuringRepair:
    """Regression: cache-budget eviction must not invalidate a held table."""

    def test_pinned_session_table_survives_unrelated_pressure(self):
        # budget 60: the session's 18-state table plus any one unrelated
        # 50-state table overflows it, so without the pin the unrelated
        # traffic would evict the session's network mid-stream
        planner = Planner(
            cache_size=0, table_config=TableCacheConfig(max_total_states=60)
        )
        manager = SessionManager(planner)
        opened = manager.open(PlanRequest(instance=_base(), solver="dp"))
        sid = opened.session_id
        cache = planner.table_cache
        assert cache.builds == 1

        def pressure(latency):
            return MulticastSet.from_overheads(
                source=(2, 3),
                destinations=[(1, 1)] * 4 + [(2, 3)] * 4,
                latency=latency,
            )

        for latency in (3, 4):  # two distinct 50-state networks
            planner.plan(PlanRequest(instance=pressure(latency), solver="dp"))
        assert cache.builds == 3 and cache.evictions >= 1

        mset = _base()
        for seq, name in ((1, "j1"), (2, "j2")):
            delta = _join(seq, name)
            mset = apply_delta(mset, delta)
            update = manager.apply(sid, delta)
            assert update.repaired, "repair fell back to a cold solve"
            assert canonical_result_payload(update.result) == (
                canonical_result_payload(_cold(mset))
            )
        # the session's table was never rebuilt: joins only extended it
        assert cache.builds == 3
        manager.close(sid)
        assert cache.stats()["pins"] == 0

    def test_unpinned_traffic_still_evicts_normally(self):
        planner = Planner(
            cache_size=0, table_config=TableCacheConfig(max_total_states=60)
        )
        for latency in (1, 2):
            mset = MulticastSet.from_overheads(
                source=(2, 3),
                destinations=[(1, 1)] * 4 + [(2, 3)] * 4,
                latency=latency,
            )
            planner.plan(PlanRequest(instance=mset, solver="dp"))
        assert planner.table_cache.evictions >= 1


class TestInProcessSessions:
    def test_full_session_flow(self, tmp_path, fig1_mset):
        service = PlanningService(
            store_path=tmp_path / "planstore", num_shards=2, worker_mode="thread"
        )
        service.start_background()
        try:
            client = InProcessClient(service, client_id="churn-test")
            opened = client.open_session(fig1_mset, solver="dp")
            assert opened.seq == 0
            mset = fig1_mset
            for delta in churn_chain(fig1_mset, seed=3, length=3):
                mset = apply_delta(mset, delta)
                update = client.send_delta(opened.session_id, delta)
                assert update.seq == delta.seq
                assert canonical_result_payload(update.result) == (
                    canonical_result_payload(_cold(mset))
                )
            resumed = client.resume_session(opened.session_id)
            assert resumed.seq == 3
            client.close_session(opened.session_id)
            with pytest.raises(ServiceError, match="unknown session"):
                client.resume_session(opened.session_id)
            metrics = client.metrics()
            assert metrics["sessions_opened"] == 1
            assert metrics["sessions_closed"] == 1
            assert metrics["session_deltas"] == 3
            assert metrics["gauge_sessions_active"] == 0
        finally:
            service.stop()


class TestTcpSessions:
    def test_wire_flow_bit_identical(self, tcp_service, fig1_mset):
        _, (host, port) = tcp_service
        with ServiceClient(host, port) as client:
            opened = client.open_session(fig1_mset, solver="dp")
            mset = fig1_mset
            for delta in churn_chain(fig1_mset, seed=7, length=3):
                mset = apply_delta(mset, delta)
                update = client.send_delta(opened.session_id, delta)
                assert update.seq == delta.seq
                assert canonical_result_payload(update.result) == (
                    canonical_result_payload(_cold(mset))
                )
            client.close_session(opened.session_id)

    def test_out_of_order_and_duplicates_over_the_wire(self, tcp_service, fig1_mset):
        _, (host, port) = tcp_service
        with ServiceClient(host, port) as client:
            opened = client.open_session(fig1_mset, solver="dp")
            sid = opened.session_id
            with pytest.raises(ServiceError, match="out-of-order delta seq 5"):
                client.send_delta(sid, _join(5, "j1"))
            delta = _join(1, "j1")
            first = client.send_delta(sid, delta)
            replay = client.send_delta(sid, delta)  # connection still usable
            assert canonical_result_payload(replay.result) == (
                canonical_result_payload(first.result)
            )
            assert replay.seq == first.seq == 1
            client.close_session(sid)

    def test_reconnect_resumes_the_stream(self, tcp_service, fig1_mset):
        _, (host, port) = tcp_service
        first = ServiceClient(host, port, client_id="conn-a")
        opened = first.open_session(fig1_mset, solver="dp")
        sid = opened.session_id
        sent = first.send_delta(sid, _join(1, "j1"))
        first.close()  # dropping the connection does not close the session

        with ServiceClient(host, port, client_id="conn-b") as second:
            resumed = second.resume_session(sid)
            assert resumed.seq == 1
            assert canonical_result_payload(resumed.result) == (
                canonical_result_payload(sent.result)
            )
            follow_on = second.send_delta(sid, _join(2, "j2"))
            assert follow_on.seq == 2
            second.close_session(sid)


class TestCrashRestartReplay:
    """kill -9 the service; a restart replays the session from the store."""

    def _spawn(self, store: Path):
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(root / "src")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli.main",
                "serve",
                "--port",
                "0",
                "--store",
                str(store),
                "--shards",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=str(root),
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            if "listening on" in line:
                address = line.split("listening on", 1)[1].split()[0]
                host, port = address.rsplit(":", 1)
                return process, host, int(port)
        process.kill()
        pytest.fail("service subprocess never became ready")

    def test_killed_service_replays_identical_plans(self, tmp_path, fig1_mset):
        store = tmp_path / "planstore"
        deltas = churn_chain(fig1_mset, seed=11, length=3)
        process, host, port = self._spawn(store)
        try:
            with ServiceClient(host, port, timeout=30.0) as client:
                opened = client.open_session(fig1_mset, solver="dp")
                before = [opened] + [
                    client.send_delta(opened.session_id, delta) for delta in deltas
                ]
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
            process.stdout.close()

        # restart over the same store: session state is gone (it is
        # in-memory by design) but every plan replays from the store tier
        process, host, port = self._spawn(store)
        try:
            with ServiceClient(host, port, timeout=30.0) as client:
                with pytest.raises(ServiceError, match="unknown session"):
                    client.resume_session(before[0].session_id)
                reopened = client.open_session(fig1_mset, solver="dp")
                after = [reopened] + [
                    client.send_delta(reopened.session_id, delta) for delta in deltas
                ]
                for old, new in zip(before, after):
                    assert new.seq == old.seq
                    assert canonical_result_payload(new.result) == (
                        canonical_result_payload(old.result)
                    )
                # the replayed stream was served from cache tiers — the
                # plan store warm-start plus the memory tier it fills (a
                # rename-only handover shares its canonical key with the
                # membership before it) — never re-solved
                metrics = client.metrics()
                hits = sum(
                    count
                    for name, count in metrics.items()
                    if name.startswith("session_hits_")
                )
                assert metrics["session_hits_store"] >= 1
                assert hits == len(after)
                assert metrics.get("solves", 0) == 0
                client.close_session(reopened.session_id)
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
            process.stdout.close()
