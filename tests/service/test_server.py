"""PlanningService (embedded): correctness vs direct Planner, tiers, metrics."""

import pytest

from repro.api import Planner, PlanRequest
from repro.exceptions import ServiceError, SolverError
from repro.service import InProcessClient, PlanningService


@pytest.fixture
def service(tmp_path):
    with PlanningService(
        store_path=tmp_path / "planstore", num_shards=2, worker_mode="thread"
    ) as running:
        yield running


class TestServedPlans:
    def test_matches_direct_planner(self, service, fig1_mset):
        client = InProcessClient(service)
        for solver in ("greedy", "greedy+reversal", "dp"):
            served = client.plan(fig1_mset, solver=solver)
            direct = Planner(cache_size=0).plan(fig1_mset, solver=solver)
            assert served.result.value == direct.value
            assert served.result.schedule == direct.schedule
            assert served.result.solver == direct.solver

    def test_tier_progression(self, service, fig1_mset):
        client = InProcessClient(service)
        first = client.plan(fig1_mset, solver="dp")
        second = client.plan(fig1_mset, solver="dp")
        assert (first.tier, second.tier) == ("solve", "memory")
        assert not first.result.cache_hit
        assert second.result.cache_hit

    def test_batch_order_and_tags(self, service, small_random_msets):
        client = InProcessClient(service)
        requests = [
            PlanRequest(instance=mset, tag=f"job-{i}")
            for i, mset in enumerate(small_random_msets)
        ]
        served = client.plan_batch(requests)
        assert [p.result.tag for p in served] == [r.tag for r in requests]
        for request, plan in zip(requests, served):
            assert plan.result.schedule.multicast == request.instance

    def test_solver_errors_propagate(self, service, fig1_mset):
        client = InProcessClient(service)
        with pytest.raises(SolverError, match="unknown solver"):
            client.plan(fig1_mset, solver="does-not-exist")
        # the service survives the error and keeps serving
        assert client.plan(fig1_mset).result.value == 8

    def test_include_bounds_through_service(self, service, fig1_mset):
        client = InProcessClient(service)
        served = client.plan(
            PlanRequest(instance=fig1_mset, solver="greedy", include_bounds=True)
        )
        assert served.result.bounds is not None


class TestPersistence:
    def test_restart_serves_from_store(self, tmp_path, fig1_mset, small_random_msets):
        store = tmp_path / "planstore"
        with PlanningService(store_path=store, num_shards=2) as service:
            client = InProcessClient(service)
            originals = [
                client.plan(mset).result
                for mset in [fig1_mset, *small_random_msets]
            ]
            assert all(
                p.tier == "solve"
                for p in [client.plan(fig1_mset, solver="dp")]
            )

        # fresh process-equivalent: new service, new planner, same store
        with PlanningService(store_path=store, num_shards=2) as service:
            client = InProcessClient(service)
            for mset, original in zip(
                [fig1_mset, *small_random_msets], originals
            ):
                served = client.plan(mset)
                assert served.tier == "store"
                assert served.result.value == original.value
                assert served.result.schedule == original.schedule
            assert service.metrics.get("solves") == 0

    def test_memory_only_service_has_no_store(self, fig1_mset):
        with PlanningService(num_shards=1) as service:
            assert service.store is None
            served = InProcessClient(service).plan(fig1_mset)
            assert served.tier == "solve"


class TestLifecycleAndAdmission:
    def test_not_running_raises(self, fig1_mset):
        service = PlanningService(num_shards=1)
        with pytest.raises(ServiceError, match="not running"):
            service.submit_sync(PlanRequest(instance=fig1_mset))

    def test_double_start_rejected(self):
        service = PlanningService(num_shards=1)
        service.start_background()
        try:
            with pytest.raises(ServiceError, match="already running"):
                service.start_background()
            with pytest.raises(ServiceError, match="already running"):
                service.run()
        finally:
            service.stop()

    def test_stop_is_idempotent(self):
        service = PlanningService(num_shards=1)
        service.start_background()
        service.stop()
        service.stop()

    def test_admission_rejection_when_queue_full(self, fig1_mset):
        # max_pending=1 and paused shard workers: the second miss while one
        # is queued must be rejected, not buffered without bound
        import asyncio

        service = PlanningService(num_shards=1, max_pending=1, worker_mode="inline")

        async def go():
            await service._startup(None, 0)
            for task in service._dispatchers:  # pause dispatch entirely
                task.cancel()
            await asyncio.gather(*service._dispatchers, return_exceptions=True)
            queued = asyncio.get_running_loop().create_task(
                service.submit(PlanRequest(instance=fig1_mset), "a")
            )
            await asyncio.sleep(0.3)  # let it pass lookup and enqueue
            with pytest.raises(ServiceError, match="admission queue full"):
                await service.submit(PlanRequest(instance=fig1_mset), "b")
            queued.cancel()
            await asyncio.gather(queued, return_exceptions=True)
            return service.metrics.get("rejected")

        assert asyncio.run(go()) == 1

    def test_submit_sync_timeout_raises_service_error(self, fig1_mset):
        import time
        import uuid

        from repro.api import SolverCapabilities, SolverOutput, register_solver
        from repro.core.greedy import greedy_schedule

        name = f"dawdle-{uuid.uuid4().hex[:8]}"

        @register_solver(name, "slow test solver",
                         capabilities=SolverCapabilities(max_n=0))
        def _dawdle(mset, **options):
            time.sleep(1.0)
            return SolverOutput(schedule=greedy_schedule(mset))

        with PlanningService(num_shards=1) as service:
            with pytest.raises(ServiceError, match="timed out"):
                service.submit_sync(
                    PlanRequest(instance=fig1_mset, solver=name), timeout=0.2
                )

    def test_stop_detaches_store_tier_from_supplied_planner(
        self, tmp_path, fig1_mset
    ):
        planner = Planner()
        service = PlanningService(planner=planner, store_path=tmp_path / "ps")
        assert planner.cache_tiers == ()  # not attached until running
        with service:
            assert planner.cache_tiers == (service.store,)
            InProcessClient(service).plan(fig1_mset)
        # the caller's planner is handed back unmodified
        assert planner.cache_tiers == ()

    def test_miss_backlog_still_respects_admission_cap(self, fig1_mset):
        """Cache misses queue in the FairQueue (bounded), not in unbounded
        shard buffers: flooding with slow requests triggers rejections."""
        import threading
        import time
        import uuid

        from repro.api import SolverCapabilities, SolverOutput, register_solver
        from repro.core.greedy import greedy_schedule

        name = f"busy-{uuid.uuid4().hex[:8]}"

        @register_solver(name, "slow test solver",
                         capabilities=SolverCapabilities(max_n=0))
        def _busy(mset, **options):
            time.sleep(1.0)
            return SolverOutput(schedule=greedy_schedule(mset))

        with PlanningService(
            num_shards=1, max_pending=2, worker_mode="thread"
        ) as service:
            outcomes = []

            def submit(client_id):
                try:
                    client = InProcessClient(service, client_id=client_id)
                    outcomes.append(client.plan(fig1_mset, solver=name))
                except ServiceError as exc:
                    outcomes.append(exc)

            threads = [
                threading.Thread(target=submit, args=(f"flood-{i}",))
                for i in range(10)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            rejected = [
                o for o in outcomes
                if isinstance(o, ServiceError) and "admission queue full" in str(o)
            ]
            assert rejected, "flooding past max_pending must reject requests"
            assert service.metrics.get("rejected") == len(rejected)
            # the admitted duplicates coalesced onto a single solve
            assert service.metrics.get("solves") == 1


class TestDeduplication:
    def test_identical_concurrent_requests_solve_once(self, fig1_mset):
        """Duplicates share a shard; the worker's cache re-check coalesces
        them so a given (instance, solver) is solved at most once."""
        import threading
        import time
        import uuid

        from repro.api import SolverCapabilities, SolverOutput, register_solver
        from repro.core.greedy import greedy_schedule

        name = f"sleepy-{uuid.uuid4().hex[:8]}"

        # max_n=0 keeps this throwaway solver out of capable_solvers()
        @register_solver(name, "slow test solver",
                         capabilities=SolverCapabilities(max_n=0))
        def _sleepy(mset, **options):
            time.sleep(0.3)
            return SolverOutput(schedule=greedy_schedule(mset))

        with PlanningService(num_shards=2, worker_mode="thread") as service:
            plans, errors = [], []

            def submit(client_id):
                try:
                    client = InProcessClient(service, client_id=client_id)
                    plans.append(client.plan(fig1_mset, solver=name))
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit, args=(f"client-{i}",))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            assert service.metrics.get("solves") == 1
            assert service.metrics.get("coalesced") == 2
            assert len({plan.result.value for plan in plans}) == 1

    def test_slow_shard_does_not_block_other_shards(self, fig1_mset):
        """A long solve on one shard must not delay another shard's work."""
        import threading
        import time
        import uuid

        from repro.api import (
            PlanRequest,
            SolverCapabilities,
            SolverOutput,
            register_solver,
        )
        from repro.core.greedy import greedy_schedule
        from repro.workloads.clusters import bounded_ratio_cluster
        from repro.workloads.generator import multicast_from_cluster

        name = f"glacial-{uuid.uuid4().hex[:8]}"
        slow_done = threading.Event()

        @register_solver(name, "very slow test solver",
                         capabilities=SolverCapabilities(max_n=0))
        def _glacial(mset, **options):
            time.sleep(2.0)
            return SolverOutput(schedule=greedy_schedule(mset))

        with PlanningService(num_shards=2, worker_mode="thread") as service:
            # routing is by canonical network key: find an instance whose
            # network lands on the other shard
            slow_shard = service.router.shard_for(PlanRequest(instance=fig1_mset))
            for seed in range(64):
                other = multicast_from_cluster(
                    bounded_ratio_cluster(6, seed), latency=1, seed=seed
                )
                if (
                    service.router.shard_for(PlanRequest(instance=other))
                    != slow_shard
                ):
                    break
            else:  # pragma: no cover - 2^-64 unlucky
                pytest.skip("no instance found on the other shard")

            def run_slow():
                InProcessClient(service, client_id="slow").plan(
                    fig1_mset, solver=name
                )
                slow_done.set()

            slow_thread = threading.Thread(target=run_slow)
            slow_thread.start()
            time.sleep(0.2)  # let the glacial solve occupy its shard
            fast = InProcessClient(service, client_id="fast").plan(other)
            assert not slow_done.is_set(), (
                "fast request should finish while the slow shard is busy"
            )
            assert fast.tier == "solve"
            slow_thread.join(timeout=30)
            assert slow_done.is_set()


class TestMetrics:
    def test_describe_metrics_families(self, service, fig1_mset):
        client = InProcessClient(service)
        client.plan(fig1_mset)
        client.plan(fig1_mset)
        metrics = client.metrics()
        assert metrics["requests"] == 2
        assert metrics["solves"] == 1
        assert metrics["hits_memory"] == 1
        assert metrics["store_live_keys"] == 1
        assert set(metrics) >= {"shard_0", "shard_1", "planner_cache_size"}
