"""Shard-worker supervision: SIGKILLed workers restart, work is re-served."""

import multiprocessing
import os
import signal
import threading
import time
import uuid

import pytest

from repro import faults
from repro.api import (
    PlanRequest,
    SolverCapabilities,
    SolverOutput,
    register_solver,
    unregister_solver,
)
from repro.api.planner import _plan_standalone
from repro.core.greedy import greedy_schedule
from repro.exceptions import ServiceRetryableError
from repro.faults import FaultPlan, FaultSpec
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.metrics import MetricsRegistry
from repro.service.server import PlanningService
from repro.service.shard import ShardRouter

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="test solvers reach worker processes via fork inheritance",
)


class TestRouterSupervision:
    def test_killed_worker_restarts_and_reserves_bit_identically(self, fig1_mset):
        metrics = MetricsRegistry()
        router = ShardRouter(1, mode="process", metrics=metrics)
        request = PlanRequest(instance=fig1_mset, solver="dp")
        try:
            with faults.inject(FaultPlan([FaultSpec("worker.kill", count=1)])):
                result = router.solve_sync(request)
            direct = _plan_standalone(request)
            assert result.value == direct.value
            assert result.schedule == direct.schedule
            assert result.exact == direct.exact
            assert metrics.get("worker_restarts") == 1
        finally:
            router.shutdown()

    def test_second_consecutive_death_fails_closed_retryably(self, fig1_mset):
        metrics = MetricsRegistry()
        router = ShardRouter(1, mode="process", metrics=metrics)
        request = PlanRequest(instance=fig1_mset, solver="greedy")
        try:
            with faults.inject(FaultPlan([FaultSpec("worker.kill", count=2)])):
                with pytest.raises(
                    ServiceRetryableError, match="died twice in a row; retry later"
                ):
                    router.solve_sync(request)
            assert metrics.get("worker_restarts") == 2
            # the shard is not poisoned: the next solve gets a fresh worker
            assert router.solve_sync(request).value == _plan_standalone(request).value
        finally:
            router.shutdown()

    @fork_only
    def test_sigkill_mid_solve_recovers(self, fig1_mset):
        """The hard case: the OS reaps the worker while a solve is running."""
        name = f"napping-{uuid.uuid4().hex[:8]}"

        @register_solver(name, "test: long enough to be killed mid-solve",
                         capabilities=SolverCapabilities(max_n=0))
        def _napping(mset, **options):
            time.sleep(0.6)
            return SolverOutput(schedule=greedy_schedule(mset))

        metrics = MetricsRegistry()
        router = ShardRouter(1, mode="process", metrics=metrics)
        request = PlanRequest(instance=fig1_mset, solver=name)
        try:
            # warm the pool (forks the worker with the solver registered)
            router.solve_sync(PlanRequest(instance=fig1_mset, solver="greedy"))
            [executor] = router._executors.values()
            [pid] = [process.pid for process in executor._processes.values()]

            outcome = {}

            def solve():
                try:
                    outcome["result"] = router.solve_sync(request)
                except Exception as exc:  # pragma: no cover - fails the test
                    outcome["error"] = exc

            solver_thread = threading.Thread(target=solve)
            solver_thread.start()
            time.sleep(0.2)  # well inside the 0.6s nap
            os.kill(pid, signal.SIGKILL)
            solver_thread.join(timeout=10.0)
            assert not solver_thread.is_alive()
            assert "error" not in outcome, outcome.get("error")
            direct = _plan_standalone(request)
            assert outcome["result"].value == direct.value
            assert outcome["result"].schedule == direct.schedule
            assert metrics.get("worker_restarts") >= 1
        finally:
            router.shutdown()
            unregister_solver(name)


class TestServiceSupervision:
    def test_client_retry_rides_through_a_double_worker_death(self, fig1_mset):
        service = PlanningService(num_shards=1, worker_mode="process")
        host, port = service.start_background(tcp=True)
        client = ServiceClient(
            host,
            port,
            timeout=30.0,
            retry=RetryPolicy(attempts=3, base_delay_s=0.02, jitter=0.0),
        )
        try:
            # two consecutive deaths exhaust the server-side requeue and
            # surface a retryable error; the client's policy resubmits and
            # the third pass (faults spent) serves exactly
            with faults.inject(FaultPlan([FaultSpec("worker.kill", count=2)])):
                served = client.plan(fig1_mset, solver="dp")
            direct = _plan_standalone(PlanRequest(instance=fig1_mset, solver="dp"))
            assert served.result.value == direct.value
            assert served.result.schedule == direct.schedule
            assert not served.degraded
            assert client.local_metrics.get("retries") >= 1
            metrics = client.metrics()
            assert metrics["worker_restarts"] == 2
            assert metrics["errors_total"] >= 1
        finally:
            client.close()
            service.stop()
