"""Table policy flows into the service: shards, snapshots, pinning.

A :class:`~repro.api.tables.TableCacheConfig` handed to the service (or
router) must govern the workers' table caches: thread/inline shards
share one router-local cache, restarts warm-attach the snapshot
directory instead of rebuilding, process shards are initialized with the
same config, and ``pin_sessions=False`` opts sessions out of pinning.
"""

import pytest

from repro.api import Planner, PlanRequest
from repro.api.tables import TableCacheConfig
from repro.core.multicast import MulticastSet
from repro.service.server import PlanningService
from repro.service.sessions import SessionManager
from repro.service.shard import ShardRouter


def _mset(fast=4, slow=3):
    return MulticastSet.from_overheads(
        source=(2, 3),
        destinations=[(1, 1)] * fast + [(2, 3)] * slow,
        latency=1,
    )


class TestRouterTableConfig:
    def test_thread_router_uses_local_cache(self, tmp_path):
        router = ShardRouter(
            2, mode="thread", table_config=TableCacheConfig(snapshot_dir=tmp_path)
        )
        try:
            result = router.solve_sync(PlanRequest(instance=_mset(), solver="dp"))
            stats = router.tables.stats()
            assert stats["builds"] == 1
            assert stats["snapshot_saves"] == 1
            assert list(tmp_path.glob("table-*.snap"))
        finally:
            router.shutdown()
        # a restarted router attaches the snapshot instead of rebuilding
        fresh = ShardRouter(
            2, mode="thread", table_config=TableCacheConfig(snapshot_dir=tmp_path)
        )
        try:
            again = fresh.solve_sync(PlanRequest(instance=_mset(), solver="dp"))
            stats = fresh.tables.stats()
            assert stats["attaches"] == 1
            assert stats["builds"] == 0
            assert again.value == result.value
            assert again.schedule == result.schedule
        finally:
            fresh.shutdown()

    def test_no_config_keeps_module_cache_behavior(self):
        router = ShardRouter(1, mode="inline")
        assert router.table_config is None
        assert router.tables is None

    def test_invalid_config_rejected_at_construction(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="max_total_states"):
            ShardRouter(1, table_config=TableCacheConfig(max_total_states=0))

    def test_process_mode_workers_apply_the_config(self, tmp_path):
        config = TableCacheConfig(snapshot_dir=tmp_path)
        router = ShardRouter(1, mode="process", table_config=config)
        try:
            result = router.solve_sync(PlanRequest(instance=_mset(), solver="dp"))
            assert result.value > 0
            # the worker process wrote through to the shared directory
            assert list(tmp_path.glob("table-*.snap"))
        finally:
            router.shutdown()


class TestServiceTableConfig:
    def test_service_builds_planner_with_config(self, tmp_path):
        config = TableCacheConfig(snapshot_dir=tmp_path)
        with PlanningService(worker_mode="thread", table_config=config) as service:
            assert service.planner.table_config.snapshot_dir == tmp_path
            result, tier = service.submit_sync(
                PlanRequest(instance=_mset(), solver="dp")
            )
            assert tier == "solve"
        assert list(tmp_path.glob("table-*.snap"))
        # restart: the shard worker warm-attaches
        with PlanningService(worker_mode="thread", table_config=config) as warm:
            again, _tier = warm.submit_sync(
                PlanRequest(instance=_mset(), solver="dp")
            )
            stats = warm.router.tables.stats()
            assert stats["attaches"] == 1
            assert stats["builds"] == 0
            assert again.value == result.value

    def test_supplied_planner_keeps_its_own_policy(self, tmp_path):
        planner = Planner()
        service = PlanningService(
            planner=planner,
            table_config=TableCacheConfig(snapshot_dir=tmp_path),
        )
        assert service.planner is planner
        assert planner.table_config.snapshot_dir is None
        assert service.router.table_config.snapshot_dir == tmp_path


class TestSessionPinning:
    def test_pin_sessions_false_never_pins(self):
        planner = Planner(table_config=TableCacheConfig(pin_sessions=False))
        manager = SessionManager(planner)
        opened = manager.open(PlanRequest(instance=_mset(), solver="dp"))
        try:
            session = manager.session(opened.session_id)
            assert session.pinned_box is None
            assert planner.table_cache.stats()["pins"] == 0
            # repair still answers from the (unpinned) resident table
            assert opened.repaired
        finally:
            manager.close(opened.session_id)

    def test_default_config_still_pins(self):
        planner = Planner()
        manager = SessionManager(planner)
        opened = manager.open(PlanRequest(instance=_mset(), solver="dp"))
        try:
            session = manager.session(opened.session_id)
            assert session.pinned_box is not None
            assert planner.table_cache.stats()["pins"] == 1
        finally:
            manager.close(opened.session_id)
