"""ServiceClient fail-closed behaviour on timeouts and protocol faults.

Once a request is abandoned mid-flight — a read timeout, a transport
error, an out-of-order response — the connection's stream may still hold
the stale response, so the client must refuse further use instead of
misreading a stale line as the answer to a later request.  These tests
drive the client against stub servers that misbehave deterministically.
"""

import json
import socket
import threading

import pytest

from repro.exceptions import ServiceError
from repro.service.client import ServiceClient


class _StubServer:
    """A one-connection TCP stub driven by a per-line behaviour function."""

    def __init__(self, behaviour):
        self._behaviour = behaviour
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        try:
            conn, _peer = self._listener.accept()
        except OSError:  # pragma: no cover - closed before a connection
            return
        with conn:
            reader = conn.makefile("rb")
            while True:
                line = reader.readline()
                if not line:
                    return
                reply = self._behaviour(json.loads(line))
                if reply is None:
                    return  # hang up without answering
                if reply == "silence":
                    continue  # swallow the request (client times out)
                conn.sendall((json.dumps(reply) + "\n").encode())

    def close(self):
        self._listener.close()


@pytest.fixture
def stub(request):
    servers = []

    def make(behaviour):
        server = _StubServer(behaviour)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


class TestFailClosed:
    def test_timeout_breaks_the_connection_for_good(self, stub, fig1_mset):
        server = stub(lambda message: "silence")
        client = ServiceClient("127.0.0.1", server.port, timeout=0.2)
        with pytest.raises(ServiceError, match="connection failed"):
            client.plan(fig1_mset, solver="greedy")
        # the stream may still hold the stale response: every later use
        # must fail closed instead of answering from it
        with pytest.raises(ServiceError, match="create a new ServiceClient"):
            client.plan(fig1_mset, solver="greedy")
        with pytest.raises(ServiceError, match="create a new ServiceClient"):
            client.ping()
        with pytest.raises(ServiceError, match="create a new ServiceClient"):
            client.metrics()

    def test_out_of_order_response_fails_closed(self, stub, fig1_mset):
        server = stub(lambda message: {"type": "pong", "id": -999})
        client = ServiceClient("127.0.0.1", server.port, timeout=2.0)
        with pytest.raises(ServiceError, match="out-of-order response"):
            client.ping()
        with pytest.raises(ServiceError, match="create a new ServiceClient"):
            client.ping()

    def test_server_hangup_fails_closed(self, stub, fig1_mset):
        server = stub(lambda message: None)
        client = ServiceClient("127.0.0.1", server.port, timeout=2.0)
        with pytest.raises(ServiceError, match="closed the connection"):
            client.ping()
        with pytest.raises(ServiceError, match="create a new ServiceClient"):
            client.ping()

    def test_fresh_client_recovers_after_a_timeout(self, fig1_mset):
        """The documented recovery path: a new client against a real server."""
        import time
        import uuid

        from repro.api import (
            SolverCapabilities,
            SolverOutput,
            register_solver,
            unregister_solver,
        )
        from repro.core.greedy import greedy_schedule
        from repro.service.server import PlanningService

        name = f"dawdling-{uuid.uuid4().hex[:8]}"

        @register_solver(name, "test: slower than the read timeout",
                         capabilities=SolverCapabilities(max_n=0))
        def _dawdling(mset, **options):
            time.sleep(1.0)
            return SolverOutput(schedule=greedy_schedule(mset))

        service = PlanningService(num_shards=1)
        host, port = service.start_background(tcp=True)
        try:
            # connect succeeds instantly; the response read times out
            victim = ServiceClient(host, port, timeout=0.2)
            with pytest.raises(ServiceError, match="connection failed"):
                victim.plan(fig1_mset, solver=name)
            with pytest.raises(ServiceError, match="create a new ServiceClient"):
                victim.plan(fig1_mset, solver="greedy")
            with ServiceClient(host, port, timeout=30.0) as fresh:
                assert fresh.plan(fig1_mset, solver="greedy").result.value > 0
        finally:
            service.stop()
            unregister_solver(name)

    def test_close_is_idempotent_after_abandon(self, stub):
        server = stub(lambda message: None)
        client = ServiceClient("127.0.0.1", server.port, timeout=1.0)
        with pytest.raises(ServiceError):
            client.ping()
        client.close()
        client.close()
