"""TCP front-end: wire protocol, ServiceClient, concurrent clients."""

import json
import socket
import threading

import pytest

from repro.api import Planner, PlanRequest
from repro.exceptions import ServiceError
from repro.service import PlanningService, ServiceClient
from repro.service import protocol


@pytest.fixture
def tcp_service(tmp_path):
    service = PlanningService(
        store_path=tmp_path / "planstore", num_shards=2, worker_mode="thread"
    )
    address = service.start_background(tcp=True)
    try:
        yield service, address
    finally:
        service.stop()


class TestServiceClient:
    def test_ping(self, tcp_service):
        _, (host, port) = tcp_service
        with ServiceClient(host, port) as client:
            assert client.ping()

    def test_plan_matches_direct(self, tcp_service, fig1_mset):
        _, (host, port) = tcp_service
        direct = Planner(cache_size=0).plan(fig1_mset, solver="dp")
        with ServiceClient(host, port) as client:
            served = client.plan(fig1_mset, solver="dp")
        assert served.tier == "solve"
        assert served.result.value == direct.value
        assert served.result.schedule == direct.schedule

    def test_second_request_hits_memory(self, tcp_service, fig1_mset):
        _, (host, port) = tcp_service
        with ServiceClient(host, port) as client:
            client.plan(fig1_mset)
            assert client.plan(fig1_mset).tier == "memory"

    def test_solver_error_surfaces_as_service_error(self, tcp_service, fig1_mset):
        _, (host, port) = tcp_service
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="unknown solver"):
                client.plan(fig1_mset, solver="nope")
            # connection still usable afterwards
            assert client.plan(fig1_mset).result.value == 8

    def test_metrics_snapshot(self, tcp_service, fig1_mset):
        _, (host, port) = tcp_service
        with ServiceClient(host, port) as client:
            client.plan(fig1_mset)
            metrics = client.metrics()
        assert metrics["requests"] >= 1
        assert "store_live_keys" in metrics

    def test_connect_refused(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServiceError, match="cannot connect"):
            ServiceClient("127.0.0.1", free_port, timeout=1)

    def test_concurrent_clients_agree(self, tcp_service, small_random_msets):
        _, (host, port) = tcp_service
        results = {}
        errors = []

        def worker(name):
            try:
                with ServiceClient(host, port, client_id=name) as client:
                    results[name] = [
                        client.plan(mset).result.value
                        for mset in small_random_msets
                    ]
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"client-{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        baseline = results["client-0"]
        assert all(values == baseline for values in results.values())


class TestTimeout:
    def test_timed_out_client_fails_closed(self, fig1_mset):
        """After a timeout the connection is closed, not desynchronized:
        the late response must never be misread as a later request's."""
        import time
        import uuid

        from repro.api import SolverCapabilities, SolverOutput, register_solver
        from repro.core.greedy import greedy_schedule

        name = f"tardy-{uuid.uuid4().hex[:8]}"

        @register_solver(name, "slow test solver",
                         capabilities=SolverCapabilities(max_n=0))
        def _tardy(mset, **options):
            time.sleep(1.0)
            return SolverOutput(schedule=greedy_schedule(mset))

        service = PlanningService(num_shards=1)
        host, port = service.start_background(tcp=True)
        try:
            client = ServiceClient(host, port, timeout=0.2)
            with pytest.raises(ServiceError, match="connection failed"):
                client.plan(fig1_mset, solver=name)
            # every later call errors out cleanly instead of reading the
            # stale response of the abandoned request
            with pytest.raises(ServiceError, match="create a new ServiceClient"):
                client.ping()
            client.close()
            # a fresh client works and gets the (by now cached) result
            with ServiceClient(host, port, timeout=10) as fresh:
                assert fresh.plan(fig1_mset, solver=name).result.value == 10.0
        finally:
            service.stop()


class TestShutdown:
    def test_stop_with_live_idle_connection(self, tmp_path, fig1_mset):
        # a connected-but-idle client must not leave a pending handler
        # task behind when the service stops (regression: destroyed task)
        service = PlanningService(num_shards=1)
        host, port = service.start_background(tcp=True)
        client = ServiceClient(host, port)
        client.plan(fig1_mset)
        service.stop()  # connection still open: handler must be cancelled
        assert not service._conn_tasks
        with pytest.raises(ServiceError):
            client.plan(fig1_mset)  # the server side is gone
        client.close()


class TestRawWire:
    def _raw(self, address, lines):
        with socket.create_connection(address, timeout=10) as sock:
            fh = sock.makefile("rb")
            out = []
            for line in lines:
                sock.sendall(line)
                out.append(json.loads(fh.readline()))
            return out

    def test_malformed_line_gets_error_not_disconnect(self, tcp_service):
        _, address = tcp_service
        [first, second] = self._raw(
            address, [b"this is not json\n", protocol.encode(protocol.ping_message(id=1))]
        )
        assert first["type"] == "error"
        assert "malformed" in first["error"]
        assert second == {"type": "pong", "id": 1}

    def test_unknown_type_reports_error(self, tcp_service):
        _, address = tcp_service
        [response] = self._raw(
            address, [protocol.encode({"type": "teleport", "id": 9})]
        )
        assert response["type"] == "error" and response["id"] == 9

    def test_plan_without_payload_reports_error(self, tcp_service):
        _, address = tcp_service
        [response] = self._raw(
            address, [protocol.encode({"type": "plan", "id": 3})]
        )
        assert response["type"] == "error" and response["id"] == 3

    def test_wire_result_round_trips_repro_io(self, tcp_service, fig1_mset):
        _, address = tcp_service
        message = protocol.plan_message(
            PlanRequest(instance=fig1_mset, solver="greedy"), id=42
        )
        [response] = self._raw(address, [protocol.encode(message)])
        assert response["type"] == "result" and response["id"] == 42
        assert response["result"]["format"] == "repro/plan-result-v1"
        result = protocol.parse_plan_result(response)
        assert result.value == 10.0
