"""Bounded service lifecycle: startup/stop timeouts name the stuck phase."""

import asyncio

import pytest

from repro.exceptions import ReproError, ServiceError
from repro.service.server import PlanningService


class TestConfiguration:
    @pytest.mark.parametrize("field", ["startup_timeout_s", "shutdown_timeout_s"])
    @pytest.mark.parametrize("value", [0.0, -5.0])
    def test_rejects_non_positive_timeouts(self, field, value):
        with pytest.raises(ReproError, match=field):
            PlanningService(**{field: value})

    def test_timeouts_are_constructor_surfaced(self):
        service = PlanningService(startup_timeout_s=3.0, shutdown_timeout_s=7.0)
        assert service.startup_timeout_s == 3.0
        assert service.shutdown_timeout_s == 7.0
        # the historical defaults are preserved
        default = PlanningService()
        assert default.startup_timeout_s == 10.0
        assert default.shutdown_timeout_s == 10.0


class TestStuckPhases:
    def test_hung_startup_names_its_phase(self, monkeypatch):
        async def hang(self, host, port):
            await asyncio.sleep(60)

        monkeypatch.setattr(PlanningService, "_startup", hang)
        service = PlanningService(startup_timeout_s=0.2)
        with pytest.raises(
            ServiceError, match="stuck in phase 'listener/dispatcher startup'"
        ):
            service.start_background()
        # the loop survives the failed startup, so cleanup still works
        monkeypatch.undo()
        service.stop()
        assert not service.is_running

    def test_hung_shutdown_names_its_phase_and_keeps_state(self, monkeypatch):
        service = PlanningService(num_shards=1, shutdown_timeout_s=0.2)
        service.start_background()
        real_shutdown = PlanningService._shutdown

        async def hang(self):
            await asyncio.sleep(60)

        monkeypatch.setattr(PlanningService, "_shutdown", hang)
        with pytest.raises(ServiceError, match="stuck in phase 'graceful shutdown'"):
            service.stop()
        # state left intact: a retry with the hang cleared succeeds
        assert service.is_running
        monkeypatch.setattr(PlanningService, "_shutdown", real_shutdown)
        service.stop()
        assert not service.is_running

    def test_stop_is_a_no_op_when_never_started(self):
        PlanningService().stop()  # must not raise
