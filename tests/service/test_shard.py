"""ShardRouter: stable routing, worker modes, dispatch accounting."""

import pytest

from repro.api import PlanRequest, Planner, instance_fingerprint
from repro.exceptions import ReproError
from repro.service import ShardRouter


class TestRouting:
    def test_shard_assignment_is_stable(self, fig1_mset):
        router = ShardRouter(4, mode="inline")
        fingerprint = instance_fingerprint(fig1_mset)
        first = router.shard_of(fingerprint)
        assert all(router.shard_of(fingerprint) == first for _ in range(10))
        assert 0 <= first < 4

    def test_identical_instances_share_a_shard(self, fig1_mset, small_random_msets):
        router = ShardRouter(4, mode="inline")
        a = router.shard_for(PlanRequest(instance=fig1_mset))
        b = router.shard_for(PlanRequest(instance=fig1_mset, solver="dp"))
        assert a == b  # routing is by instance, not by solver

    def test_distribution_covers_shards(self):
        # 32 distinct instances over 2 shards: both shards should see work
        from repro.workloads.clusters import bounded_ratio_cluster
        from repro.workloads.generator import multicast_from_cluster

        router = ShardRouter(2, mode="inline")
        shards = {
            router.shard_for(
                PlanRequest(
                    instance=multicast_from_cluster(
                        bounded_ratio_cluster(6, seed), latency=1, seed=seed
                    )
                )
            )
            for seed in range(32)
        }
        assert shards == {0, 1}

    def test_invalid_parameters(self):
        with pytest.raises(ReproError, match="num_shards"):
            ShardRouter(0)
        with pytest.raises(ReproError, match="worker mode"):
            ShardRouter(2, mode="coroutine")


class TestSolving:
    @pytest.mark.parametrize("mode", ["inline", "thread"])
    def test_solve_sync_matches_planner(self, mode, fig1_mset):
        router = ShardRouter(2, mode=mode)
        try:
            result = router.solve_sync(PlanRequest(instance=fig1_mset, solver="dp"))
            direct = Planner(cache_size=0).plan(fig1_mset, solver="dp")
            assert result.value == direct.value
            assert result.schedule == direct.schedule
        finally:
            router.shutdown()

    def test_solve_in_worker_process_mode(self, fig1_mset):
        router = ShardRouter(2, mode="process")
        try:
            shard = router.shard_for(PlanRequest(instance=fig1_mset))
            serving = router.serving_executor(shard)
            result = serving.submit(
                router.solve_in_worker, shard, PlanRequest(instance=fig1_mset)
            ).result()
            assert result.value == 8
        finally:
            router.shutdown()

    def test_serving_executor_modes(self):
        assert ShardRouter(2, mode="inline").serving_executor(0) is None
        thread_router = ShardRouter(2, mode="thread")
        try:
            # thread mode: the serving thread IS the shard worker
            assert thread_router.serving_executor(1) is thread_router._executor(1)
        finally:
            thread_router.shutdown()

    def test_dispatch_counters(self, fig1_mset, small_random_msets):
        router = ShardRouter(2, mode="inline")
        for mset in [fig1_mset, *small_random_msets]:
            router.solve_sync(PlanRequest(instance=mset))
        stats = router.stats()
        assert set(stats) == {"shard_0", "shard_1"}
        assert sum(stats.values()) == 1 + len(small_random_msets)

    def test_shutdown_is_idempotent(self):
        router = ShardRouter(2, mode="thread")
        router.solve_sync  # no executor created yet
        router.shutdown()
        router.shutdown()
