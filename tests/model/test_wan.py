"""Unit tests for the two-level WAN model (Bhat et al. [5] substrate)."""

import pytest

from repro.core.node import Node
from repro.exceptions import ModelError
from repro.model.wan import (
    WanNetwork,
    WanSchedule,
    cluster_aware_wan,
    flat_greedy_wan,
)
from repro.workloads.clusters import bounded_ratio_cluster


@pytest.fixture
def network():
    nodes = bounded_ratio_cluster(9, seed=3)
    return WanNetwork(
        {"A": nodes[:3], "B": nodes[3:6], "C": nodes[6:]},
        local_latency=2,
        wan_latency=50,
    )


class TestWanNetwork:
    def test_nodes_flattened(self, network):
        assert len(network.nodes) == 9

    def test_cluster_of(self, network):
        first = network.clusters[0]
        assert network.cluster_of(first[1][0].name) == first[0]

    def test_cluster_of_unknown(self, network):
        with pytest.raises(ModelError):
            network.cluster_of("ghost")

    def test_edge_latency_local_vs_wan(self, network):
        (_, a_members), (_, b_members), _ = network.clusters
        assert network.edge_latency(a_members[0].name, a_members[1].name) == 2
        assert network.edge_latency(a_members[0].name, b_members[0].name) == 50

    def test_mean_latency_between_extremes(self, network):
        assert 2 < network.mean_latency() < 50

    def test_validation(self):
        nd = Node("x", 1, 1)
        with pytest.raises(ModelError):
            WanNetwork({}, 1, 2)
        with pytest.raises(ModelError):
            WanNetwork({"A": [nd]}, 2, 1)  # wan < local
        with pytest.raises(ModelError):
            WanNetwork({"A": [nd], "B": [nd]}, 1, 2)  # duplicate names
        with pytest.raises(ModelError):
            WanNetwork({"A": [nd], "B": []}, 1, 2)  # empty cluster
        with pytest.raises(ModelError):
            WanNetwork({"A": [nd]}, 0, 2)  # nonpositive latency


class TestWanScheduleTiming:
    def test_per_edge_latency_recurrence(self):
        a = [Node("a0", 1, 1), Node("a1", 1, 1)]
        b = [Node("b0", 2, 3)]
        net = WanNetwork({"A": a, "B": b}, local_latency=1, wan_latency=10)
        sched = WanSchedule(net, [a[0], a[1], b[0]], {0: [1, 2]})
        # a0 -> a1 (local): d = 1*1 + 1 = 2, r = 3
        assert sched.reception_times[1] == 3
        # a0 -> b0 (wan, slot 2): d = 2*1 + 10 = 12, r = 15
        assert sched.reception_times[2] == 15

    def test_span_validation(self, network):
        order = list(network.nodes)
        with pytest.raises(ModelError, match="span"):
            WanSchedule(network, order, {0: [1, 2]})

    def test_duplicate_child_rejected(self):
        a = [Node("a0", 1, 1), Node("a1", 1, 1)]
        net = WanNetwork({"A": a}, 1, 1)
        with pytest.raises(ModelError, match="span"):
            WanSchedule(net, a, {0: [1, 1]})

    def test_wan_edge_count(self, network):
        aware = cluster_aware_wan(network, network.nodes[0].name)
        # one long-haul edge per non-source cluster gateway
        assert aware.wan_edge_count() == 2


class TestSchedulers:
    def test_both_produce_spanning_trees(self, network):
        src = network.nodes[0].name
        for sched in (flat_greedy_wan(network, src), cluster_aware_wan(network, src)):
            assert len(sched.reception_times) == 9
            assert all(r > 0 for r in sched.reception_times[1:])

    def test_unknown_source_rejected(self, network):
        with pytest.raises(ModelError):
            flat_greedy_wan(network, "ghost")

    def test_cluster_awareness_pays_on_long_haul(self):
        nodes = bounded_ratio_cluster(12, seed=3)
        clusters = {"A": nodes[:4], "B": nodes[4:8], "C": nodes[8:]}
        src = nodes[0].name
        slow_wan = WanNetwork(clusters, local_latency=2, wan_latency=200)
        aware = cluster_aware_wan(slow_wan, src).reception_completion
        flat = flat_greedy_wan(slow_wan, src).reception_completion
        assert aware < flat

    def test_aware_uses_one_wan_edge_per_remote_cluster(self):
        nodes = bounded_ratio_cluster(12, seed=1)
        clusters = {"A": nodes[:4], "B": nodes[4:8], "C": nodes[8:]}
        net = WanNetwork(clusters, local_latency=2, wan_latency=100)
        aware = cluster_aware_wan(net, nodes[0].name)
        assert aware.wan_edge_count() == 2
        flat = flat_greedy_wan(net, nodes[0].name)
        assert flat.wan_edge_count() >= aware.wan_edge_count()

    def test_degenerate_single_cluster(self):
        nodes = bounded_ratio_cluster(6, seed=0)
        net = WanNetwork({"A": nodes}, local_latency=2, wan_latency=2)
        src = nodes[0].name
        aware = cluster_aware_wan(net, src)
        flat = flat_greedy_wan(net, src)
        # one cluster: both reduce to the paper's greedy at local latency
        assert aware.reception_completion == flat.reception_completion
