"""Unit tests for the heterogeneous node model substrate [2, 9]."""

import pytest

from repro.exceptions import ModelError
from repro.model.heterogeneous_node import (
    NodeModelInstance,
    from_receive_send,
    node_model_completion,
    node_model_greedy,
    node_model_schedule,
)


class TestInstance:
    def test_valid(self):
        inst = NodeModelInstance((2, 1, 1, 3))
        assert inst.n == 3

    def test_too_small_rejected(self):
        with pytest.raises(ModelError):
            NodeModelInstance((2,))

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(ModelError):
            NodeModelInstance((2, 0))

    def test_projection_keeps_sends(self, fig1_mset):
        inst = from_receive_send(fig1_mset)
        assert inst.costs == (2, 1, 1, 1, 2)


class TestNodeModelGreedy:
    def test_homogeneous_doubles_per_round(self):
        # c(x) = 1 everywhere: informed count doubles every unit => 7 nodes
        # of 8 informed by t=3
        inst = NodeModelInstance((1,) * 8)
        children = node_model_greedy(inst)
        assert node_model_completion(inst, children) == 3

    def test_fastest_served_first(self):
        inst = NodeModelInstance((2, 1, 5))
        children = node_model_greedy(inst)
        # fastest destination (cost 1) must be the source's first child
        assert children[0][0] == 1

    def test_completion_requires_spanning(self):
        inst = NodeModelInstance((1, 1, 1))
        with pytest.raises(ModelError, match="span"):
            node_model_completion(inst, {0: [1]})

    def test_completion_semantics(self):
        # source c=2 sends to A (c=1) at t=2, then to B at t=4;
        # A sends to C at t=3
        inst = NodeModelInstance((2, 1, 1, 1))
        children = {0: [1, 2], 1: [3]}
        assert node_model_completion(inst, children) == 4


class TestCrossModelEvaluation:
    def test_schedule_valid_under_receive_send(self, fig1_mset):
        s = node_model_schedule(fig1_mset)
        assert sorted(s.descendants(0)) == [1, 2, 3, 4]
        assert s.reception_completion > 0

    def test_blind_spot_costs_time(self):
        """The node model ignores receive overheads: on a receive-heavy
        instance its tree is no better than the paper's greedy and is
        strictly worse somewhere in the suite."""
        from repro.core.greedy import greedy_schedule
        from repro.workloads.clusters import bounded_ratio_cluster
        from repro.workloads.generator import multicast_from_cluster

        worse_somewhere = False
        for seed in range(8):
            nodes = bounded_ratio_cluster(12, seed, ratio_range=(1.5, 1.85))
            m = multicast_from_cluster(nodes, latency=3)
            ours = greedy_schedule(m).reception_completion
            theirs = node_model_schedule(m).reception_completion
            assert ours <= theirs + 1e-9
            if theirs > ours + 1e-9:
                worse_somewhere = True
        assert worse_somewhere
