"""Unit tests for the affine overhead model (paper footnote 1)."""

import pytest

from repro.exceptions import ModelError
from repro.model.linear import LinearCost, MachineSpec, NetworkSpec, instantiate


@pytest.fixture
def network():
    return NetworkSpec(
        machines=(
            MachineSpec("fast", LinearCost(8, 0.01), LinearCost(10, 0.012)),
            MachineSpec("mid", LinearCost(15, 0.02), LinearCost(20, 0.024)),
            MachineSpec("slow", LinearCost(40, 0.05), LinearCost(70, 0.06)),
        ),
        latency=LinearCost(30, 0.08),
    )


class TestLinearCost:
    def test_evaluation(self):
        assert LinearCost(10, 0.5).at(100, integral=False) == pytest.approx(60)

    def test_integral_rounds_up(self):
        assert LinearCost(1, 0.001).at(100) == 2  # 1.1 -> ceil -> 2

    def test_integral_minimum_one(self):
        assert LinearCost(0.1, 0).at(0) == 1

    def test_fixed_only(self):
        assert LinearCost(5).at(12345, integral=False) == 5

    def test_negative_components_rejected(self):
        with pytest.raises(ModelError):
            LinearCost(-1, 0)
        with pytest.raises(ModelError):
            LinearCost(0, -0.5)

    def test_zero_cost_rejected(self):
        with pytest.raises(ModelError):
            LinearCost(0, 0)

    def test_negative_message_rejected(self):
        with pytest.raises(ModelError):
            LinearCost(1, 1).at(-1)


class TestMachineSpec:
    def test_node_at(self):
        spec = MachineSpec("m", LinearCost(10, 0.01), LinearCost(12, 0.02))
        node = spec.node_at(1000)
        assert node.name == "m"
        assert node.send_overhead == 20
        assert node.receive_overhead == 32

    def test_ratio_depends_on_message_length(self):
        spec = MachineSpec("m", LinearCost(10, 0.05), LinearCost(18, 0.05))
        # small message: ratio near 18/10; huge message: ratio -> 1
        assert spec.ratio_at(1) > spec.ratio_at(100_000)
        assert spec.ratio_at(100_000) == pytest.approx(1.0, abs=0.01)


class TestNetworkSpec:
    def test_duplicate_names_rejected(self):
        spec = MachineSpec("x", LinearCost(1), LinearCost(1))
        with pytest.raises(ModelError, match="unique"):
            NetworkSpec(machines=(spec, spec), latency=LinearCost(1))


class TestInstantiate:
    def test_broadcast_by_default(self, network):
        mset = instantiate(network, "slow", 1000)
        assert mset.n == 2
        assert mset.source.name == "slow"

    def test_explicit_destinations(self, network):
        mset = instantiate(network, "fast", 500, destinations=["slow"])
        assert mset.n == 1
        assert mset.destinations[0].name == "slow"

    def test_folding_matches_manual_evaluation(self, network):
        mset = instantiate(network, "fast", 1000)
        mid = next(d for d in mset.destinations if d.name == "mid")
        assert mid.send_overhead == 35  # 15 + 0.02*1000
        assert mset.latency == 110  # 30 + 0.08*1000

    def test_unknown_source_rejected(self, network):
        with pytest.raises(ModelError, match="unknown source"):
            instantiate(network, "nope", 10)

    def test_unknown_destination_rejected(self, network):
        with pytest.raises(ModelError, match="unknown destination"):
            instantiate(network, "fast", 10, destinations=["nope"])

    def test_source_as_destination_rejected(self, network):
        with pytest.raises(ModelError, match="own destination"):
            instantiate(network, "fast", 10, destinations=["fast"])

    def test_message_length_changes_instance(self, network):
        small = instantiate(network, "slow", 16)
        large = instantiate(network, "slow", 65536)
        assert large.latency > small.latency
        assert large.source.send_overhead > small.source.send_overhead

    def test_schedulable_end_to_end(self, network):
        from repro.core.greedy import greedy_schedule

        mset = instantiate(network, "slow", 4096)
        s = greedy_schedule(mset)
        assert s.reception_completion > 0
        assert s.is_layered()
