"""Unit tests for the synthetic machine profiles."""

import pytest

from repro.model.machines import MACHINE_PROFILES, RATIO_RANGE, lan_network, profile
from repro.model.linear import instantiate


class TestProfiles:
    def test_four_generations(self):
        assert len(MACHINE_PROFILES) == 4

    def test_lookup(self):
        assert profile("ultra").name == "ultra"

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            profile("cray")

    @pytest.mark.parametrize("size", [64, 1024, 16384])
    def test_ratios_within_published_range(self, size):
        lo, hi = RATIO_RANGE
        for spec in MACHINE_PROFILES.values():
            assert lo - 0.05 <= spec.ratio_at(size) <= hi + 0.05, (
                f"{spec.name} ratio {spec.ratio_at(size):.3f} at {size}B "
                f"outside the published band"
            )

    def test_generations_ordered_by_speed(self):
        # ultra < pentium_ii < sparc5 < sparc1 in send cost at any size
        for size in (64, 4096):
            sends = [
                MACHINE_PROFILES[name].send.at(size, integral=False)
                for name in ("ultra", "pentium_ii", "sparc5", "sparc1")
            ]
            assert sends == sorted(sends)


class TestLanNetwork:
    def test_counts_and_names(self):
        net = lan_network({"ultra": 2, "sparc1": 1})
        names = sorted(m.name for m in net.machines)
        assert names == ["sparc10", "ultra0", "ultra1"]

    def test_instantiates_correlated_cluster(self):
        net = lan_network({"ultra": 3, "pentium_ii": 2, "sparc1": 2})
        mset = instantiate(net, "sparc10", 1024)
        assert mset.correlated
        assert mset.n == 6

    def test_heterogeneity_magnitude(self):
        # slowest/fastest send overhead ratio should be a small integer
        # factor (about 6x), mirroring the NOW generations of [2]
        net = lan_network({"ultra": 1, "sparc1": 1})
        mset = instantiate(net, "ultra0", 1024)
        ratio = mset.destinations[0].send_overhead / mset.source.send_overhead
        assert ratio != 1
        assert 3 <= max(ratio, 1 / ratio) <= 10
