"""E3 benchmark — Lemma 1: greedy is O(n log n).

The timed kernel is exactly the greedy; normalized cost per (n log2 n) is
attached per size so the flatness claim is visible in the report.
"""

import math

import pytest

from repro.core.greedy import greedy_schedule
from repro.workloads.clusters import bounded_ratio_cluster
from repro.workloads.generator import multicast_from_cluster

SIZES = [256, 1024, 4096, 16384]


@pytest.mark.parametrize("n", SIZES)
def test_greedy_scaling(benchmark, n):
    nodes = bounded_ratio_cluster(n + 1, seed=0)
    mset = multicast_from_cluster(nodes, latency=2, source="slowest")
    schedule = benchmark(greedy_schedule, mset)
    assert schedule.is_layered()
    benchmark.extra_info["n"] = n
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["per_nlogn_ns"] = round(
            benchmark.stats["mean"] / (n * math.log2(n)) * 1e9, 3
        )


def test_greedy_nlogn_shape():
    """Non-timed assertion: the n log n model fits the measured curve."""
    import time

    from repro.analysis.complexity import fit_nlogn

    times = []
    for n in SIZES:
        nodes = bounded_ratio_cluster(n + 1, seed=0)
        mset = multicast_from_cluster(nodes, latency=2)
        samples = []
        for _ in range(3):
            t0 = time.perf_counter()
            greedy_schedule(mset)
            samples.append(time.perf_counter() - t0)
        times.append(sorted(samples)[1])
    fit = fit_nlogn(SIZES, times)
    assert fit.r_squared > 0.95, f"n log n fit R^2 = {fit.r_squared:.4f}"
