"""E9 benchmark — Corollary 1 exhaustive verification cost.

Times the exhaustive layered enumeration against a single greedy run on the
same instance — the 'theorem vs brute force' cost gap — and asserts the
Corollary 1 equality.
"""

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.layered import min_layered_delivery_completion
from repro.workloads.clusters import bounded_ratio_cluster
from repro.workloads.generator import multicast_from_cluster


def _instance(n=6, seed=0):
    nodes = bounded_ratio_cluster(n + 1, seed)
    return multicast_from_cluster(nodes, latency=2)


def test_exhaustive_layered_minimum(benchmark):
    mset = _instance()
    best = benchmark(min_layered_delivery_completion, mset)
    assert best == pytest.approx(greedy_schedule(mset).delivery_completion)
    benchmark.extra_info["min_layered_D"] = best


def test_greedy_same_answer(benchmark):
    mset = _instance()
    schedule = benchmark(greedy_schedule, mset)
    assert schedule.delivery_completion == pytest.approx(
        min_layered_delivery_completion(mset)
    )
    benchmark.extra_info["greedy_D"] = schedule.delivery_completion
