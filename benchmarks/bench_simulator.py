"""Simulator benchmark — testbed-substitute throughput.

Not tied to a single paper artifact: this times the discrete-event executor
that validates every experiment, at realistic sizes, and asserts the
exactness contract (simulated == analytic) that the substitution in
DESIGN.md relies on.
"""

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.simulation.executor import simulate_schedule
from repro.workloads.clusters import bounded_ratio_cluster
from repro.workloads.generator import multicast_from_cluster

SIZES = [128, 1024]


@pytest.mark.parametrize("n", SIZES)
def test_simulate_greedy_schedule(benchmark, n):
    nodes = bounded_ratio_cluster(n + 1, seed=1)
    mset = multicast_from_cluster(nodes, latency=2)
    schedule = reverse_leaves(greedy_schedule(mset))
    result = benchmark(simulate_schedule, schedule)
    assert result.reception_completion == schedule.reception_completion
    benchmark.extra_info["n"] = n
    benchmark.extra_info["events"] = result.events_processed


def test_simulator_event_rate(benchmark):
    nodes = bounded_ratio_cluster(2049, seed=2)
    mset = multicast_from_cluster(nodes, latency=2)
    schedule = greedy_schedule(mset)
    result = benchmark(simulate_schedule, schedule)
    benchmark.extra_info["events_per_run"] = result.events_processed
