"""Amortized batch planning — group-solve sweeps vs per-instance solves.

Plans a same-type-system sweep (every destination mix of a two-type
network, plus power-of-two-rescaled duplicates that canonicalize onto the
same bucket) through :meth:`repro.api.Planner.plan_batch` with
``group_solve=True`` — one optimal table answers the whole sweep — and
per-instance with table reuse off.  The speedup is gated as a committed
machine-independent floor by the ``batch_amortized`` perf kernel; here the
timed halves are reported side by side and the outputs asserted identical.
"""

from repro.api import Planner, PlanRequest
from repro.core.multicast import MulticastSet

TOP = 12


def _sweep():
    requests = []
    for scale in (1, 2):
        for fast in range(TOP + 1):
            for slow in range(TOP + 1):
                if fast + slow == 0:
                    continue
                mset = MulticastSet.from_overheads(
                    source=(2 * scale, 3 * scale),
                    destinations=[(scale, scale)] * fast
                    + [(2 * scale, 3 * scale)] * slow,
                    latency=scale,
                )
                requests.append(PlanRequest(instance=mset, solver="dp"))
    return requests


def test_group_solve_sweep(benchmark):
    requests = _sweep()

    def grouped():
        return Planner(cache_size=0).plan_batch(requests, group_solve=True)

    batch = benchmark(grouped)
    assert len(batch) == len(requests)
    benchmark.extra_info["instances"] = len(requests)
    benchmark.extra_info["instances_per_s"] = round(len(batch) / batch.elapsed_s)


def test_per_instance_sweep(benchmark):
    requests = _sweep()

    def per_instance():
        return Planner(cache_size=0, reuse_tables=False).plan_batch(
            requests, group_solve=False
        )

    batch = benchmark(per_instance)
    assert len(batch) == len(requests)
    benchmark.extra_info["instances"] = len(requests)
    benchmark.extra_info["instances_per_s"] = round(len(batch) / batch.elapsed_s)


def test_group_equals_per_instance():
    """Non-timed: the contract — grouping changes nothing but wall-clock."""
    requests = _sweep()
    grouped = Planner(cache_size=0).plan_batch(requests, group_solve=True)
    direct = Planner(cache_size=0, reuse_tables=False).plan_batch(
        requests, group_solve=False
    )
    assert grouped.values() == direct.values()
    assert [r.schedule for r in grouped] == [r.schedule for r in direct]
    assert [r.provenance for r in grouped] == [r.provenance for r in direct]
