"""E7 benchmark — scheduler shoot-out under the receive-send model.

Times every registered (heuristic) solver on the same two-class instance
through the :mod:`repro.api` façade and attaches its completion relative to
the paper's greedy+reversal; the expected shape (the paper's algorithm wins
or ties) is asserted.
"""

import pytest

from repro.api import Planner, solver_items
from repro.workloads.clusters import two_class_cluster
from repro.workloads.generator import multicast_from_cluster

N = 128

SCHEDULERS = [e.name for e in solver_items() if not e.capabilities.exact]


def _instance():
    n_slow = (N + 1) // 3
    nodes = two_class_cluster(N + 1 - n_slow, n_slow)
    return multicast_from_cluster(nodes, latency=1, source="slowest")


@pytest.mark.parametrize("name", SCHEDULERS)
def test_scheduler(benchmark, planner, name):
    mset = _instance()
    result = benchmark(planner.plan, mset, name)
    reference = planner.plan(mset, "greedy+reversal").value
    rel = result.value / reference
    benchmark.extra_info["completion"] = result.value
    benchmark.extra_info["vs_greedy_reversal"] = round(rel, 4)
    if name == "greedy+ls":
        assert rel <= 1.0 + 1e-9  # local search may only improve
    else:
        assert rel >= 1.0 - 1e-9  # the paper's algorithm wins or ties


def test_expected_ordering():
    """Non-timed: the E7 shape — who wins, and by roughly what class."""
    mset = _instance()
    planner = Planner()
    values = {name: planner.plan(mset, name).value for name in SCHEDULERS}
    best = values["greedy+reversal"]
    assert best == min(v for k, v in values.items() if k != "greedy+ls")
    assert values["greedy+ls"] <= best
    assert values["greedy"] <= values["fnf"] + 1e-9  # receive-awareness helps
    assert values["fnf"] <= values["random"]  # any greedy beats no scheduling
    assert values["binomial"] < values["star"]  # log-depth beats source-only
    assert values["star"] < values["chain"]  # with L=1, depth-n pipeline loses
