"""Planner benchmark — batched-parallel vs serial planning throughput.

Plans the same 200-instance suite through :meth:`repro.api.Planner.plan_batch`
serially and with a thread-pool fan-out, and reports instances/second for
each mode plus the LRU-cache effect on a repeated batch.  Parallel results
are asserted identical to serial ones (the batch API's core contract).
"""

from repro.api import Planner, PlanRequest
from repro.workloads.clusters import bounded_ratio_cluster
from repro.workloads.generator import multicast_from_cluster

SUITE_SIZE = 200
N = 24
JOBS = 4


def _suite():
    requests = []
    for seed in range(SUITE_SIZE):
        nodes = bounded_ratio_cluster(N + 1, seed)
        mset = multicast_from_cluster(nodes, latency=1 + seed % 3, seed=seed)
        requests.append(PlanRequest(instance=mset, solver="greedy+reversal"))
    return requests


def test_batch_serial(benchmark):
    requests = _suite()
    planner = Planner(cache_size=0)
    batch = benchmark(planner.plan_batch, requests, jobs=1)
    assert len(batch) == SUITE_SIZE
    benchmark.extra_info["instances_per_s"] = round(SUITE_SIZE / batch.elapsed_s)


def test_batch_parallel(benchmark):
    requests = _suite()
    planner = Planner(cache_size=0)
    batch = benchmark(planner.plan_batch, requests, jobs=JOBS)
    assert len(batch) == SUITE_SIZE
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["instances_per_s"] = round(SUITE_SIZE / batch.elapsed_s)


def test_batch_warm_cache(benchmark):
    requests = _suite()
    planner = Planner(cache_size=SUITE_SIZE)
    planner.plan_batch(requests)  # warm
    batch = benchmark(planner.plan_batch, requests, jobs=1)
    assert batch.cache_hits == SUITE_SIZE
    benchmark.extra_info["instances_per_s"] = round(SUITE_SIZE / batch.elapsed_s)


def test_parallel_equals_serial():
    """Non-timed: the contract — fan-out changes nothing but wall-clock."""
    requests = _suite()
    serial = Planner(cache_size=0).plan_batch(requests, jobs=1)
    parallel = Planner(cache_size=0).plan_batch(requests, jobs=JOBS)
    assert serial.values() == parallel.values()
    assert [r.schedule for r in serial] == [r.schedule for r in parallel]
