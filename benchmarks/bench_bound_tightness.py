"""E6 benchmark — bound machinery cost and tightness measurements.

Times the certified-lower-bound computation and the exact solver (the two
ingredients of the E6 decomposition) and attaches the measured factor slack.
"""

from repro.core.bounds import (
    certified_lower_bound,
    theorem1_factor,
)
from repro.core.greedy import greedy_schedule
from repro.workloads.clusters import uniform_ratio_cluster
from repro.workloads.generator import multicast_from_cluster


def _instance(n=7, seed=3):
    nodes = uniform_ratio_cluster(n + 1, seed, ratio=2)
    return multicast_from_cluster(nodes, latency=1)


def test_certified_lower_bound_cost(benchmark):
    mset = _instance(n=64)
    lb = benchmark(certified_lower_bound, mset)
    assert lb > 0
    benchmark.extra_info["lower_bound"] = lb


def test_exact_solver_cost(benchmark, planner):
    mset = _instance()
    solution = benchmark(planner.plan, mset, "exact")
    greedy = greedy_schedule(mset).reception_completion
    factor = theorem1_factor(mset)
    measured = greedy / solution.value
    assert measured < factor  # the multiplicative factor alone covers greedy
    benchmark.extra_info["measured_ratio"] = round(measured, 4)
    benchmark.extra_info["theorem1_factor"] = factor
    benchmark.extra_info["expanded"] = solution.provenance["nodes_expanded"]
