"""Conformance harness throughput — the verifier must stay CI-fast.

Times the differential runner over the ``smoke`` corpus (every family,
every solver, full invariant catalogue) and reports scenarios verified
per second plus the invariant-check rate.  A throughput regression here
means the CI gate (`conformance run --suite quick`) is drifting toward
its 2-minute budget, so the harness itself is benchmarked like any other
hot path.
"""

from repro.conformance import ConformanceRunner, generate_corpus


def _sweep(specs, **runner_kwargs):
    report = ConformanceRunner(service_every=0, shrink=False, **runner_kwargs).run(specs)
    assert report.ok, report.summary()
    return report


def test_corpus_throughput(benchmark):
    """Full invariant suite over the smoke corpus (the CI gate in miniature)."""
    specs = generate_corpus("smoke")
    report = benchmark(_sweep, specs)
    benchmark.extra_info["scenarios"] = report.scenarios
    benchmark.extra_info["invariant_checks"] = report.checks
    benchmark.extra_info["scenarios_per_s"] = round(
        report.scenarios / report.elapsed_s
    )
    benchmark.extra_info["solvers"] = len(report.solvers)


def test_oracle_path_throughput(benchmark):
    """Oracle-heavy slice: optimality + bounds only, no metamorphic re-solves."""
    specs = [s for s in generate_corpus("smoke") if s.n <= 6]
    report = benchmark(
        _sweep,
        specs,
        invariants=["oracle-optimality", "bounds-sandwich", "value-consistency"],
    )
    benchmark.extra_info["scenarios_per_s"] = round(
        report.scenarios / report.elapsed_s
    )


def test_replay_throughput(benchmark):
    """Simulator-replay slice: every schedule executed on the event engine."""
    specs = generate_corpus("smoke")
    report = benchmark(_sweep, specs, invariants=["replay-agreement"])
    benchmark.extra_info["scenarios_per_s"] = round(
        report.scenarios / report.elapsed_s
    )


def test_quick_gate_corpus_shape():
    """Non-timed contract: the CI gate corpus clears the 200-scenario floor.

    Wall-clock is deliberately *not* asserted here — loaded CI workers
    make throughput assertions flaky; the 2-minute budget is enforced by
    the conformance CI job's ``timeout``, and throughput trends are what
    the timed benchmarks above track.
    """
    specs = generate_corpus("quick")
    assert len(specs) >= 200
