"""E4 benchmark — Theorem 2: the DP is optimal and O(n^{2k}).

Times ``solve_dp`` across (k, n); asserts optimality against branch-and-
bound on the small configurations.
"""

import pytest

from repro.api import Planner
from repro.experiments.dp_scaling import TYPE_SETS, _split
from repro.workloads.clusters import limited_type_cluster
from repro.workloads.generator import multicast_from_cluster

CONFIGS = [(1, 32), (1, 128), (2, 16), (2, 48), (3, 12), (3, 21)]


def _instance(k: int, n: int):
    nodes = limited_type_cluster(TYPE_SETS[k], _split(n + 1, k))
    return multicast_from_cluster(nodes, latency=1, source="slowest")


@pytest.mark.parametrize("k,n", CONFIGS)
def test_dp_scaling(benchmark, planner, k, n):
    mset = _instance(k, n)
    solution = benchmark(planner.plan, mset, "dp")
    benchmark.extra_info["k"] = k
    benchmark.extra_info["n"] = n
    benchmark.extra_info["states"] = solution.provenance["states_computed"]
    benchmark.extra_info["optimum"] = solution.value
    if n <= 8:
        assert solution.value == pytest.approx(planner.plan(mset, "exact").value)


def test_dp_polynomial_degree():
    """Non-timed: log-log slope stays at or below Theorem 2's 2k."""
    from repro.analysis.complexity import fit_power

    planner = Planner(cache_size=0, reuse_tables=False)
    for k, sizes in ((2, (16, 32, 48, 64)), (3, (9, 15, 21, 27))):
        times = []
        for n in sizes:
            mset = _instance(k, n)
            times.append(planner.plan(mset, "dp").elapsed_s)
        exponent, _ = fit_power(sizes, times)
        assert exponent <= 2 * k + 0.5, (
            f"k={k}: measured exponent {exponent:.2f} exceeds Theorem 2's {2*k}"
        )
