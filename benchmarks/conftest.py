"""Shared fixtures for the benchmark harness.

Every ``bench_*.py`` regenerates one experiment of DESIGN.md's index (E1..E9):
the timed kernel is the experiment's core operation and the paper-relevant
measurements are attached as ``benchmark.extra_info`` so a benchmark run
doubles as a results table.
"""

import pytest

from repro.api import Planner
from repro.core.multicast import MulticastSet

collect_ignore: list = []


def pytest_collection_modifyitems(items):
    # stable ordering: by file then name, so report rows group by experiment
    items.sort(key=lambda item: (str(item.fspath), item.name))


@pytest.fixture
def fig1_mset() -> MulticastSet:
    return MulticastSet.from_overheads(
        source=(2, 3),
        destinations=[(1, 1), (1, 1), (1, 1), (2, 3)],
        latency=1,
    )


@pytest.fixture
def planner() -> Planner:
    """Cache- and table-reuse-disabled planner: timed kernels must
    measure real solves, not LRU hits or optimal-table lookups."""
    return Planner(cache_size=0, reuse_tables=False)
