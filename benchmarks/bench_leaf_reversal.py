"""E5 benchmark — the leaf reversal: cost of the pass and measured gains."""

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.workloads.clusters import two_class_cluster
from repro.workloads.generator import multicast_from_cluster
from repro.workloads.suites import suite

SIZES = [64, 512, 4096]


@pytest.mark.parametrize("n", SIZES)
def test_reversal_pass_cost(benchmark, n):
    n_slow = max(1, (n + 1) // 3)
    nodes = two_class_cluster(n + 1 - n_slow, n_slow)
    mset = multicast_from_cluster(nodes, latency=1)
    base = greedy_schedule(mset)
    refined = benchmark(reverse_leaves, base)
    assert refined.reception_completion <= base.reception_completion
    benchmark.extra_info["n"] = n
    benchmark.extra_info["gain_pct"] = round(
        (base.reception_completion - refined.reception_completion)
        / base.reception_completion
        * 100,
        3,
    )


def test_reversal_never_hurts_across_suites():
    """Non-timed: zero regressions over every suite instance."""
    for name in ("bounded-ratio", "two-class", "pareto", "uniform-ratio"):
        improved = 0
        for _n, _seed, mset in suite(name).instances():
            before = greedy_schedule(mset)
            after = reverse_leaves(before)
            assert after.reception_completion <= before.reception_completion + 1e-9
            if after.reception_completion < before.reception_completion - 1e-9:
                improved += 1
        assert improved >= 0  # bookkeeping; strict gains asserted in E5 tests
