"""Planning-service benchmark — cold solves vs warm persistent-store hits.

Serves the E1 workload (the Figure 1 instance plus scaled fast/slow
variants of it, each planned with E1's solver set: greedy,
greedy+reversal, dp) through :class:`repro.service.PlanningService` in two
configurations:

* **cold** — no persistent store, LRU disabled: every request is a real
  solve on a worker shard;
* **warm** — a *restarted* service pointing at the store the cold run
  populated, LRU disabled: every request is served from disk
  (``tier == "store"``) without solving anything.

``test_warm_store_beats_cold_solve_5x`` is the acceptance gate: the warm
path must be at least 5x faster than cold, and the killed-and-restarted
service must return plans identical to the originals (same value, same
schedule) purely from the persistent store.
"""

import time

from repro.api import Planner, PlanRequest
from repro.core.multicast import MulticastSet
from repro.service import InProcessClient, PlanningService

SOLVERS = ("greedy", "greedy+reversal", "dp")
SIZES = (8, 12, 16, 20, 24)
# three-type mixes keep the cold solves expensive: the iterative DP made
# two-type instances near-free, which would let fixed service overhead
# dominate both paths and wash out the warm-vs-cold contrast this
# benchmark exists to measure
K3_SIZES = (15, 21)


def _e1_workload():
    """Figure 1 plus E1-style two/three-type instances at growing sizes."""
    instances = [
        MulticastSet.from_overheads(
            source=(2, 3),
            destinations=[(1, 1), (1, 1), (1, 1), (2, 3)],
            latency=1,
        )
    ]
    for n in SIZES:
        instances.append(
            MulticastSet.from_overheads(
                source=(2, 3),
                destinations=[(1, 1)] * (n // 2) + [(2, 3)] * (n - n // 2),
                latency=1,
            )
        )
    for n in K3_SIZES:
        third = n // 3
        instances.append(
            MulticastSet.from_overheads(
                source=(2, 3),
                destinations=[(1, 1)] * third
                + [(2, 3)] * third
                + [(5, 8)] * (n - 2 * third),
                latency=1,
            )
        )
    return [
        PlanRequest(instance=mset, solver=solver, tag=f"{mset.n}/{solver}")
        for mset in instances
        for solver in SOLVERS
    ]


def _cold_service(store_path=None):
    # cache_size=0: no LRU, so every benchmark round measures the same path
    # (real solves cold, store reads warm) instead of memory hits
    return PlanningService(
        planner=Planner(cache_size=0, reuse_tables=False),
        store_path=store_path,
        num_shards=2,
        worker_mode="thread",
    )


def _serve_all(service, requests, client_id):
    client = InProcessClient(service, client_id=client_id)
    return [client.plan(request) for request in requests]


def test_cold_solve_throughput(benchmark, tmp_path):
    requests = _e1_workload()
    with _cold_service() as service:
        served = benchmark(_serve_all, service, requests, "bench-cold")
    assert all(plan.tier == "solve" for plan in served)
    benchmark.extra_info["requests"] = len(requests)


def test_warm_store_hit_throughput(benchmark, tmp_path):
    requests = _e1_workload()
    store = tmp_path / "planstore"
    with _cold_service(store) as service:
        _serve_all(service, requests, "bench-warm-populate")
    # a *fresh* service on the populated store: disk tier only, no memory
    with _cold_service(store) as service:
        served = benchmark(_serve_all, service, requests, "bench-warm")
    assert all(plan.tier == "store" for plan in served)
    benchmark.extra_info["requests"] = len(requests)


def test_warm_store_beats_cold_solve_5x(tmp_path):
    """Acceptance: warm >= 5x cold, restart serves identical plans."""
    requests = _e1_workload()
    store = tmp_path / "planstore"

    with _cold_service(store) as service:
        start = time.perf_counter()
        cold = _serve_all(service, requests, "acceptance-cold")
        cold_elapsed = time.perf_counter() - start
    assert all(plan.tier == "solve" for plan in cold)

    # "kill" the service (stopped above) and restart on the same store
    with _cold_service(store) as service:
        start = time.perf_counter()
        warm = _serve_all(service, requests, "acceptance-warm")
        warm_elapsed = time.perf_counter() - start
    assert all(plan.tier == "store" for plan in warm)

    # identical PlanResults out of the persistent store
    for before, after in zip(cold, warm):
        assert after.result.value == before.result.value
        assert after.result.schedule == before.result.schedule
        assert after.result.solver == before.result.solver

    assert warm_elapsed * 5 <= cold_elapsed, (
        f"warm store path not >=5x faster: cold {cold_elapsed:.4f}s, "
        f"warm {warm_elapsed:.4f}s ({cold_elapsed / warm_elapsed:.1f}x)"
    )
