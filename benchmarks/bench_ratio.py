"""E2 benchmark — Theorem 1: greedy vs optimal under bounded ratios.

Times the greedy on the Theorem 1 habitat while attaching the measured
approximation ratios (vs branch-and-bound optimum for small n, certified
lower bound for larger n).  The paper's inequality is asserted on every
exactly-solved instance.
"""

import pytest

from repro.api import plan
from repro.core.bounds import certified_lower_bound, theorem1_bound
from repro.core.greedy import greedy_schedule
from repro.workloads.clusters import bounded_ratio_cluster
from repro.workloads.generator import multicast_from_cluster

SMALL = [(4, 0), (6, 1), (8, 2)]
LARGE = [(64, 0), (256, 1)]


@pytest.mark.parametrize("n,seed", SMALL)
def test_ratio_vs_exact_optimum(benchmark, n, seed):
    nodes = bounded_ratio_cluster(n + 1, seed)
    mset = multicast_from_cluster(nodes, latency=2)
    schedule = benchmark(greedy_schedule, mset)
    opt = plan(mset, solver="exact").value
    greedy = schedule.reception_completion
    assert greedy < theorem1_bound(mset, opt)  # Theorem 1, strict
    benchmark.extra_info["n"] = n
    benchmark.extra_info["ratio"] = round(greedy / opt, 4)
    benchmark.extra_info["theorem1_guarantee"] = theorem1_bound(mset, opt)


@pytest.mark.parametrize("n,seed", LARGE)
def test_ratio_vs_certified_lower_bound(benchmark, n, seed):
    nodes = bounded_ratio_cluster(n + 1, seed)
    mset = multicast_from_cluster(nodes, latency=2)
    schedule = benchmark(greedy_schedule, mset)
    lb = certified_lower_bound(mset)
    ratio_upper = schedule.reception_completion / lb
    benchmark.extra_info["n"] = n
    benchmark.extra_info["ratio_upper_bound"] = round(ratio_upper, 4)
    # sanity: even against a lower bound the measured ratio stays far
    # below the Theorem 1 factor
    from repro.core.bounds import theorem1_factor

    assert ratio_upper < theorem1_factor(mset) + mset.beta / lb
