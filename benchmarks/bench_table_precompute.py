"""E8 benchmark — Theorem 2 closing note: build once, query in O(1).

Times (a) the full-table build, (b) a post-build query, and (c) a fresh DP
solve of the same query, so the report shows the amortization directly.
"""

import pytest

from repro.core.dp_table import OptimalTable
from repro.workloads.clusters import limited_type_cluster
from repro.workloads.generator import multicast_from_cluster

TYPES = [(1, 1), (3, 5)]
COUNTS = [12, 12]


def test_table_build(benchmark):
    def build():
        return OptimalTable(TYPES, COUNTS, latency=1).build()

    table = benchmark(build)
    benchmark.extra_info["entries"] = table.entries


def test_table_query_after_build(benchmark):
    table = OptimalTable(TYPES, COUNTS, latency=1).build()
    value = benchmark(table.completion, 1, (12, 11))
    assert value > 0
    benchmark.extra_info["optimum"] = value


def test_fresh_dp_solve_same_query(benchmark, planner):
    nodes = limited_type_cluster(TYPES, [12, 12])
    mset = multicast_from_cluster(nodes, latency=1, source="slowest")
    solution = benchmark(planner.plan, mset, "dp")
    table = OptimalTable(TYPES, COUNTS, latency=1).build()
    assert solution.value == pytest.approx(table.completion(1, (12, 11)))
    benchmark.extra_info["optimum"] = solution.value


def test_schedule_materialization(benchmark):
    table = OptimalTable(TYPES, COUNTS, latency=1).build()
    nodes = limited_type_cluster(TYPES, [12, 12])
    mset = multicast_from_cluster(nodes, latency=1, source="slowest")
    schedule = benchmark(table.schedule_for, mset)
    assert schedule.reception_completion == pytest.approx(
        table.completion(1, (12, 11))
    )
