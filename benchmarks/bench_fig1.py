"""E1 benchmark — Figure 1: schedules (a)/(b) and the paper's algorithms.

Regenerates the Figure 1 numbers (completions 10 and 9, narrated receptions
4/6/7/10, true optimum 8) while timing the constructions.
"""

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import greedy_with_reversal
from repro.experiments.fig1 import (
    PAPER_COMPLETION_A,
    PAPER_COMPLETION_B,
    figure1_schedule_a,
    figure1_schedule_b,
)


def test_figure1_schedule_a(benchmark, fig1_mset):
    schedule = benchmark(figure1_schedule_a, fig1_mset)
    assert schedule.reception_completion == PAPER_COMPLETION_A
    benchmark.extra_info["completion"] = schedule.reception_completion
    benchmark.extra_info["paper_value"] = PAPER_COMPLETION_A


def test_figure1_schedule_b(benchmark, fig1_mset):
    schedule = benchmark(figure1_schedule_b, fig1_mset)
    assert schedule.reception_completion == PAPER_COMPLETION_B
    benchmark.extra_info["completion"] = schedule.reception_completion
    benchmark.extra_info["paper_value"] = PAPER_COMPLETION_B


def test_figure1_greedy(benchmark, fig1_mset):
    schedule = benchmark(greedy_schedule, fig1_mset)
    assert schedule.reception_completion == 10  # ties Figure 1(a)
    assert sorted(schedule.reception_times[1:]) == [4, 6, 7, 10]
    benchmark.extra_info["completion"] = schedule.reception_completion


def test_figure1_greedy_with_reversal(benchmark, fig1_mset):
    schedule = benchmark(greedy_with_reversal, fig1_mset)
    assert schedule.reception_completion == 8  # optimal
    benchmark.extra_info["completion"] = schedule.reception_completion


def test_figure1_dp_optimum(benchmark, planner, fig1_mset):
    result = benchmark(planner.plan, fig1_mset, "dp")
    assert result.value == 8
    benchmark.extra_info["optimum"] = result.value
