"""E10 benchmark — greedy ingredient ablation (extension).

Times each ablated variant on the same instance and attaches its completion
relative to the full algorithm, so the benchmark report doubles as the
ablation table.
"""

import random

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.experiments.ablation import greedy_with_insertion_order, random_attachment
from repro.workloads.clusters import two_class_cluster
from repro.workloads.generator import multicast_from_cluster

N = 64


def _instance():
    n_slow = (N + 1) // 3
    nodes = two_class_cluster(N + 1 - n_slow, n_slow)
    return multicast_from_cluster(nodes, latency=1, source="slowest")


def _full(mset):
    return reverse_leaves(greedy_schedule(mset))


def _no_reversal(mset):
    return greedy_schedule(mset)


def _reverse_sorted(mset):
    return reverse_leaves(
        greedy_with_insertion_order(mset, list(range(mset.n, 0, -1)))
    )


def _random_insertion(mset):
    order = list(range(1, mset.n + 1))
    random.Random(17).shuffle(order)
    return reverse_leaves(greedy_with_insertion_order(mset, order))


def _random_attach(mset):
    return reverse_leaves(random_attachment(mset, seed=17))


VARIANTS = {
    "full": _full,
    "no-reversal": _no_reversal,
    "reverse-sorted-insertion": _reverse_sorted,
    "random-insertion": _random_insertion,
    "random-attachment": _random_attach,
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_ablation_variant(benchmark, variant):
    mset = _instance()
    schedule = benchmark(VARIANTS[variant], mset)
    full_value = _full(mset).reception_completion
    rel = schedule.reception_completion / full_value
    benchmark.extra_info["vs_full"] = round(rel, 4)
    assert rel >= 1.0 - 1e-9  # no ablation may beat the full algorithm


def test_ablation_ordering():
    """Non-timed: random attachment is the worst ablation, full the best."""
    mset = _instance()
    values = {name: fn(mset).reception_completion for name, fn in VARIANTS.items()}
    assert values["full"] == min(values.values())
    assert values["random-attachment"] == max(values.values())
