"""Structure-oblivious baseline schedulers.

These are the "what anyone would try first" comparison points of the E7
model-comparison experiment:

* **sequential star** — the source sends every message itself ("only
  point-to-point communication is supported" done naively, cf. Section 1's
  motivation);
* **linear chain** — each node forwards to exactly one successor (maximal
  pipelining, no fan-out);
* **random tree** — seeded uniformly random recruitment, the null model
  separating "any tree" from "a good tree".

Each is evaluated under the full receive-send model; their gaps to the
paper's greedy quantify how much heterogeneity-awareness and fan-out
scheduling buy.
"""

from __future__ import annotations

import random
from typing import List

from repro.algorithms.registry import register
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule

__all__ = ["sequential_star", "sequential_star_naive", "linear_chain", "random_tree"]


@register("star", "source sends everything; slow receivers served first")
def sequential_star(mset: MulticastSet) -> Schedule:
    """Star with the optimal transmission order.

    For a fixed star the delivery time of the i-th transmission is fixed,
    so pairing slots (ascending) with receive overheads (descending)
    minimizes ``R_T`` — the same rearrangement argument as leaf reversal.
    """
    order = sorted(range(1, mset.n + 1), key=lambda i: (-mset.receive(i), i))
    return Schedule(mset, {0: order})


@register("star-naive", "source sends everything in canonical overhead order")
def sequential_star_naive(mset: MulticastSet) -> Schedule:
    """Star serving fast nodes first — the worst natural ordering."""
    return Schedule(mset, {0: list(range(1, mset.n + 1))})


@register("chain", "linear forwarding pipeline, fastest senders first")
def linear_chain(mset: MulticastSet) -> Schedule:
    """Each node forwards to the next; fast nodes placed early in the chain.

    Destinations are chained in canonical order (non-decreasing overhead):
    early chain positions relay the message onward, so they should be the
    fast senders — the chain analogue of layering.
    """
    children = {i: [i + 1] for i in range(0, mset.n)}
    return Schedule(mset, children)


def random_tree(mset: MulticastSet, seed: int = 0) -> Schedule:
    """A uniformly random recruitment tree (seeded, deterministic).

    Destinations join in a random order; each attaches to a uniformly
    random already-informed node.  This is the "no scheduling at all" null
    baseline.
    """
    rng = random.Random(seed)
    order = list(range(1, mset.n + 1))
    rng.shuffle(order)
    in_tree: List[int] = [0]
    children: dict[int, List[int]] = {}
    for node in order:
        parent = rng.choice(in_tree)
        children.setdefault(parent, []).append(node)
        in_tree.append(node)
    return Schedule(mset, children)


@register("random", "seeded uniformly random recruitment tree")
def _random_tree_default(mset: MulticastSet) -> Schedule:
    return random_tree(mset, seed=0)
