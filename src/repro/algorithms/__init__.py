"""Multicast schedulers: the paper's algorithms plus related-work baselines.

All schedulers share the ``(MulticastSet) -> Schedule`` signature and are
discoverable by name through :func:`repro.algorithms.get_scheduler`:

========================  ====================================================
name                      algorithm
========================  ====================================================
``greedy``                the paper's O(n log n) greedy (Section 2)
``greedy+reversal``       greedy + Section 3 leaf reversal (the paper's pick)
``greedy+ls``             greedy + reversal + local search (extension)
``fnf``                   fastest-node-first of the node model [2, 9]
``binomial``              classic binomial tree [11]
``binomial-ff``           binomial tree, fastest-sender-first placement
``postal``                Bar-Noy/Kipnis postal-optimal shape [4]
``star``                  source-only sequential sends (best order)
``star-naive``            source-only sequential sends (fast-first order)
``chain``                 linear forwarding pipeline
``random``                seeded random recruitment tree
========================  ====================================================
"""

from repro.algorithms.registry import (
    Scheduler,
    available_schedulers,
    get_scheduler,
    register,
    scheduler_items,
)
from repro.algorithms.paper import greedy, greedy_reversed
from repro.algorithms.baselines import (
    linear_chain,
    random_tree,
    sequential_star,
    sequential_star_naive,
)
from repro.algorithms.binomial import binomial, binomial_fastest_first, binomial_tree_children
from repro.algorithms.fnf import fastest_node_first
from repro.algorithms.local_search import (
    LocalSearchResult,
    improve_schedule,
    local_search_schedule,
)
from repro.algorithms.postal import effective_lambda, postal_count, postal_shape, postal_tree

__all__ = [
    "Scheduler",
    "register",
    "get_scheduler",
    "available_schedulers",
    "scheduler_items",
    "greedy",
    "greedy_reversed",
    "sequential_star",
    "sequential_star_naive",
    "linear_chain",
    "random_tree",
    "binomial",
    "binomial_fastest_first",
    "binomial_tree_children",
    "fastest_node_first",
    "postal_count",
    "postal_shape",
    "postal_tree",
    "effective_lambda",
    "LocalSearchResult",
    "improve_schedule",
    "local_search_schedule",
]
