"""Fastest-node-first under the heterogeneous *node* model — the [2] baseline.

Banikazemi, Moorthy & Panda [2] schedule multicasts for the single-cost
node model (each node only has a message initiation cost) with a greedy
that serves the fastest uninformed node from the earliest-available sender.
E7 evaluates the tree that algorithm builds — seeing only the send
overheads — under the paper's full receive-send model.  The measured gap to
the paper's greedy is precisely the value of modelling receive overheads
and latency (the paper's Section 1 argument for the richer model of [3]).
"""

from __future__ import annotations

from repro.algorithms.registry import register
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.model.heterogeneous_node import node_model_schedule

__all__ = ["fastest_node_first"]


@register("fnf", "fastest-node-first greedy of the node model [2], "
                 "evaluated under the receive-send model")
def fastest_node_first(mset: MulticastSet) -> Schedule:
    """Tree of the node-model greedy, timed with receive-send semantics."""
    return node_model_schedule(mset)
