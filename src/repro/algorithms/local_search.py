"""Local-search schedule improvement (an upper-bound tightener).

The paper proves greedy (+ reversal) is within a constant factor of optimal
and asks (Section 5) whether better approximation algorithms exist.  This
module contributes a simple, deterministic hill-climber over schedules that
the experiment harness uses to tighten the *empirical* optimality gap on
instances too large for exact solvers:

* **node swap** — exchange the tree positions of two destinations (their
  subtrees stay with the positions, cf. the Lemma 2 interchange);
* **subtree reattach** — detach a subtree and append it as the last child
  of another node (not inside the detached subtree).

Moves are scanned in a fixed order and applied first-improvement; the
search stops at a local optimum or after ``max_rounds`` passes.  The result
is never worse than the seed (the seed is kept when no move helps).

Neighborhood reduction (lossless).  ``R_T`` equals the value of the
*critical chain* — the root-to-node path realizing the maximum reception
time.  A move can only reduce ``R_T`` if it changes some critical chain's
timing, which requires either (a) swapping a node that sits *on* a chain,
or (b) reattaching a node that sits on a chain or is an earlier sibling of
a chain node (its removal shifts the chain node's send slot down).  All
other moves leave every chain intact and therefore cannot improve, so the
scan enumerates only these candidates — the search visits the exact same
sequence of improving schedules as the full O(n^2) neighborhood at a
fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algorithms.registry import register
from repro.core.leaf_reversal import greedy_with_reversal, reverse_leaves
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule

__all__ = ["improve_schedule", "local_search_schedule", "LocalSearchResult"]


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a local-search run."""

    schedule: Schedule
    rounds: int
    moves_applied: int
    seed_value: float

    @property
    def improvement(self) -> float:
        """Absolute completion-time gain over the seed schedule."""
        return self.seed_value - self.schedule.reception_completion


def _plain_children(schedule: Schedule) -> Dict[int, List[int]]:
    return {
        parent: [child for child, _slot in kids]
        for parent, kids in schedule.children.items()
    }


def _swap_nodes(
    children: Dict[int, List[int]], a: int, b: int
) -> Dict[int, List[int]]:
    """Exchange the tree positions of nodes ``a`` and ``b``."""
    def m(v: int) -> int:
        return b if v == a else a if v == b else v

    return {m(p): [m(c) for c in kids] for p, kids in children.items()}


def _reattach(
    children: Dict[int, List[int]], node: int, new_parent: int
) -> Optional[Dict[int, List[int]]]:
    """Move ``node`` (with its subtree) under ``new_parent``; None if cyclic."""
    # forbid reattaching beneath the moved subtree
    stack, subtree = [node], {node}
    while stack:
        v = stack.pop()
        for c in children.get(v, ()):
            subtree.add(c)
            stack.append(c)
    if new_parent in subtree:
        return None
    out = {p: list(kids) for p, kids in children.items()}
    for p, kids in out.items():
        if node in kids:
            kids.remove(node)
            break
    out.setdefault(new_parent, []).append(node)
    return {p: kids for p, kids in out.items() if kids}


def _critical_candidates(schedule: Schedule) -> Tuple[List[int], List[int]]:
    """Nodes whose moves can lower ``R_T``.

    Returns ``(chain_nodes, reattach_candidates)``: one critical chain
    (non-root), and additionally the earlier siblings of chain nodes
    (whose removal shifts a chain node's slot down).  One chain suffices:
    an improving move must lower *every* maximizer, in particular this
    chain's, so it must involve these nodes — the restriction loses no
    improving move even when the maximum is tied.
    """
    n = schedule.multicast.n
    last = max(range(1, n + 1), key=lambda v: (schedule.reception_time(v), -v))
    chain: set[int] = set()
    w = last
    while w != 0:
        chain.add(w)
        w = schedule.parent_of(w)
    reattach = set(chain)
    for v in chain:
        parent = schedule.parent_of(v)
        slot_v = schedule.slot_of(v)
        for sibling, slot in schedule.children_of(parent):
            if slot < slot_v:
                reattach.add(sibling)
    return sorted(chain), sorted(reattach)


def improve_schedule(
    seed: Schedule,
    *,
    max_rounds: int = 25,
    apply_reversal: bool = True,
) -> LocalSearchResult:
    """First-improvement hill climbing from ``seed``.

    Parameters
    ----------
    seed:
        Starting schedule (must be canonical; slotted schedules are
        compacted first — compaction never increases times).
    max_rounds:
        Full neighborhood sweeps before giving up.
    apply_reversal:
        Run the Section 3 leaf reversal after every accepted move (cheap
        and never hurts), and once on the final schedule.
    """
    mset = seed.multicast
    current = seed.compact() if not seed.is_canonical() else seed
    if apply_reversal:
        current = reverse_leaves(current)
    best_value = current.reception_completion
    seed_value = min(seed.reception_completion, best_value)
    n = mset.n
    moves_applied = 0
    rounds = 0

    def accept(candidate: Schedule) -> bool:
        nonlocal current, best_value, moves_applied
        if apply_reversal:
            candidate = reverse_leaves(candidate)
        if candidate.reception_completion < best_value - 1e-12:
            current = candidate
            best_value = candidate.reception_completion
            moves_applied += 1
            return True
        return False

    for rounds in range(1, max_rounds + 1):
        improved = False
        # --- node swaps (one endpoint on a critical chain) ----------------
        chain_nodes, reattach_nodes = _critical_candidates(current)
        for a in chain_nodes:
            children = _plain_children(current)
            for b in range(1, n + 1):
                if b == a or mset.node(a).type_key == mset.node(b).type_key:
                    continue  # identical types: swap cannot change times
                if accept(Schedule(mset, _swap_nodes(children, a, b))):
                    improved = True
                    break  # current changed; rebuild children / candidates
        # --- subtree reattachments ----------------------------------------
        _, reattach_nodes = _critical_candidates(current)
        for node in reattach_nodes:
            children = _plain_children(current)
            for new_parent in range(0, n + 1):
                if new_parent == node:
                    continue
                moved = _reattach(children, node, new_parent)
                if moved is None:
                    continue
                if accept(Schedule(mset, moved)):
                    improved = True
                    break
        if not improved:
            break
    return LocalSearchResult(
        schedule=current,
        rounds=rounds,
        moves_applied=moves_applied,
        seed_value=seed_value,
    )


@register("greedy+ls", "greedy + reversal + first-improvement local search")
def local_search_schedule(mset: MulticastSet) -> Schedule:
    """Greedy + reversal seed, improved by hill climbing."""
    return improve_schedule(greedy_with_reversal(mset)).schedule
