"""Postal-model broadcast (Bar-Noy & Kipnis [4]) as a baseline scheduler.

The postal model abstracts a homogeneous message-passing system by a single
latency parameter ``lambda``: a sender is busy for 1 time unit per message
and the message arrives ``lambda`` units after the send starts.  Bar-Noy &
Kipnis give the optimal broadcast tree via the recurrence::

    N(t) = 1                      for 0 <= t < lambda
    N(t) = N(t-1) + N(t-lambda)   for t >= lambda

(``N(t)`` = nodes informable within ``t``; for ``lambda = 2`` these are the
Fibonacci numbers).  The optimal tree has every informed node transmitting
back-to-back, first transmissions rooting the largest subtrees.

As an E7 baseline we fit the homogeneous postal abstraction to a
heterogeneous instance — one unit = the mean send overhead, ``lambda`` =
the mean source-to-reception delay in those units — build the optimal
postal *shape*, map the fastest workstations onto the earliest-informed
(busiest) positions, and evaluate under the true receive-send model.  The
gap to the paper's greedy measures what the homogeneous abstraction loses.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.algorithms.registry import register
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import SolverError

__all__ = ["postal_count", "postal_shape", "postal_tree", "effective_lambda"]


@lru_cache(maxsize=None)
def postal_count(t: int, lam: int) -> int:
    """``N(t)``: nodes informable within ``t`` time units (root included)."""
    if lam < 1:
        raise SolverError(f"lambda must be >= 1, got {lam}")
    if t < 0:
        return 0
    if t < lam:
        return 1
    return postal_count(t - 1, lam) + postal_count(t - lam, lam)


def postal_shape(m: int, lam: int) -> Tuple[List[int], List[float]]:
    """Optimal postal broadcast shape covering ``m`` nodes.

    Returns ``(parents, arrivals)`` indexed by position in creation order;
    position 0 is the root (``parents[0] = -1``, ``arrivals[0] = 0``).
    The shape finishes at the minimal horizon ``T`` with ``N(T) >= m``.
    """
    if m < 1:
        raise SolverError(f"need at least the root, got m={m}")
    horizon = 0
    while postal_count(horizon, lam) < m:
        horizon += 1
    parents: List[int] = [-1]
    arrivals: List[float] = [0.0]

    def build(pos: int, budget: int, size: int) -> None:
        need = size - 1
        send_index = 0
        while need > 0:
            child_budget = budget - send_index - lam
            if child_budget < 0:  # pragma: no cover - capacity invariant
                raise SolverError("postal shape construction ran out of budget")
            take = min(postal_count(child_budget, lam), need)
            if take == 0:
                send_index += 1
                continue
            child = len(parents)
            parents.append(pos)
            arrivals.append(arrivals[pos] + send_index + lam)
            build(child, child_budget, take)
            need -= take
            send_index += 1

    build(0, horizon, m)
    return parents, arrivals


def effective_lambda(mset: MulticastSet) -> int:
    """Fit the postal ``lambda`` to a receive-send instance.

    One postal unit = the mean send overhead; a full transfer takes
    ``o_send + L + o_receive``, so ``lambda ~= (mean_send + L + mean_recv) /
    mean_send``, rounded and clamped to ``>= 1``.
    """
    sends = [mset.send(i) for i in range(mset.n + 1)]
    recvs = [mset.receive(i) for i in range(mset.n + 1)]
    mean_send = sum(sends) / len(sends)
    mean_recv = sum(recvs) / len(recvs)
    return max(1, round((mean_send + mset.latency + mean_recv) / mean_send))


@register("postal", "Bar-Noy/Kipnis postal-optimal shape fitted to the instance")
def postal_tree(mset: MulticastSet) -> Schedule:
    """Postal-optimal shape, fastest nodes on earliest-informed positions."""
    lam = effective_lambda(mset)
    parents, arrivals = postal_shape(mset.n + 1, lam)
    # earliest-informed positions do the most sending -> give them the
    # fastest workstations; destinations are already fastest-first
    order = sorted(range(1, len(parents)), key=lambda p: (arrivals[p], p))
    node_at_pos = {0: 0}
    for dest_index, pos in enumerate(order, start=1):
        node_at_pos[pos] = dest_index
    children: Dict[int, List[int]] = {}
    for pos in range(1, len(parents)):  # creation order == send order per parent
        children.setdefault(node_at_pos[parents[pos]], []).append(node_at_pos[pos])
    return Schedule(mset, children)
