"""The paper's own algorithms wrapped as registered schedulers."""

from __future__ import annotations

from repro.algorithms.registry import register
from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import greedy_with_reversal
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule

__all__ = ["greedy", "greedy_reversed"]


@register("greedy", "the paper's O(n log n) greedy (Section 2)")
def greedy(mset: MulticastSet) -> Schedule:
    """Plain greedy — layered, minimum D_T among layered schedules."""
    return greedy_schedule(mset)


@register("greedy+reversal", "greedy followed by the Section 3 leaf reversal")
def greedy_reversed(mset: MulticastSet) -> Schedule:
    """Greedy with the paper's practical leaf-reversal refinement."""
    return greedy_with_reversal(mset)
