"""Scheduler registry: look up multicast algorithms by name.

Every scheduler in the library has signature
``(MulticastSet) -> Schedule`` and registers itself under a short name so
experiments, benchmarks and the CLI can sweep over algorithm sets without
hard-coding imports.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import ReproError

__all__ = ["Scheduler", "register", "get_scheduler", "available_schedulers", "scheduler_items"]

Scheduler = Callable[[MulticastSet], Schedule]

_REGISTRY: Dict[str, Tuple[Scheduler, str]] = {}


def register(name: str, description: str) -> Callable[[Scheduler], Scheduler]:
    """Decorator: register a scheduler under ``name``.

    >>> @register("noop-star", "example")        # doctest: +SKIP
    ... def my_star(mset): ...
    """

    def deco(fn: Scheduler) -> Scheduler:
        if name in _REGISTRY:
            raise ReproError(f"scheduler {name!r} registered twice")
        _REGISTRY[name] = (fn, description)
        return fn

    return deco


def get_scheduler(name: str) -> Scheduler:
    """The scheduler registered under ``name`` (raises on unknown names)."""
    _ensure_loaded()
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise ReproError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None


def available_schedulers() -> List[str]:
    """Sorted names of every registered scheduler."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def scheduler_items() -> Iterator[Tuple[str, Scheduler, str]]:
    """Iterate ``(name, scheduler, description)`` in sorted name order."""
    _ensure_loaded()
    for name in sorted(_REGISTRY):
        fn, desc = _REGISTRY[name]
        yield name, fn, desc


def _ensure_loaded() -> None:
    """Import the modules whose import side-effect is registration."""
    from repro.algorithms import (  # noqa: F401
        baselines,
        binomial,
        fnf,
        local_search,
        paper,
        postal,
    )
