"""Binomial-tree broadcast — the classic homogeneous-optimal shape.

In the one-port homogeneous model (Johnsson & Ho [11]) the binomial tree is
the optimal broadcast: in each round every informed node informs one new
node, doubling the informed set.  MPI implementations still default to it
for short messages.  It ignores heterogeneity entirely, which is exactly
why it is a baseline here: under the receive-send model a slow node
recruited early throttles its whole subtree.

Two placements are provided:

* ``binomial`` — nodes placed in canonical index order (source, then the
  sorted destinations), the straightforward port of the homogeneous
  algorithm;
* ``binomial-ff`` — *fastest-first*: the destination list is sorted so the
  largest subtrees go to the fastest nodes, a cheap heterogeneity patch
  that E7 shows is still far from greedy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.algorithms.registry import register
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule

__all__ = ["binomial_tree_children", "binomial", "binomial_fastest_first"]


def binomial_tree_children(ids: Sequence[int]) -> Dict[int, List[int]]:
    """Binomial recruitment tree over ``ids`` (``ids[0]`` is the root).

    Round structure: after round ``r`` the first ``2**r`` entries are
    informed; in round ``r+1`` entry ``i`` informs entry ``i + 2**r``.
    Children are listed in the order the parent sends to them.
    """
    children: Dict[int, List[int]] = {}
    informed = 1
    while informed < len(ids):
        for i in range(min(informed, len(ids) - informed)):
            children.setdefault(ids[i], []).append(ids[i + informed])
        informed *= 2
    return children


@register("binomial", "classic binomial tree over the canonical node order")
def binomial(mset: MulticastSet) -> Schedule:
    """Binomial tree; canonical order (fast destinations recruited first)."""
    return Schedule(mset, binomial_tree_children(list(range(mset.n + 1))))


@register("binomial-ff", "binomial tree, explicitly fastest-sender-first placement")
def binomial_fastest_first(mset: MulticastSet) -> Schedule:
    """Binomial tree with destinations ordered by *send* overhead.

    Equivalent to ``binomial`` on correlated instances (the canonical order
    already sorts by send overhead); differs — and helps — when the
    correlation assumption is disabled and receive order disagrees with
    send order.
    """
    order = sorted(range(1, mset.n + 1), key=lambda i: (mset.send(i), i))
    return Schedule(mset, binomial_tree_children([0] + order))
