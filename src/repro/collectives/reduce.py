"""Reduction trees via multicast/reduce duality (Section 5 extension).

A *reduction* gathers a combined value at a root: each node sends once to
its parent, a parent must receive its children's messages one at a time.
The receive-send model is symmetric under exchanging the roles of sending
and receiving and reversing time:

* multicast: a parent *sends* to children in order, each child *receives*
  once;
* reduce: children *send* once, the parent *receives* them in (reverse)
  order.

Formally, running schedule ``T`` backwards turns each delivery edge into an
arrival edge, each ``o_send`` busy period of the parent into a receive busy
period, and each child's ``o_receive`` into its send overhead.  Hence an
optimal (or greedy) reduction tree for instance ``S`` is exactly a
multicast schedule for the *overhead-swapped* instance ``S^T`` (every
node's ``o_send``/``o_receive`` exchanged), and its completion time equals
that schedule's ``R_T``.  The test-suite verifies the duality numerically
with an independent forward-timing function for reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule

__all__ = ["ReducePlan", "reduce_plan", "reduce_completion_forward"]


@dataclass(frozen=True)
class ReducePlan:
    """A reduction tree for ``instance``: who sends to whom, in what order.

    ``gather_order`` maps each internal node to its children in the order
    their messages are *received*; ``completion`` is the time at which the
    root has combined every contribution.
    """

    instance: MulticastSet
    dual_schedule: Schedule
    gather_order: Dict[int, List[int]]
    completion: float


def reduce_plan(
    mset: MulticastSet,
    *,
    scheduler: Callable[[MulticastSet], Schedule] | None = None,
) -> ReducePlan:
    """Plan a reduction onto ``mset``'s source using the duality.

    ``scheduler`` schedules the *dual* (overhead-swapped) multicast;
    defaults to greedy + leaf reversal.
    """
    if scheduler is None:
        from repro.core.leaf_reversal import greedy_with_reversal

        scheduler = greedy_with_reversal
    dual = scheduler(mset.swapped_overheads())
    # time reversal: the dual parent sends to children in slot order; in the
    # reduction the same parent *receives* them in reversed order
    gather: Dict[int, List[int]] = {}
    for parent, kids in dual.children.items():
        gather[parent] = [child for child, _slot in reversed(kids)]
    return ReducePlan(
        instance=mset,
        dual_schedule=dual,
        gather_order=gather,
        completion=dual.reception_completion,
    )


def reduce_completion_forward(mset: MulticastSet, plan: ReducePlan) -> float:
    """Independent forward timing of a reduction plan (for verification).

    Simulates the reduction directly: leaf nodes start sending at time 0;
    a node with children waits for all of them, receiving one at a time in
    ``gather_order`` (each arrival costs the *child's* ``o_send``, latency
    ``L``, and the parent's ``o_receive``), then sends upward.

    The timing mirrors the dual schedule exactly: if in the dual multicast
    the parent's transmission to (dual-)child ``c`` at slot ``s`` completes
    delivery at time ``d``, then in the reduction child ``c`` *starts* its
    send at ``horizon - d - o_recv_dual(c)`` — i.e. the whole Gantt chart is
    reflected.  This function recomputes the completion with a forward pass
    so the duality proof does not assume itself.
    """
    L = mset.latency
    memo: Dict[int, float] = {}

    def done(v: int) -> float:
        """Time at which v has combined its whole subtree."""
        got = memo.get(v)
        if got is not None:
            return got
        kids = plan.gather_order.get(v, [])
        t = 0.0
        for child in kids:
            child_ready = done(child)
            # child sends (its o_send), flight L, parent receives (o_receive):
            # the parent processes arrivals sequentially in gather order
            arrival_ready = child_ready + mset.send(child) + L
            t = max(t, arrival_ready) + mset.receive(v)
        memo[v] = t
        return t

    return done(0)
