"""Segmented (pipelined) multicast — the Park et al. [14] extension.

The paper folds message length into scalar overheads (footnote 1) and
treats the multicast as a single transmission.  For long messages, real
implementations *segment* the payload so a node can forward segment ``j``
while still receiving segment ``j+1`` — the parameterized-model multicast
of Park, Choi, Nupairoj & Ni [14] that the paper cites.  This module adds
that dimension on top of the library's trees and affine cost model:

* the message of length ``m`` is split into ``s`` equal segments;
* per-segment overheads and latency come from the affine model evaluated
  at ``m/s`` (so more segments = more fixed-cost payments, less pipeline
  bubble — the classic U-shaped trade-off);
* every node is one-ported: it processes its communication operations
  FIFO (receives enqueue at arrival; the sends of a segment enqueue the
  moment that segment is fully received; the source enqueues everything
  at time 0).

The timing is computed by the discrete-event engine, which also enforces
the busy-state model; for ``s = 1`` the result provably coincides with the
paper's recurrences on the same tree (asserted in the tests).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ModelError
from repro.model.linear import NetworkSpec
from repro.simulation.engine import Simulator

__all__ = ["PipelineResult", "pipelined_completion", "optimal_segmentation"]


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one segmented multicast."""

    completion: float
    segments: int
    segment_length: float
    events_processed: int
    last_segment_receptions: Tuple[float, ...]  # per machine; 0.0 for the root


def pipelined_completion(
    network: NetworkSpec,
    children: Mapping[int, Sequence[int]],
    message_length: float,
    segments: int,
    *,
    integral: bool = False,
) -> PipelineResult:
    """Simulate a segmented multicast over ``children``.

    Parameters
    ----------
    network:
        Machines and the affine latency (indices into ``network.machines``;
        machine 0 is the source).
    children:
        The multicast tree (delivery-ordered child lists).
    message_length:
        Total payload bytes.
    segments:
        Number of equal segments (``>= 1``).
    """
    if segments < 1 or segments != int(segments):
        raise ModelError(f"segments must be a positive integer, got {segments}")
    if message_length <= 0:
        raise ModelError(f"message_length must be positive, got {message_length}")
    machines = network.machines
    n = len(machines)
    reached = {0}
    for kids in children.values():
        reached.update(kids)
    if reached != set(range(n)):
        raise ModelError(
            f"tree must span all {n} machines, missing {set(range(n)) - reached}"
        )
    seg_len = message_length / segments
    send_cost = [m.send.at(seg_len, integral=integral) for m in machines]
    recv_cost = [m.receive.at(seg_len, integral=integral) for m in machines]
    latency = network.latency.at(seg_len, integral=integral)

    sim = Simulator()
    # per-node FIFO op queues; ops: ("send", child, seg) / ("recv", seg)
    queues: List[Deque[Tuple[str, int, int]]] = [deque() for _ in range(n)]
    busy: List[bool] = [False] * n
    received_upto: List[int] = [0] * n  # highest segment fully received
    last_reception: List[float] = [0.0] * n

    def pump(v: int) -> None:
        """Start the next queued op of node ``v`` if it is idle."""
        if busy[v] or not queues[v]:
            return
        op, peer, seg = queues[v].popleft()
        busy[v] = True
        if op == "send":
            def done_send(v: int = v, peer: int = peer, seg: int = seg) -> None:
                busy[v] = False
                sim.after(latency, lambda: arrive(peer, seg))
                pump(v)

            sim.after(send_cost[v], done_send)
        else:  # receive
            def done_recv(v: int = v, seg: int = seg) -> None:
                busy[v] = False
                received_upto[v] = seg
                last_reception[v] = sim.now
                for child in children.get(v, ()):
                    queues[v].append(("send", child, seg))
                pump(v)

            sim.after(recv_cost[v], done_recv)

    def arrive(v: int, seg: int) -> None:
        queues[v].append(("recv", -1, seg))
        pump(v)

    # the source holds the full message: enqueue all sends segment-major
    for seg in range(1, segments + 1):
        for child in children.get(0, ()):
            queues[0].append(("send", child, seg))
    received_upto[0] = segments
    sim.at(0.0, lambda: pump(0))
    sim.run()

    missing = [v for v in range(1, n) if received_upto[v] != segments]
    if missing:
        raise ModelError(
            f"machines never received the full message: {missing}"
        )  # pragma: no cover - spanning check above prevents this
    return PipelineResult(
        completion=max(last_reception),
        segments=segments,
        segment_length=seg_len,
        events_processed=sim.events_processed,
        last_segment_receptions=tuple(last_reception),
    )


def optimal_segmentation(
    network: NetworkSpec,
    children: Mapping[int, Sequence[int]],
    message_length: float,
    *,
    candidates: Optional[Sequence[int]] = None,
) -> Tuple[int, Dict[int, float]]:
    """Sweep segment counts; return the best and the full curve.

    ``candidates`` defaults to powers of two up to 256 (clipped so each
    segment stays >= 1 byte).
    """
    if candidates is None:
        candidates = [s for s in (1, 2, 4, 8, 16, 32, 64, 128, 256)
                      if message_length / s >= 1]
    if not candidates:
        raise ModelError("no feasible segment counts")
    curve: Dict[int, float] = {}
    for s in candidates:
        curve[s] = pipelined_completion(network, children, message_length, s).completion
    best = min(curve, key=lambda s: (curve[s], s))
    return best, curve
