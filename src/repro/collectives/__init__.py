"""Collective operations built on multicast scheduling (Section 5 extension).

The paper closes by asking for "polynomial time algorithms and
approximation algorithms ... for other collective communication
operations"; this package provides the natural constructions:

* :mod:`~repro.collectives.broadcast` — multicast to everyone;
* :mod:`~repro.collectives.reduce` — reduction via the overhead-swap /
  time-reversal duality;
* :mod:`~repro.collectives.scatter` / :mod:`~repro.collectives.gather` —
  personalized payloads under the affine (footnote 1) cost model.
"""

from repro.collectives.broadcast import broadcast_completion, broadcast_schedule
from repro.collectives.reduce import ReducePlan, reduce_completion_forward, reduce_plan
from repro.collectives.scatter import (
    ScatterResult,
    binomial_children,
    scatter_completion,
    star_children,
)
from repro.collectives.gather import GatherResult, gather_completion
from repro.collectives.pipeline import (
    PipelineResult,
    optimal_segmentation,
    pipelined_completion,
)

__all__ = [
    "PipelineResult",
    "pipelined_completion",
    "optimal_segmentation",
    "broadcast_schedule",
    "broadcast_completion",
    "ReducePlan",
    "reduce_plan",
    "reduce_completion_forward",
    "ScatterResult",
    "scatter_completion",
    "star_children",
    "binomial_children",
    "GatherResult",
    "gather_completion",
]
