"""Scatter under the affine overhead model (Section 5 extension).

Scatter (one distinct payload per destination) breaks the fixed-overhead
abstraction: an internal node forwards a *bundle* of payloads whose size is
its subtree's demand, so overheads must be evaluated per transfer through
the affine model of :mod:`repro.model.linear` (paper footnote 1 un-folded).

Timing of a scatter over a tree, with the root sending to children in
order::

    ready(root) = 0
    A transfer to child c carries bytes(c) = sum of payloads in c's subtree.
    The sender is busy send_cost(bytes(c)); the wire adds latency(bytes(c));
    the receiver is busy recv_cost(bytes(c)).
    Children receive their bundles in order, the sender back-to-back;
    a child forwards onward only after fully receiving its bundle.

Star, binomial and greedy-shaped trees are compared in the E-suite: large
fan-out minimizes forwarded bytes (star sends each payload once), deep
trees pipeline but re-send bytes — the classic scatter trade-off, which the
affine model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.exceptions import ModelError
from repro.model.linear import MachineSpec, NetworkSpec

__all__ = ["ScatterResult", "scatter_completion", "star_children", "binomial_children"]


@dataclass(frozen=True)
class ScatterResult:
    """Timing of one scatter execution."""

    completion: float
    receive_done: Tuple[float, ...]  # per machine index (root = 0.0)
    bytes_sent: Tuple[float, ...]  # total bytes each machine transmitted


def _subtree_bytes(
    children: Mapping[int, Sequence[int]], payloads: Sequence[float], v: int
) -> float:
    total = payloads[v]
    for c in children.get(v, ()):
        total += _subtree_bytes(children, payloads, c)
    return total


def scatter_completion(
    network: NetworkSpec,
    children: Mapping[int, Sequence[int]],
    payloads: Sequence[float],
    *,
    integral: bool = False,
) -> ScatterResult:
    """Time a scatter over ``children`` (indices into ``network.machines``).

    ``payloads[i]`` is the byte count destined for machine ``i``
    (``payloads[0]`` is the root's own share, usually 0).
    """
    machines = network.machines
    if len(payloads) != len(machines):
        raise ModelError("payloads must align with network.machines")
    if any(p < 0 for p in payloads):
        raise ModelError("payloads must be non-negative")

    receive_done: List[float] = [0.0] * len(machines)
    bytes_sent: List[float] = [0.0] * len(machines)

    def run(v: int, ready: float) -> None:
        spec: MachineSpec = machines[v]
        send_free = ready
        for c in children.get(v, ()):
            bundle = _subtree_bytes(children, payloads, c)
            if bundle <= 0:
                raise ModelError(f"empty bundle for subtree of machine {c}")
            send_busy = spec.send.at(bundle, integral=integral)
            wire = network.latency.at(bundle, integral=integral)
            recv_busy = machines[c].receive.at(bundle, integral=integral)
            depart = send_free + send_busy
            arrive = depart + wire
            receive_done[c] = arrive + recv_busy
            bytes_sent[v] += bundle
            send_free = depart  # sender continues with the next child
            run(c, receive_done[c])

    run(0, 0.0)
    missing = [
        i for i in range(1, len(machines)) if payloads[i] > 0 and receive_done[i] == 0.0
    ]
    if missing:
        raise ModelError(f"machines with payloads never reached: {missing}")
    return ScatterResult(
        completion=max(receive_done),
        receive_done=tuple(receive_done),
        bytes_sent=tuple(bytes_sent),
    )


def star_children(n_machines: int) -> Dict[int, List[int]]:
    """Root sends every payload directly (minimum bytes, no pipelining)."""
    if n_machines < 2:
        raise ModelError("need at least two machines")
    return {0: list(range(1, n_machines))}


def binomial_children(n_machines: int) -> Dict[int, List[int]]:
    """Binomial scatter tree (forwarded bundles, logarithmic depth)."""
    from repro.algorithms.binomial import binomial_tree_children

    if n_machines < 2:
        raise ModelError("need at least two machines")
    return binomial_tree_children(list(range(n_machines)))
