"""Broadcast: multicast to the whole cluster.

Thin convenience layer: a broadcast is a multicast whose destination set is
everyone except the source.  Algorithms are selected from the registry.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.registry import get_scheduler
from repro.core.node import Node
from repro.core.schedule import Schedule
from repro.workloads.generator import multicast_from_cluster

__all__ = ["broadcast_schedule", "broadcast_completion"]


def broadcast_schedule(
    nodes: Sequence[Node],
    source_name: str,
    *,
    latency: float = 1,
    algorithm: str = "greedy+reversal",
) -> Schedule:
    """Schedule a broadcast from the named node to the rest of the cluster."""
    names = [nd.name for nd in nodes]
    src = names.index(source_name)
    ordered = [nodes[src]] + [nd for i, nd in enumerate(nodes) if i != src]
    mset = multicast_from_cluster(ordered, latency=latency, source="first")
    return get_scheduler(algorithm)(mset)


def broadcast_completion(
    nodes: Sequence[Node],
    source_name: str,
    *,
    latency: float = 1,
    algorithm: str = "greedy+reversal",
) -> float:
    """Completion time of :func:`broadcast_schedule` (convenience)."""
    return broadcast_schedule(
        nodes, source_name, latency=latency, algorithm=algorithm
    ).reception_completion
