"""Gather under the affine overhead model — the scatter's time mirror.

Gather concentrates per-node payloads at the root.  Like scatter it moves
size-dependent bundles, so it uses the affine model; like reduce it is the
time-reversal of its distribution twin.  Internal nodes *concatenate* — a
parent forwards its children's bytes plus its own (contrast reduce, where
combining keeps messages fixed-size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from repro.exceptions import ModelError
from repro.model.linear import NetworkSpec

__all__ = ["GatherResult", "gather_completion"]


@dataclass(frozen=True)
class GatherResult:
    """Timing of one gather execution."""

    completion: float
    send_start: Tuple[float, ...]  # when each machine begins its upward send


def gather_completion(
    network: NetworkSpec,
    children: Mapping[int, Sequence[int]],
    payloads: Sequence[float],
    *,
    integral: bool = False,
) -> GatherResult:
    """Time a gather over the tree ``children`` (indices into the network).

    Children deliver to their parent sequentially (the parent receives one
    bundle at a time, later children waiting as needed); a node starts its
    upward send only after collecting its whole subtree.
    """
    machines = network.machines
    if len(payloads) != len(machines):
        raise ModelError("payloads must align with network.machines")
    if any(p < 0 for p in payloads):
        raise ModelError("payloads must be non-negative")

    send_start: List[float] = [0.0] * len(machines)

    def collect(v: int) -> Tuple[float, float]:
        """Returns (time v has its full bundle, bundle size in bytes)."""
        spec = machines[v]
        bundle = float(payloads[v])
        recv_free = 0.0
        ready = 0.0
        arrivals = []
        for c in children.get(v, ()):
            child_ready, child_bytes = collect(c)
            send_busy = machines[c].send.at(child_bytes, integral=integral)
            wire = network.latency.at(child_bytes, integral=integral)
            send_start[c] = child_ready
            arrivals.append((child_ready + send_busy + wire, child_bytes))
            bundle += child_bytes
        # the parent receives bundles in arrival order, one at a time
        for arrive, child_bytes in sorted(arrivals):
            recv_busy = spec.receive.at(child_bytes, integral=integral)
            recv_free = max(recv_free, arrive) + recv_busy
            ready = recv_free
        return max(ready, 0.0), bundle

    completion, total = collect(0)
    expected = float(sum(payloads))
    if abs(total - expected) > 1e-9:  # pragma: no cover - internal invariant
        raise ModelError("gather lost bytes")
    return GatherResult(completion=completion, send_start=tuple(send_start))
