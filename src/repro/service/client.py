"""Clients of the planning service: TCP wire client and in-process client.

Both expose the same surface — ``plan`` / ``plan_batch`` / ``ping`` /
``metrics`` plus the group-session verbs ``open_session`` /
``send_delta`` / ``resume_session`` / ``close_session`` — so tests and
examples can swap transports freely and assert the service path returns
exactly what the direct :class:`repro.api.Planner` path returns.

:class:`ServiceClient` speaks the JSON-lines protocol of
:mod:`repro.service.protocol` over a blocking socket (one connection,
pipelined ids, responses matched by ``id``).  :class:`InProcessClient`
skips the socket and calls straight into a background
:class:`~repro.service.server.PlanningService` — same admission queue,
shards and cache tiers, no serialization of the instance beyond the
fingerprint.

Failure handling
----------------
A request abandoned mid-flight (read timeout, transport error,
out-of-order response) poisons the stream: its stale response may still
arrive, so the connection fails closed.  Recovery is explicit —
:meth:`ServiceClient.reconnect` drops the old socket and opens a fresh
one with a fresh id counter (drain-safe: stale responses can never match
a new id on a new connection) — or automatic, by constructing the client
with a :class:`RetryPolicy`: idempotent verbs (``plan``, ``ping``,
``metrics``, ``session-resume``) are then retried with exponential
backoff and seeded jitter under a per-call deadline budget, reconnecting
as needed.  Non-idempotent verbs (``session-open``/``delta``/``close``)
are never replayed automatically; after a delta timeout, callers resume
the session (exact duplicates are idempotent server-side) instead.
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro import faults
from repro.api.request import PlanRequest, PlanResult
from repro.core.multicast import MulticastSet
from repro.core.repair import MembershipDelta
from repro.exceptions import ReproError, ServiceError, ServiceRetryableError
from repro.service import protocol
from repro.service.metrics import MetricsRegistry
from repro.service.server import PlanningService
from repro.service.sessions import SessionUpdate

__all__ = ["RetryPolicy", "ServiceClient", "InProcessClient", "ServedPlan"]

Plannable = Union[PlanRequest, MulticastSet]


class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    Parameters
    ----------
    attempts:
        Total tries per call (first attempt included); ``1`` disables
        retrying while keeping automatic reconnects.
    base_delay_s / multiplier / max_delay_s:
        Backoff schedule: attempt ``i`` (0-based) sleeps
        ``min(max_delay_s, base_delay_s * multiplier**i)`` before retrying.
    jitter:
        Fraction of extra randomized delay (``0.5`` adds up to +50%),
        drawn from a ``random.Random(seed)`` so schedules replay
        deterministically in tests and fault sweeps.
    deadline_s:
        Per-call budget: a retry is abandoned (the last error re-raised)
        once sleeping again would overrun this many seconds since the
        call started.  ``None`` bounds the call by ``attempts`` alone.
    """

    def __init__(
        self,
        *,
        attempts: int = 3,
        base_delay_s: float = 0.05,
        multiplier: float = 2.0,
        max_delay_s: float = 2.0,
        jitter: float = 0.5,
        deadline_s: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        if attempts < 1:
            raise ReproError(f"retry attempts must be >= 1, got {attempts}")
        if base_delay_s < 0:
            raise ReproError(f"base_delay_s must be >= 0, got {base_delay_s}")
        if multiplier < 1.0:
            raise ReproError(f"multiplier must be >= 1, got {multiplier}")
        if max_delay_s < base_delay_s:
            raise ReproError(
                f"max_delay_s ({max_delay_s}) must be >= base_delay_s "
                f"({base_delay_s})"
            )
        if not 0.0 <= jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {jitter}")
        if deadline_s is not None and deadline_s <= 0:
            raise ReproError(f"deadline_s must be positive, got {deadline_s}")
        self.attempts = attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.deadline_s = deadline_s
        self.seed = seed
        self._rng = random.Random(seed)

    def delays(self) -> Iterator[float]:
        """The backoff sleeps between attempts (``attempts - 1`` values)."""
        for attempt in range(self.attempts - 1):
            delay = min(
                self.max_delay_s, self.base_delay_s * self.multiplier**attempt
            )
            if self.jitter:
                delay *= 1.0 + self.jitter * self._rng.random()
            yield delay


class ServedPlan:
    """A service response: the :class:`PlanResult` plus the serving tier.

    ``degraded`` is ``True`` when the service answered past its solve
    deadline with the fast-fallback plan (greedy + bounds sandwich)
    instead of the requested solver — see SERVICE.md, "Resilience &
    operations".
    """

    def __init__(self, result: PlanResult, tier: str, degraded: bool = False) -> None:
        self.result = result
        self.tier = tier
        self.degraded = degraded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", degraded=True" if self.degraded else ""
        return f"ServedPlan(value={self.result.value:g}, tier={self.tier!r}{flag})"


def _as_request(job: Plannable, solver: Optional[str], options: Dict[str, Any]) -> PlanRequest:
    if isinstance(job, PlanRequest):
        if solver is not None or options:
            raise ServiceError(
                "pass solver/options inside the PlanRequest, not alongside it"
            )
        return job
    if isinstance(job, MulticastSet):
        kwargs: Dict[str, Any] = {"instance": job, "options": options}
        if solver is not None:
            kwargs["solver"] = solver
        return PlanRequest(**kwargs)
    raise ServiceError(
        f"cannot plan a {type(job).__name__}; expected PlanRequest or MulticastSet"
    )


def _retryable_wire_error(text: str) -> bool:
    """Whether a server-reported error is safe to retry.

    The server marks transient refusals — admission-control rejections
    and worker-death failures — with ``retry``/``retryable`` in the
    message; solver and protocol errors are deterministic and retrying
    them would just repeat the failure.
    """
    lowered = text.lower()
    return "retry later" in lowered or "retryable" in lowered


class ServiceClient:
    """Blocking JSON-lines client of a TCP planning service.

    Examples
    --------
    >>> with ServiceClient("127.0.0.1", 7421) as client:      # doctest: +SKIP
    ...     served = client.plan(mset, solver="dp")           # doctest: +SKIP
    ...     served.result.value, served.tier                  # doctest: +SKIP

    Pass ``retry=RetryPolicy(...)`` to retry idempotent verbs through
    transport failures (with automatic reconnects) instead of failing
    closed on the first abandoned request.  Client-side resilience
    counters (``retries`` / ``reconnects`` / ``timeouts``) accumulate in
    :attr:`local_metrics`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        *,
        client_id: Optional[str] = None,
        timeout: Optional[float] = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self.retry = retry
        self.local_metrics = MetricsRegistry()
        self._ids = itertools.count(1)
        self._broken = False
        self._sock: Optional[socket.socket] = None
        self._file: Optional[Any] = None
        self._connect()

    # -- transport ------------------------------------------------------
    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceRetryableError(
                f"cannot connect to planning service at {self.host}:{self.port}: {exc}"
            ) from None
        self._file = self._sock.makefile("rb")
        self._broken = False

    def reconnect(self) -> None:
        """Drop the connection and open a fresh one (drain-safe recovery).

        The old socket is closed (any stale in-flight response dies with
        it) and the id counter restarts, so a response to an abandoned
        request can never be matched against a new request's id.  Raises
        :class:`ServiceRetryableError` when the service is unreachable.
        """
        self.close()
        self._ids = itertools.count(1)
        self._connect()
        self.local_metrics.inc("reconnects")

    def _abandon(self) -> None:
        # once a request is abandoned mid-flight (timeout, transport
        # error) the stream may hold its stale response; fail closed
        # instead of misreading it as the answer to a later request
        self._broken = True
        self.close()

    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._broken:
            raise ServiceRetryableError(
                "connection closed after an earlier timeout or transport "
                "error; call reconnect() or create a new ServiceClient"
            )
        message_id = message.get("id")
        try:
            payload = protocol.encode(message)
            if faults.ACTIVE is not None:
                if faults.ACTIVE.fire("client.partial_send"):
                    # a write that dies mid-frame: the server sees a torn
                    # line (a protocol error at worst), the client a
                    # failed socket — recovery must reconnect
                    assert self._sock is not None
                    self._sock.sendall(payload[: max(1, len(payload) // 2)])
                    raise OSError("fault injected: connection lost mid-frame")
                if faults.ACTIVE.fire("client.drop_send"):
                    payload = b""  # swallowed frame: the read below times out
            assert self._sock is not None and self._file is not None
            if payload:
                self._sock.sendall(payload)
            while True:
                line = self._file.readline()
                if not line:
                    self._abandon()
                    raise ServiceRetryableError("service closed the connection")
                response = protocol.decode(line)
                if response.get("id") == message_id:
                    if response.get("type") == "error":
                        text = response.get("error", "unknown service error")
                        if _retryable_wire_error(text):
                            raise ServiceRetryableError(text)
                        raise ServiceError(text)
                    return response
                # a response to a request this client never sent: protocol bug
                self._abandon()
                raise ServiceRetryableError(
                    f"out-of-order response id {response.get('id')!r} "
                    f"(expected {message_id!r})"
                )
        except OSError as exc:
            if isinstance(exc, socket.timeout):
                self.local_metrics.inc("timeouts")
            self._abandon()
            raise ServiceRetryableError(f"service connection failed: {exc}") from None

    def _request(
        self, build: Callable[[int], Dict[str, Any]], *, idempotent: bool
    ) -> Dict[str, Any]:
        """One logical request, with retry/reconnect when policy allows.

        Without a :class:`RetryPolicy` this is exactly one round trip
        (fail-closed, the historical behaviour).  With one, transient
        failures (:class:`ServiceRetryableError`) on *idempotent* verbs
        are retried under the policy's backoff schedule and deadline
        budget, reconnecting a broken transport before each attempt;
        non-idempotent verbs still get the automatic reconnect (the
        previous request is dead either way) but never a replay.
        """
        policy = self.retry
        if policy is None:
            return self._roundtrip(build(next(self._ids)))
        started = time.monotonic()
        delays = policy.delays()
        attempt = 0
        while True:
            attempt += 1
            try:
                if self._broken:
                    self.reconnect()
                return self._roundtrip(build(next(self._ids)))
            except ServiceRetryableError:
                if not idempotent or attempt >= policy.attempts:
                    raise
                pause = next(delays)
                if (
                    policy.deadline_s is not None
                    and time.monotonic() + pause - started > policy.deadline_s
                ):
                    raise
                self.local_metrics.inc("retries")
                time.sleep(pause)

    # -- surface --------------------------------------------------------
    def plan(
        self, job: Plannable, solver: Optional[str] = None, **options: Any
    ) -> ServedPlan:
        """Plan one multicast through the service; returns result + tier."""
        request = _as_request(job, solver, options)
        response = self._request(
            lambda message_id: protocol.plan_message(
                request, id=message_id, client=self.client_id
            ),
            idempotent=True,
        )
        result = protocol.parse_plan_result(response)
        return ServedPlan(
            result,
            response.get("tier", "unknown"),
            degraded=bool(response.get("degraded", False)),
        )

    def plan_batch(self, jobs: List[Plannable]) -> List[ServedPlan]:
        """Plan many jobs over this connection (submission order kept)."""
        return [self.plan(job) for job in jobs]

    # -- group sessions -------------------------------------------------
    @staticmethod
    def _session_update(response: Dict[str, Any]) -> SessionUpdate:
        return protocol.parse_session_update(response)

    def open_session(
        self,
        job: Plannable,
        solver: Optional[str] = None,
        *,
        session_id: Optional[str] = None,
        **options: Any,
    ) -> SessionUpdate:
        """Open a group session; returns the opening update (seq 0)."""
        request = _as_request(job, solver, options)
        response = self._request(
            lambda message_id: protocol.session_open_message(
                request, id=message_id, client=self.client_id, session=session_id
            ),
            idempotent=False,
        )
        return self._session_update(response)

    def send_delta(self, session_id: str, delta: MembershipDelta) -> SessionUpdate:
        """Stream one membership delta; returns the repaired update."""
        response = self._request(
            lambda message_id: protocol.session_delta_message(
                session_id, delta, id=message_id, client=self.client_id
            ),
            idempotent=False,
        )
        return self._session_update(response)

    def resume_session(self, session_id: str) -> SessionUpdate:
        """Reconnect: the session's last acknowledged update."""
        response = self._request(
            lambda message_id: protocol.session_resume_message(
                session_id, id=message_id
            ),
            idempotent=True,
        )
        return self._session_update(response)

    def close_session(self, session_id: str) -> None:
        """Close an open session."""
        response = self._request(
            lambda message_id: protocol.session_close_message(
                session_id, id=message_id
            ),
            idempotent=False,
        )
        if response.get("type") != "session-closed":
            raise ServiceError(f"unexpected response {response.get('type')!r}")

    def ping(self) -> bool:
        """Liveness probe; ``True`` when the service answers ``pong``."""
        response = self._request(
            lambda message_id: protocol.ping_message(id=message_id),
            idempotent=True,
        )
        return response.get("type") == "pong"

    def metrics(self) -> Dict[str, Any]:
        """The service's counters snapshot (see SERVICE.md)."""
        response = self._request(
            lambda message_id: protocol.metrics_message(id=message_id),
            idempotent=True,
        )
        if response.get("type") != "metrics":
            raise ServiceError(f"unexpected response {response.get('type')!r}")
        return response.get("metrics", {})

    def close(self) -> None:
        """Close the connection (idempotent; safe on a half-built client)."""
        for attribute in ("_file", "_sock"):
            handle = getattr(self, attribute, None)
            if handle is not None:
                try:
                    handle.close()
                except OSError:  # pragma: no cover - best-effort teardown
                    pass
                setattr(self, attribute, None)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InProcessClient:
    """Client of an embedded (background-thread) :class:`PlanningService`.

    The service must already be running (``start_background()``); the
    client neither starts nor stops it, so many clients can share one
    service with distinct ``client_id``s — that is what the fair admission
    queue arbitrates between.
    """

    def __init__(
        self,
        service: PlanningService,
        *,
        client_id: str = "in-process",
        timeout: Optional[float] = 60.0,
    ) -> None:
        self.service = service
        self.client_id = client_id
        self.timeout = timeout

    def plan(
        self, job: Plannable, solver: Optional[str] = None, **options: Any
    ) -> ServedPlan:
        """Plan one multicast through the embedded service."""
        request = _as_request(job, solver, options)
        result, tier = self.service.submit_sync(
            request, client_id=self.client_id, timeout=self.timeout
        )
        return ServedPlan(result, tier, degraded=tier == "degraded")

    def plan_batch(self, jobs: List[Plannable]) -> List[ServedPlan]:
        """Plan many jobs (submission order kept)."""
        return [self.plan(job) for job in jobs]

    def open_session(
        self,
        job: Plannable,
        solver: Optional[str] = None,
        *,
        session_id: Optional[str] = None,
        **options: Any,
    ) -> SessionUpdate:
        """Open a group session; returns the opening update (seq 0)."""
        request = _as_request(job, solver, options)
        return self.service.open_session_sync(
            request,
            client_id=self.client_id,
            session_id=session_id,
            timeout=self.timeout,
        )

    def send_delta(self, session_id: str, delta: MembershipDelta) -> SessionUpdate:
        """Stream one membership delta; returns the repaired update."""
        return self.service.apply_session_delta_sync(
            session_id, delta, client_id=self.client_id, timeout=self.timeout
        )

    def resume_session(self, session_id: str) -> SessionUpdate:
        """The session's last acknowledged update (no state change)."""
        return self.service.resume_session_sync(
            session_id, client_id=self.client_id, timeout=self.timeout
        )

    def close_session(self, session_id: str) -> None:
        """Close an open session."""
        self.service.close_session_sync(
            session_id, client_id=self.client_id, timeout=self.timeout
        )

    def ping(self) -> bool:
        """``True`` while the embedded service is running."""
        return self.service.is_running

    def metrics(self) -> Dict[str, Any]:
        """The service's counters snapshot."""
        return self.service.describe_metrics()
