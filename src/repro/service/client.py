"""Clients of the planning service: TCP wire client and in-process client.

Both expose the same surface — ``plan`` / ``plan_batch`` / ``ping`` /
``metrics`` plus the group-session verbs ``open_session`` /
``send_delta`` / ``resume_session`` / ``close_session`` — so tests and
examples can swap transports freely and assert the service path returns
exactly what the direct :class:`repro.api.Planner` path returns.

:class:`ServiceClient` speaks the JSON-lines protocol of
:mod:`repro.service.protocol` over a blocking socket (one connection,
pipelined ids, responses matched by ``id``).  :class:`InProcessClient`
skips the socket and calls straight into a background
:class:`~repro.service.server.PlanningService` — same admission queue,
shards and cache tiers, no serialization of the instance beyond the
fingerprint.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Dict, List, Optional, Union

from repro.api.request import PlanRequest, PlanResult
from repro.core.multicast import MulticastSet
from repro.core.repair import MembershipDelta
from repro.exceptions import ServiceError
from repro.service import protocol
from repro.service.server import PlanningService
from repro.service.sessions import SessionUpdate

__all__ = ["ServiceClient", "InProcessClient", "ServedPlan"]

Plannable = Union[PlanRequest, MulticastSet]


class ServedPlan:
    """A service response: the :class:`PlanResult` plus the serving tier."""

    def __init__(self, result: PlanResult, tier: str) -> None:
        self.result = result
        self.tier = tier

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServedPlan(value={self.result.value:g}, tier={self.tier!r})"


def _as_request(job: Plannable, solver: Optional[str], options: Dict[str, Any]) -> PlanRequest:
    if isinstance(job, PlanRequest):
        if solver is not None or options:
            raise ServiceError(
                "pass solver/options inside the PlanRequest, not alongside it"
            )
        return job
    if isinstance(job, MulticastSet):
        kwargs: Dict[str, Any] = {"instance": job, "options": options}
        if solver is not None:
            kwargs["solver"] = solver
        return PlanRequest(**kwargs)
    raise ServiceError(
        f"cannot plan a {type(job).__name__}; expected PlanRequest or MulticastSet"
    )


class ServiceClient:
    """Blocking JSON-lines client of a TCP planning service.

    Examples
    --------
    >>> with ServiceClient("127.0.0.1", 7421) as client:      # doctest: +SKIP
    ...     served = client.plan(mset, solver="dp")           # doctest: +SKIP
    ...     served.result.value, served.tier                  # doctest: +SKIP
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        *,
        client_id: Optional[str] = None,
        timeout: Optional[float] = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self._ids = itertools.count(1)
        self._broken = False
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to planning service at {host}:{port}: {exc}"
            ) from None
        self._file = self._sock.makefile("rb")

    # -- transport ------------------------------------------------------
    def _abandon(self) -> None:
        # once a request is abandoned mid-flight (timeout, transport
        # error) the stream may hold its stale response; fail closed
        # instead of misreading it as the answer to a later request
        self._broken = True
        self.close()

    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._broken:
            raise ServiceError(
                "connection closed after an earlier timeout or transport "
                "error; create a new ServiceClient"
            )
        message_id = message.get("id")
        try:
            self._sock.sendall(protocol.encode(message))
            while True:
                line = self._file.readline()
                if not line:
                    self._abandon()
                    raise ServiceError("service closed the connection")
                response = protocol.decode(line)
                if response.get("id") == message_id:
                    return response
                # a response to a request this client never sent: protocol bug
                self._abandon()
                raise ServiceError(
                    f"out-of-order response id {response.get('id')!r} "
                    f"(expected {message_id!r})"
                )
        except OSError as exc:
            self._abandon()
            raise ServiceError(f"service connection failed: {exc}") from None

    # -- surface --------------------------------------------------------
    def plan(
        self, job: Plannable, solver: Optional[str] = None, **options: Any
    ) -> ServedPlan:
        """Plan one multicast through the service; returns result + tier."""
        request = _as_request(job, solver, options)
        message = protocol.plan_message(
            request, id=next(self._ids), client=self.client_id
        )
        response = self._roundtrip(message)
        if response["type"] == "error":
            raise ServiceError(response.get("error", "unknown service error"))
        result = protocol.parse_plan_result(response)
        return ServedPlan(result, response.get("tier", "unknown"))

    def plan_batch(self, jobs: List[Plannable]) -> List[ServedPlan]:
        """Plan many jobs over this connection (submission order kept)."""
        return [self.plan(job) for job in jobs]

    # -- group sessions -------------------------------------------------
    def _session_update(self, response: Dict[str, Any]) -> SessionUpdate:
        if response["type"] == "error":
            raise ServiceError(response.get("error", "unknown service error"))
        return protocol.parse_session_update(response)

    def open_session(
        self,
        job: Plannable,
        solver: Optional[str] = None,
        *,
        session_id: Optional[str] = None,
        **options: Any,
    ) -> SessionUpdate:
        """Open a group session; returns the opening update (seq 0)."""
        request = _as_request(job, solver, options)
        message = protocol.session_open_message(
            request, id=next(self._ids), client=self.client_id, session=session_id
        )
        return self._session_update(self._roundtrip(message))

    def send_delta(self, session_id: str, delta: MembershipDelta) -> SessionUpdate:
        """Stream one membership delta; returns the repaired update."""
        message = protocol.session_delta_message(
            session_id, delta, id=next(self._ids), client=self.client_id
        )
        return self._session_update(self._roundtrip(message))

    def resume_session(self, session_id: str) -> SessionUpdate:
        """Reconnect: the session's last acknowledged update."""
        message = protocol.session_resume_message(session_id, id=next(self._ids))
        return self._session_update(self._roundtrip(message))

    def close_session(self, session_id: str) -> None:
        """Close an open session."""
        message = protocol.session_close_message(session_id, id=next(self._ids))
        response = self._roundtrip(message)
        if response["type"] == "error":
            raise ServiceError(response.get("error", "unknown service error"))
        if response.get("type") != "session-closed":
            raise ServiceError(f"unexpected response {response.get('type')!r}")

    def ping(self) -> bool:
        """Liveness probe; ``True`` when the service answers ``pong``."""
        response = self._roundtrip(protocol.ping_message(id=next(self._ids)))
        return response.get("type") == "pong"

    def metrics(self) -> Dict[str, Any]:
        """The service's counters snapshot (see SERVICE.md)."""
        response = self._roundtrip(protocol.metrics_message(id=next(self._ids)))
        if response.get("type") != "metrics":
            raise ServiceError(f"unexpected response {response.get('type')!r}")
        return response.get("metrics", {})

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InProcessClient:
    """Client of an embedded (background-thread) :class:`PlanningService`.

    The service must already be running (``start_background()``); the
    client neither starts nor stops it, so many clients can share one
    service with distinct ``client_id``s — that is what the fair admission
    queue arbitrates between.
    """

    def __init__(
        self,
        service: PlanningService,
        *,
        client_id: str = "in-process",
        timeout: Optional[float] = 60.0,
    ) -> None:
        self.service = service
        self.client_id = client_id
        self.timeout = timeout

    def plan(
        self, job: Plannable, solver: Optional[str] = None, **options: Any
    ) -> ServedPlan:
        """Plan one multicast through the embedded service."""
        request = _as_request(job, solver, options)
        result, tier = self.service.submit_sync(
            request, client_id=self.client_id, timeout=self.timeout
        )
        return ServedPlan(result, tier)

    def plan_batch(self, jobs: List[Plannable]) -> List[ServedPlan]:
        """Plan many jobs (submission order kept)."""
        return [self.plan(job) for job in jobs]

    def open_session(
        self,
        job: Plannable,
        solver: Optional[str] = None,
        *,
        session_id: Optional[str] = None,
        **options: Any,
    ) -> SessionUpdate:
        """Open a group session; returns the opening update (seq 0)."""
        request = _as_request(job, solver, options)
        return self.service.open_session_sync(
            request,
            client_id=self.client_id,
            session_id=session_id,
            timeout=self.timeout,
        )

    def send_delta(self, session_id: str, delta: MembershipDelta) -> SessionUpdate:
        """Stream one membership delta; returns the repaired update."""
        return self.service.apply_session_delta_sync(
            session_id, delta, client_id=self.client_id, timeout=self.timeout
        )

    def resume_session(self, session_id: str) -> SessionUpdate:
        """The session's last acknowledged update (no state change)."""
        return self.service.resume_session_sync(
            session_id, client_id=self.client_id, timeout=self.timeout
        )

    def close_session(self, session_id: str) -> None:
        """Close an open session."""
        self.service.close_session_sync(
            session_id, client_id=self.client_id, timeout=self.timeout
        )

    def ping(self) -> bool:
        """``True`` while the embedded service is running."""
        return self.service.is_running

    def metrics(self) -> Dict[str, Any]:
        """The service's counters snapshot."""
        return self.service.describe_metrics()
