"""The asyncio planning service: admission, dispatch, TCP front-end.

Request life cycle::

    client ──plan──▶ submit: Planner.cache_lookup ──hit──▶ response
                        │ miss
                        ▼ admission cap (global _admitted counter)
                  per-shard FairQueues (by canonical network key;
                        │        per-client round-robin within a shard)
                        ▼
                  shard workers ──▶ re-check cache (dedup) ──▶ solve
                  (one per shard,        │
                   own thread)           ▼
                              Planner.cache_store ──▶ response
                              (LRU + persistent store)

``submit`` answers cache hits inline — they are never queued and never
rejected.  Misses pass a global admission cap (``max_pending`` spans
queued *and* in-service requests, so buffered futures are bounded) and
land on their shard's :class:`FairQueue`: one FIFO per client id served
round-robin, so a client submitting thousands of requests delays a
one-request client by at most one in-flight item on that shard.  One
worker task per shard drains its own queue on the shard's dedicated
serving thread, so a slow solve on one shard never blocks another
shard's backlog or any cache hit.  Identical concurrent requests —
which always share a shard — are deduplicated by a cache re-check right
before solving (the first solves, the rest become cache hits; counted
as ``coalesced``; with canonical cache keys this also coalesces requests
that are merely *equivalent* — renamed nodes, power-of-two-rescaled
overheads).  Cache-tier I/O and solves all run off the event
loop.

Group sessions (``session-open`` / ``session-delta`` / ``session-resume``
/ ``session-close``) ride the same admission cap and fair queues: every
operation for a session is dispatched to the shard chosen at open (by
canonical network key), so a session's delta stream is applied serially,
in order, on the serving thread that holds its pinned optimal table —
see :mod:`repro.service.sessions` for the repair engine itself.

:class:`PlanningService` runs either embedded (``start_background()`` +
:class:`~repro.service.client.InProcessClient`, used by tests and
examples) or as a TCP JSON-lines server (``repro serve``); both paths go
through the same ``submit`` coroutine, so wire clients and in-process
clients observe identical semantics.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import functools
import threading
from collections import deque
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.api.planner import CacheKey, Planner, _plan_standalone
from repro.api.tables import TableCacheConfig
from repro.api.request import PlanRequest, PlanResult
from repro.core.repair import MembershipDelta
from repro.exceptions import DeadlineExceededError, ReproError, ServiceError
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import (
    decode,
    encode,
    error_message,
    parse_plan_request,
    parse_session_delta,
    parse_session_open,
    parse_session_ref,
    result_message,
    session_closed_message,
    session_result_message,
)
from repro.service.sessions import SessionManager, SessionUpdate
from repro.service.shard import ShardRouter
from repro.service.store import PlanStore

__all__ = ["FairQueue", "PlanningService"]

#: Tier label for responses that required a real solve.
TIER_SOLVE = "solve"

#: Tier label for deadline-degraded responses (greedy fallback + bounds).
TIER_DEGRADED = "degraded"


class FairQueue:
    """Round-robin admission queue with a global pending cap.

    Each client id owns a FIFO sub-queue; :meth:`get` serves the clients
    in round-robin rotation, so a client submitting thousands of requests
    delays a one-request client by at most one in-flight item.  When the
    total backlog reaches ``max_pending``, :meth:`put` raises
    :class:`ServiceError` (admission control) instead of buffering without
    bound.  Single-event-loop use only (no internal thread-safety).
    """

    def __init__(self, max_pending: int = 1024) -> None:
        if max_pending < 1:
            raise ReproError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._queues: Dict[str, Deque[Any]] = {}
        self._rotation: Deque[str] = deque()
        self._pending = 0
        self._item_ready = asyncio.Event()

    @property
    def pending(self) -> int:
        """Total queued items across all clients."""
        return self._pending

    def clients(self) -> List[str]:
        """Client ids currently holding queued items, in rotation order."""
        return list(self._rotation)

    async def put(self, client_id: str, item: Any) -> None:
        """Enqueue ``item`` for ``client_id`` or reject when full."""
        if self._pending >= self.max_pending:
            raise ServiceError(
                f"admission queue full ({self._pending} pending); retry later"
            )
        queue = self._queues.get(client_id)
        if queue is None:
            queue = self._queues[client_id] = deque()
            self._rotation.append(client_id)
        queue.append(item)
        self._pending += 1
        self._item_ready.set()

    async def get(self) -> Tuple[str, Any]:
        """Dequeue the next ``(client_id, item)`` in round-robin order."""
        while self._pending == 0:
            self._item_ready.clear()
            await self._item_ready.wait()
        client_id = self._rotation.popleft()
        queue = self._queues[client_id]
        item = queue.popleft()
        self._pending -= 1
        if queue:
            self._rotation.append(client_id)  # back of the rotation: fairness
        else:
            del self._queues[client_id]
        return client_id, item

    def drain(self) -> List[Tuple[str, Any]]:
        """Remove and return everything queued (shutdown path)."""
        drained = []
        while self._rotation:
            client_id = self._rotation.popleft()
            for item in self._queues.pop(client_id, ()):  # pragma: no branch
                drained.append((client_id, item))
        self._pending = 0
        return drained


class PlanningService:
    """Long-running multicast planning service over a :class:`Planner`.

    Parameters
    ----------
    planner:
        The engine to serve from; a fresh ``Planner(cache_size=cache_size)``
        is built when omitted.
    store_path:
        Directory for the persistent :class:`PlanStore`; when given, the
        store is opened (warm-starting from existing segments) and attached
        to the planner as a cache tier.  ``None`` runs memory-only.
    num_shards:
        Solver worker shards (each with its own queue and serving thread).
    worker_mode:
        ``"thread"`` (default), ``"process"`` or ``"inline"`` — see
        :class:`~repro.service.shard.ShardRouter`.
    max_pending:
        Admission cap on miss-path requests in flight (queued plus
        solving, across all shards); cache hits are never capped.
    cache_size / segment_max_records:
        Forwarded to the built planner / store when those are not supplied.
    table_config:
        Optimal-table policy (:class:`~repro.api.tables.TableCacheConfig`)
        applied to the built planner *and* to the worker shards.  With a
        ``snapshot_dir`` set, tables warm-start from mmap-backed snapshot
        files at startup the same way plans warm-start from the store, and
        process-mode shards attach the same resident snapshots instead of
        rebuilding private copies.  A caller-supplied ``planner`` keeps its
        own table policy; the config then only governs the shards.
    solve_deadline_s:
        Per-request solve budget.  A miss whose solve exceeds it is
        answered with a fast greedy plan plus the Theorem 1 bounds
        sandwich, explicitly marked ``degraded`` on the wire — never a
        silent timeout, never cached.  ``None`` (default) never degrades.
    startup_timeout_s / shutdown_timeout_s:
        How long :meth:`start_background` / :meth:`stop` wait for each
        lifecycle phase before raising a :class:`ServiceError` that names
        the stuck phase.
    """

    def __init__(
        self,
        *,
        planner: Optional[Planner] = None,
        store_path: Optional[Union[str, Path]] = None,
        num_shards: int = 4,
        worker_mode: str = "thread",
        max_pending: int = 1024,
        cache_size: int = 1024,
        segment_max_records: int = 512,
        table_config: Optional[TableCacheConfig] = None,
        solve_deadline_s: Optional[float] = None,
        startup_timeout_s: float = 10.0,
        shutdown_timeout_s: float = 10.0,
    ) -> None:
        if solve_deadline_s is not None and solve_deadline_s <= 0:
            raise ReproError(
                f"solve_deadline_s must be positive, got {solve_deadline_s}"
            )
        if startup_timeout_s <= 0:
            raise ReproError(
                f"startup_timeout_s must be positive, got {startup_timeout_s}"
            )
        if shutdown_timeout_s <= 0:
            raise ReproError(
                f"shutdown_timeout_s must be positive, got {shutdown_timeout_s}"
            )
        self.solve_deadline_s = solve_deadline_s
        self.startup_timeout_s = startup_timeout_s
        self.shutdown_timeout_s = shutdown_timeout_s
        if planner is not None:
            self.planner = planner
        elif table_config is not None:
            self.planner = Planner(cache_size=cache_size, table_config=table_config)
        else:
            self.planner = Planner(cache_size=cache_size)
        self.store: Optional[PlanStore] = None
        if store_path is not None:
            # attached as a cache tier while the service runs (_startup),
            # detached on shutdown so a caller-supplied planner is handed
            # back unmodified
            self.store = PlanStore(store_path, segment_max_records=segment_max_records)
        self.metrics = MetricsRegistry()
        # the router shares the service registry so worker supervision
        # (worker_restarts) surfaces in the metrics wire verb
        self.router = ShardRouter(
            num_shards,
            mode=worker_mode,
            table_config=table_config,
            metrics=self.metrics,
        )
        # group sessions repair against the *service* planner (its table
        # cache + tiers), sharing the service's metrics registry
        self.sessions = SessionManager(self.planner, metrics=self.metrics)
        self.max_pending = max_pending
        self._shard_queues: List[FairQueue] = []  # created on the service loop
        self._admitted = 0  # miss-path requests in flight (queued + solving)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatchers: List["asyncio.Task[None]"] = []
        self._conn_tasks: "set[asyncio.Task[None]]" = set()
        self._address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # core request path (runs on the service event loop)
    # ------------------------------------------------------------------
    async def submit(
        self, request: PlanRequest, client_id: str = "local"
    ) -> Tuple[PlanResult, str]:
        """Admit one request and await ``(result, tier)``.

        ``tier`` names what served it: ``"memory"`` (planner LRU),
        ``"store"`` (persistent tier) or ``"solve"`` (a worker shard ran
        the solver).  Raises :class:`ServiceError` on admission rejection
        and re-raises solver errors.
        """
        queues = self._shard_queues
        if not queues:
            raise ServiceError("service is not running")
        self.metrics.inc("requests")
        loop = asyncio.get_running_loop()
        try:
            # one off-loop hop: the key is computed once per request
            # (lookup, routing and the eventual store all reuse it — the
            # fingerprint is O(n)) and the tier get, which may deserialize
            # a plan from the store index, runs in the same hop
            key, hit = await loop.run_in_executor(
                None, self._key_and_lookup, request
            )
        except (asyncio.CancelledError, ServiceError):
            raise
        except Exception:
            self.metrics.inc_error()
            raise
        if hit is not None:
            result, tier = hit
            self.metrics.inc(f"hits_{tier}")
            return result, tier
        if queues is not self._shard_queues:  # stopped during the lookup
            raise ServiceError("service shutting down")
        # miss path: global admission control, then the shard's fair queue.
        # _admitted spans queued AND solving requests, so the cap bounds
        # buffered futures no matter which queue they sit in; cache hits
        # never queue and are never rejected.
        if self._admitted >= self.max_pending:
            self.metrics.inc("rejected")
            raise ServiceError(
                f"admission queue full ({self._admitted} pending); retry later"
            )
        self._admitted += 1
        self.metrics.set_gauge("queue_depth", self._admitted)
        future: "asyncio.Future[Tuple[PlanResult, str]]" = loop.create_future()
        try:
            # canonical-network routing: same-network traffic lands on
            # the shard whose worker already holds that network's table
            shard = self.router.shard_for(request)
            work = functools.partial(self._serve_miss, shard, request, key)
            await queues[shard].put(client_id, ("plan", work, future))
            return await future
        finally:
            self._admitted -= 1
            self.metrics.set_gauge("queue_depth", self._admitted)

    def _key_and_lookup(self, request: PlanRequest):
        """Off-loop helper: compute the cache key and walk the tiers."""
        key = self.planner.request_key(request)
        return key, self.planner.cache_lookup(request, key)

    async def _shard_loop(self, shard: int) -> None:
        """Drain one shard's fair queue of misses; solve off the event loop.

        The whole miss path runs on the shard's own serving thread
        (:meth:`~repro.service.shard.ShardRouter.serving_executor`), never
        on the shared default executor — long solves cannot starve cache
        lookups, and a busy shard never delays another shard's queue.
        """
        queue = self._shard_queues[shard]
        loop = asyncio.get_running_loop()
        serving = self.router.serving_executor(shard)  # None in inline mode
        while True:
            # items are (kind, work, future): "plan" work returns
            # (result, tier), "session" work returns the operation's value
            _client_id, (kind, work, future) = await queue.get()
            try:
                payload = await loop.run_in_executor(serving, work)
            except asyncio.CancelledError:
                if not future.done():
                    future.set_exception(ServiceError("service shutting down"))
                raise
            except Exception as exc:  # noqa: BLE001 - the worker must survive
                self.metrics.inc_error()
                if not future.done():
                    future.set_exception(exc)
                continue
            if kind == "plan":
                _result, tier = payload
                if tier == TIER_SOLVE:
                    self.metrics.inc("solves")
                elif tier == TIER_DEGRADED:
                    pass  # counted at the degradation site (degraded_served)
                else:
                    # an identical request solved while this one queued: dedup
                    self.metrics.inc("coalesced")
                    self.metrics.inc(f"hits_{tier}")
            if not future.done():
                future.set_result(payload)

    def _serve_miss(
        self, shard: int, request: PlanRequest, key: CacheKey
    ) -> Tuple[PlanResult, str]:
        """Serving-thread body: re-check the cache, then really solve.

        Identical concurrent requests always route to the same shard and
        are processed serially here, so this re-check guarantees a given
        (instance, solver, options) is solved at most once per cold start.
        """
        hit = self.planner.cache_lookup(request, key)
        if hit is not None:
            return hit
        try:
            result = self.router.solve_in_worker(
                shard, request, deadline_s=self.solve_deadline_s
            )
        except DeadlineExceededError:
            # graceful degradation: answer with a fast greedy plan plus
            # the bounds sandwich, explicitly marked — never cached, so a
            # retry after the storm gets the real solver's answer
            self.metrics.inc("timeouts")
            self.metrics.inc("degraded_served")
            return self._degraded_result(request), TIER_DEGRADED
        self.planner.cache_store(request, result, key)
        return result, TIER_SOLVE

    def _degraded_result(self, request: PlanRequest) -> PlanResult:
        """The deadline-degraded answer: greedy/FNF plan + bounds sandwich.

        Greedy is O(n log n) and capable on every valid instance (the
        correlation assumption is enforced at construction), so this path
        is effectively instant relative to any deadline worth setting.
        """
        fallback = replace(
            request.with_solver("greedy+reversal"), include_bounds=True
        )
        result = _plan_standalone(fallback)
        provenance = dict(result.provenance)
        provenance["degraded"] = True
        provenance["deadline_s"] = self.solve_deadline_s
        provenance["requested_solver"] = request.solver
        return replace(result, provenance=provenance)

    # ------------------------------------------------------------------
    # group sessions (runs on the service event loop)
    # ------------------------------------------------------------------
    async def _run_session_op(
        self, shard: int, client_id: str, work: Callable[[], Any]
    ) -> Any:
        """Admit one session operation onto a shard's serving thread.

        Session operations ride the same admission cap and fair queues as
        plan misses, and every operation for one session runs on that
        session's shard — so deltas are applied serially, in order, by
        the thread that holds the session's pinned table warm.
        """
        queues = self._shard_queues
        if not queues:
            raise ServiceError("service is not running")
        self.metrics.inc("requests")
        if self._admitted >= self.max_pending:
            self.metrics.inc("rejected")
            raise ServiceError(
                f"admission queue full ({self._admitted} pending); retry later"
            )
        self._admitted += 1
        self.metrics.set_gauge("queue_depth", self._admitted)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        try:
            await queues[shard].put(client_id, ("session", work, future))
            return await future
        finally:
            self._admitted -= 1
            self.metrics.set_gauge("queue_depth", self._admitted)

    async def open_session(
        self,
        request: PlanRequest,
        client_id: str = "local",
        session_id: Optional[str] = None,
    ) -> SessionUpdate:
        """Open a group session; returns the opening update (seq 0)."""
        if not self._shard_queues:
            raise ServiceError("service is not running")
        loop = asyncio.get_running_loop()
        # canonical-network routing, computed off-loop like submit's lookup
        shard = await loop.run_in_executor(None, self.router.shard_for, request)

        def work() -> SessionUpdate:
            update = self.sessions.open(
                request, session_id=session_id, client_id=client_id
            )
            # later deltas route here, serializing the session's stream
            self.sessions.session(update.session_id).shard = shard
            return update

        return await self._run_session_op(shard, client_id, work)

    async def apply_session_delta(
        self, session_id: str, delta: MembershipDelta, client_id: str = "local"
    ) -> SessionUpdate:
        """Apply one membership delta; returns the repaired update."""
        session = self.sessions.session(session_id)
        shard = session.shard if session.shard is not None else 0
        work = functools.partial(self.sessions.apply, session_id, delta)
        return await self._run_session_op(shard, client_id, work)

    async def resume_session(
        self, session_id: str, client_id: str = "local"
    ) -> SessionUpdate:
        """Replay the last acknowledged update (reconnect path)."""
        session = self.sessions.session(session_id)
        shard = session.shard if session.shard is not None else 0
        work = functools.partial(self.sessions.resume, session_id)
        return await self._run_session_op(shard, client_id, work)

    async def close_session(
        self, session_id: str, client_id: str = "local"
    ) -> None:
        """Close a session (releases its pinned table)."""
        session = self.sessions.session(session_id)
        shard = session.shard if session.shard is not None else 0
        work = functools.partial(self.sessions.close, session_id)
        return await self._run_session_op(shard, client_id, work)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        """Whether the service loop is up (background or foreground)."""
        return self._loop is not None

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` of the TCP listener, or ``None``."""
        return self._address

    async def _startup(
        self, host: Optional[str], port: int
    ) -> Optional[Tuple[str, int]]:
        loop = asyncio.get_running_loop()
        if self.store is not None and self.store not in self.planner.cache_tiers:
            self.planner.add_cache_tier(self.store)
        # one fair queue per shard: clients round-robin within a shard,
        # shards never contend; the global _admitted counter (submit)
        # bounds the total backlog at max_pending
        self._admitted = 0
        self._shard_queues = [
            FairQueue(self.max_pending) for _ in range(self.router.num_shards)
        ]
        self._dispatchers = [
            loop.create_task(self._shard_loop(shard))
            for shard in range(self.router.num_shards)
        ]
        if host is None:
            return None
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self._address

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        for task in self._dispatchers:
            task.cancel()
        await asyncio.gather(
            *self._dispatchers, *self._conn_tasks, return_exceptions=True
        )
        self._dispatchers = []
        self._conn_tasks.clear()
        for shard_queue in self._shard_queues:
            for _client, (_kind, _work, future) in shard_queue.drain():
                if not future.done():
                    future.set_exception(ServiceError("service shutting down"))
        self._shard_queues = []
        self._address = None
        # release every session's pinned table so a caller-supplied
        # planner (and its table cache) is handed back unencumbered
        self.sessions.close_all()
        if self.store is not None:
            self.planner.remove_cache_tier(self.store)

    def start_background(
        self, host: str = "127.0.0.1", port: int = 0, *, tcp: bool = False
    ) -> Optional[Tuple[str, int]]:
        """Run the service on a daemon thread; returns the TCP address.

        With ``tcp=False`` (the default) no socket is opened — requests
        come in through :meth:`submit_sync` /
        :class:`~repro.service.client.InProcessClient`.  With ``tcp=True``
        a JSON-lines listener is bound (``port=0`` picks a free port) and
        the bound ``(host, port)`` is returned.
        """
        if self._loop is not None:
            raise ServiceError("service is already running")
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.call_soon(started.set)
            loop.run_forever()

        self._loop = loop
        self._thread = threading.Thread(
            target=run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=self.startup_timeout_s):
            raise ServiceError(
                f"service startup stuck in phase 'event-loop startup' "
                f"after {self.startup_timeout_s:g}s"
            )
        future = asyncio.run_coroutine_threadsafe(
            self._startup(host if tcp else None, port), loop
        )
        try:
            return future.result(timeout=self.startup_timeout_s)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ServiceError(
                f"service startup stuck in phase 'listener/dispatcher "
                f"startup' after {self.startup_timeout_s:g}s"
            ) from None

    def stop(self) -> None:
        """Stop the background service and release every worker.

        Each phase is bounded by ``shutdown_timeout_s``; a phase that
        overruns raises a :class:`ServiceError` naming it, with the
        service state left intact so a retry (e.g. with a longer timeout)
        still has a loop to shut down.
        """
        loop = self._loop
        if loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), loop)
        try:
            future.result(timeout=self.shutdown_timeout_s)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ServiceError(
                f"service stop stuck in phase 'graceful shutdown' after "
                f"{self.shutdown_timeout_s:g}s (loop left running; call "
                f"stop() again or raise shutdown_timeout_s)"
            ) from None
        self._loop = None
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=self.shutdown_timeout_s)
            if self._thread.is_alive():
                raise ServiceError(
                    f"service stop stuck in phase 'event-loop join' after "
                    f"{self.shutdown_timeout_s:g}s (daemon thread abandoned)"
                )
            self._thread = None
        loop.close()
        self.router.shutdown()

    def __enter__(self) -> "PlanningService":
        """Start embedded (no TCP) on entry."""
        self.start_background(tcp=False)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _sync(
        self, coro_factory: Callable[[], Any], timeout: Optional[float]
    ) -> Any:
        """Run one service coroutine from any thread (background mode only)."""
        loop = self._loop
        if loop is None:
            raise ServiceError(
                "service is not running; call start_background() first"
            )
        future = asyncio.run_coroutine_threadsafe(coro_factory(), loop)
        try:
            return future.result(timeout=timeout)
        except concurrent.futures.TimeoutError:
            # same surface as ServiceClient: timeouts are library errors
            future.cancel()
            raise ServiceError(
                f"request timed out after {timeout}s (still running "
                f"server-side unless cancellation won the race)"
            ) from None

    def submit_sync(
        self,
        request: PlanRequest,
        client_id: str = "local",
        timeout: Optional[float] = None,
    ) -> Tuple[PlanResult, str]:
        """Blocking :meth:`submit` from any thread (background mode only)."""
        return self._sync(lambda: self.submit(request, client_id), timeout)

    def open_session_sync(
        self,
        request: PlanRequest,
        client_id: str = "local",
        session_id: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> SessionUpdate:
        """Blocking :meth:`open_session` from any thread."""
        return self._sync(
            lambda: self.open_session(request, client_id, session_id), timeout
        )

    def apply_session_delta_sync(
        self,
        session_id: str,
        delta: MembershipDelta,
        client_id: str = "local",
        timeout: Optional[float] = None,
    ) -> SessionUpdate:
        """Blocking :meth:`apply_session_delta` from any thread."""
        return self._sync(
            lambda: self.apply_session_delta(session_id, delta, client_id), timeout
        )

    def resume_session_sync(
        self,
        session_id: str,
        client_id: str = "local",
        timeout: Optional[float] = None,
    ) -> SessionUpdate:
        """Blocking :meth:`resume_session` from any thread."""
        return self._sync(
            lambda: self.resume_session(session_id, client_id), timeout
        )

    def close_session_sync(
        self,
        session_id: str,
        client_id: str = "local",
        timeout: Optional[float] = None,
    ) -> None:
        """Blocking :meth:`close_session` from any thread."""
        return self._sync(
            lambda: self.close_session(session_id, client_id), timeout
        )

    def run(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        ready: Optional[Callable[[Tuple[str, int]], None]] = None,
    ) -> None:
        """Run the TCP server in the foreground until interrupted.

        ``ready`` is invoked with the bound address once the listener is
        up (``repro serve`` prints it).  This is the blocking entry point
        the CLI uses; embedded consumers use :meth:`start_background`.
        """
        if self._loop is not None or self._shard_queues:
            raise ServiceError("service is already running")

        async def main() -> None:
            address = await self._startup(host, port)
            self._loop = asyncio.get_running_loop()
            if ready is not None and address is not None:
                ready(address)
            try:
                assert self._server is not None
                await self._server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                self._loop = None
                await self._shutdown()

        try:
            asyncio.run(main())
        finally:
            self.router.shutdown()

    # ------------------------------------------------------------------
    # TCP front-end
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # register so _shutdown can cancel handlers blocked on readline
        # (server.close() stops listening but leaves live connections)
        this_task = asyncio.current_task()
        if this_task is not None:
            self._conn_tasks.add(this_task)
        self.metrics.inc("connections")
        peer = writer.get_extra_info("peername")
        default_client = f"{peer[0]}:{peer[1]}" if peer else "tcp"
        write_lock = asyncio.Lock()

        async def send(message: Dict[str, Any]) -> None:
            async with write_lock:
                writer.write(encode(message))
                await writer.drain()

        plan_tasks: "set[asyncio.Task[None]]" = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode(line)
                except ServiceError as exc:
                    self.metrics.inc_error("protocol_errors")
                    await send(error_message(str(exc)))
                    continue
                kind = message["type"]
                message_id = message.get("id")
                if kind == "ping":
                    await send({"type": "pong", "id": message_id})
                elif kind == "metrics":
                    await send(
                        {
                            "type": "metrics",
                            "id": message_id,
                            "metrics": self.describe_metrics(),
                        }
                    )
                elif kind == "plan":
                    task = asyncio.get_running_loop().create_task(
                        self._handle_plan(message, default_client, send)
                    )
                    plan_tasks.add(task)
                    self._conn_tasks.add(task)
                    task.add_done_callback(plan_tasks.discard)
                    task.add_done_callback(self._conn_tasks.discard)
                elif kind in (
                    "session-open",
                    "session-delta",
                    "session-resume",
                    "session-close",
                ):
                    task = asyncio.get_running_loop().create_task(
                        self._handle_session(message, default_client, send)
                    )
                    plan_tasks.add(task)
                    self._conn_tasks.add(task)
                    task.add_done_callback(plan_tasks.discard)
                    task.add_done_callback(self._conn_tasks.discard)
                else:
                    self.metrics.inc_error("protocol_errors")
                    await send(
                        error_message(
                            f"unknown message type {kind!r}", id=message_id
                        )
                    )
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            if this_task is not None:
                self._conn_tasks.discard(this_task)
            for task in plan_tasks:
                task.cancel()
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_plan(
        self,
        message: Dict[str, Any],
        default_client: str,
        send: Callable[[Dict[str, Any]], Any],
    ) -> None:
        message_id = message.get("id")
        try:
            request = parse_plan_request(message)
            client_id = str(message.get("client") or default_client)
            result, tier = await self.submit(request, client_id=client_id)
            await send(
                result_message(
                    result, tier, id=message_id, degraded=(tier == TIER_DEGRADED)
                )
            )
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            with contextlib.suppress(Exception):  # peer may already be gone
                await send(error_message(str(exc), id=message_id))
        except Exception as exc:  # noqa: BLE001 - report, don't drop the line
            with contextlib.suppress(Exception):
                await send(error_message(f"internal error: {exc}", id=message_id))

    async def _handle_session(
        self,
        message: Dict[str, Any],
        default_client: str,
        send: Callable[[Dict[str, Any]], Any],
    ) -> None:
        message_id = message.get("id")
        try:
            kind = message["type"]
            client_id = str(message.get("client") or default_client)
            if kind == "session-open":
                request, chosen = parse_session_open(message)
                update = await self.open_session(
                    request, client_id=client_id, session_id=chosen
                )
                await send(session_result_message(update, id=message_id))
            elif kind == "session-delta":
                session_id, delta = parse_session_delta(message)
                update = await self.apply_session_delta(
                    session_id, delta, client_id=client_id
                )
                await send(session_result_message(update, id=message_id))
            elif kind == "session-resume":
                update = await self.resume_session(
                    parse_session_ref(message), client_id=client_id
                )
                await send(session_result_message(update, id=message_id))
            else:  # session-close (the dispatch table admits nothing else)
                session_id = parse_session_ref(message)
                await self.close_session(session_id, client_id=client_id)
                await send(session_closed_message(session_id, id=message_id))
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            with contextlib.suppress(Exception):  # peer may already be gone
                await send(error_message(str(exc), id=message_id))
        except Exception as exc:  # noqa: BLE001 - report, don't drop the line
            with contextlib.suppress(Exception):
                await send(error_message(f"internal error: {exc}", id=message_id))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def describe_metrics(self) -> Dict[str, Any]:
        """Service counters + shard balance + planner cache + store stats."""
        data: Dict[str, Any] = self.metrics.snapshot()
        data.update(self.router.stats())
        info = self.planner.cache_info()
        data.update(
            {
                "planner_cache_hits": info.hits,
                "planner_cache_size": info.currsize,
                "planner_tier_hits": info.tier_hits,
            }
        )
        if self.store is not None:
            stats = self.store.stats()
            data.update(
                {
                    "store_live_keys": stats.live_keys,
                    "store_records": stats.total_records,
                    "store_segments": stats.segments,
                }
            )
        return data
