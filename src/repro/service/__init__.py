"""repro.service — the long-running multicast planning service.

This package turns the one-shot :class:`repro.api.Planner` into a served
control plane (see SERVICE.md for the operator view):

- :class:`~repro.service.server.PlanningService` — asyncio service with a
  per-client fair admission queue, fingerprint-sharded solver workers and
  a JSON-lines TCP front-end (``repro serve``);
- :class:`~repro.service.store.PlanStore` — persistent append-only plan
  store (JSONL segments of ``repro/plan-result-v1`` records) that plugs
  into the planner as a :class:`repro.api.CacheTier`, giving
  memory → store → solve lookups and warm starts across restarts;
- :class:`~repro.service.client.ServiceClient` /
  :class:`~repro.service.client.InProcessClient` — wire and embedded
  clients with one surface (``repro submit`` uses the former); a
  :class:`~repro.service.client.RetryPolicy` adds bounded retries with
  seeded backoff and automatic reconnects (SERVICE.md, "Resilience &
  operations");
- :class:`~repro.service.sessions.SessionManager` — group sessions under
  membership churn: delta streams repaired from pinned optimal tables,
  bit-identical to cold re-plans;
- :mod:`~repro.service.protocol` — the versioned wire protocol;
- :class:`~repro.service.shard.ShardRouter` and
  :class:`~repro.service.metrics.MetricsRegistry` — worker routing and
  observability.

Quickstart
----------
>>> from repro.service import InProcessClient, PlanningService   # doctest: +SKIP
>>> with PlanningService(store_path="plans/") as service:        # doctest: +SKIP
...     client = InProcessClient(service)                        # doctest: +SKIP
...     served = client.plan(mset, solver="dp")                  # doctest: +SKIP
...     served.result.value, served.tier                         # doctest: +SKIP
"""

from repro.service.client import (
    InProcessClient,
    RetryPolicy,
    ServedPlan,
    ServiceClient,
)
from repro.service.metrics import MetricsRegistry
from repro.service.server import FairQueue, PlanningService
from repro.service.sessions import GroupSession, SessionManager, SessionUpdate
from repro.service.shard import ShardRouter
from repro.service.store import PlanStore, StoreStats

__all__ = [
    "PlanningService",
    "FairQueue",
    "PlanStore",
    "StoreStats",
    "ShardRouter",
    "MetricsRegistry",
    "ServiceClient",
    "InProcessClient",
    "RetryPolicy",
    "ServedPlan",
    "SessionManager",
    "GroupSession",
    "SessionUpdate",
]
