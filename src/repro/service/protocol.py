"""JSON-lines wire protocol of the planning service (documented in SERVICE.md).

One message per ``\\n``-terminated line, UTF-8 JSON objects, correlated by
a caller-chosen ``id`` echoed on the response — so a client may pipeline
many requests and read responses out of order.

Client -> server message types:

====================  ========================================================
``plan``              ``{"type": "plan", "id": ..., "client": ...,
                      "request": {repro/plan-request-v1}}``
``ping``              liveness probe
``metrics``           request a counters snapshot
``session-open``      ``{"type": "session-open", "id": ..., "client": ...,
                      "session": optional chosen id, "request":
                      {repro/plan-request-v1}}`` — open a group session
``session-delta``     ``{"type": "session-delta", "id": ..., "session":
                      ..., "delta": {repro/membership-delta-v1}}`` —
                      stream one membership batch
``session-resume``    ``{"type": "session-resume", "id": ...,
                      "session": ...}`` — reconnect: replay the last
                      acknowledged update
``session-close``     ``{"type": "session-close", "id": ...,
                      "session": ...}``
====================  ========================================================

Server -> client message types:

====================  ========================================================
``result``            ``{"type": "result", "id": ..., "tier":
                      "memory"|"store"|"solve"|"degraded", "result":
                      {repro/plan-result-v1}}`` — plus ``"degraded":
                      true`` when a solve deadline forced a greedy
                      fallback answer (key absent otherwise)
``error``             ``{"type": "error", "id": ..., "error": "..."}``
``pong``              answer to ``ping``
``metrics``           ``{"type": "metrics", "metrics": {...}}``
``session-result``    ``{"type": "session-result", "id": ..., "session":
                      ..., "seq": ..., "tier": ..., "repaired":
                      true|false, "result": {repro/plan-result-v1}}`` —
                      the acknowledged plan as of ``seq`` (``0`` for the
                      opening plan); answers ``session-open``,
                      ``session-delta`` and ``session-resume``
``session-closed``    ``{"type": "session-closed", "id": ...,
                      "session": ...}``
====================  ========================================================

The session message family is versioned as ``session-v1`` (its sequencing
semantics — accept exactly ``last + 1``, exact duplicates idempotent,
everything else fail-closed — live in :mod:`repro.service.sessions`).
The instance/request/result/delta payloads are exactly the versioned
formats of :mod:`repro.io.serialization` and :mod:`repro.core.repair` —
the wire adds only the envelope.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.api.request import PlanRequest, PlanResult
from repro.core.repair import (
    MembershipDelta,
    membership_delta_from_dict,
    membership_delta_to_dict,
)
from repro.exceptions import ReproError, ServiceError
from repro.io.serialization import (
    plan_request_from_dict,
    plan_request_to_dict,
    plan_result_from_dict,
    plan_result_to_dict,
)
from repro.service.sessions import SessionUpdate

__all__ = [
    "PROTOCOL",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "encode",
    "decode",
    "plan_message",
    "ping_message",
    "metrics_message",
    "result_message",
    "error_message",
    "session_open_message",
    "session_delta_message",
    "session_resume_message",
    "session_close_message",
    "session_result_message",
    "session_closed_message",
    "parse_plan_request",
    "parse_plan_result",
    "parse_session_open",
    "parse_session_ref",
    "parse_session_delta",
    "parse_session_update",
]

#: Protocol identifier (bumped on incompatible envelope changes).
PROTOCOL = "repro/service-v1"

REQUEST_TYPES = (
    "plan",
    "ping",
    "metrics",
    "session-open",
    "session-delta",
    "session-resume",
    "session-close",
)
RESPONSE_TYPES = (
    "result",
    "error",
    "pong",
    "metrics",
    "session-result",
    "session-closed",
)


def encode(message: Dict[str, Any]) -> bytes:
    """Serialize a message to one wire line (UTF-8, newline-terminated)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict (envelope-validated)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ServiceError("malformed wire message: not a JSON line") from None
    if not isinstance(message, dict):
        raise ServiceError(
            f"malformed wire message: expected an object, "
            f"got {type(message).__name__}"
        )
    if "type" not in message:
        raise ServiceError("malformed wire message: missing 'type'")
    return message


# ----------------------------------------------------------------------
# client-side constructors
# ----------------------------------------------------------------------
def plan_message(
    request: PlanRequest, *, id: Any = None, client: Optional[str] = None
) -> Dict[str, Any]:
    """Envelope a :class:`PlanRequest` as a ``plan`` message."""
    message: Dict[str, Any] = {
        "type": "plan",
        "id": id,
        "request": plan_request_to_dict(request),
    }
    if client is not None:
        message["client"] = client
    return message


def ping_message(*, id: Any = None) -> Dict[str, Any]:
    """A liveness probe."""
    return {"type": "ping", "id": id}


def metrics_message(*, id: Any = None) -> Dict[str, Any]:
    """A counters-snapshot request."""
    return {"type": "metrics", "id": id}


def session_open_message(
    request: PlanRequest,
    *,
    id: Any = None,
    client: Optional[str] = None,
    session: Optional[str] = None,
) -> Dict[str, Any]:
    """Open a group session on ``request`` (``session`` picks the id)."""
    message: Dict[str, Any] = {
        "type": "session-open",
        "id": id,
        "request": plan_request_to_dict(request),
    }
    if client is not None:
        message["client"] = client
    if session is not None:
        message["session"] = session
    return message


def session_delta_message(
    session: str,
    delta: MembershipDelta,
    *,
    id: Any = None,
    client: Optional[str] = None,
) -> Dict[str, Any]:
    """Stream one membership delta into an open session."""
    message: Dict[str, Any] = {
        "type": "session-delta",
        "id": id,
        "session": session,
        "delta": membership_delta_to_dict(delta),
    }
    if client is not None:
        message["client"] = client
    return message


def session_resume_message(session: str, *, id: Any = None) -> Dict[str, Any]:
    """Reconnect: ask for the session's last acknowledged update."""
    return {"type": "session-resume", "id": id, "session": session}


def session_close_message(session: str, *, id: Any = None) -> Dict[str, Any]:
    """Close an open session (releases its pinned table)."""
    return {"type": "session-close", "id": id, "session": session}


# ----------------------------------------------------------------------
# server-side constructors
# ----------------------------------------------------------------------
def result_message(
    result: PlanResult, tier: str, *, id: Any = None, degraded: bool = False
) -> Dict[str, Any]:
    """Envelope a :class:`PlanResult` (with its serving tier) as ``result``.

    ``degraded=True`` marks a deadline-degraded answer: the server ran
    out of solve budget and returned a fast greedy plan plus the bounds
    sandwich instead of the requested solver's answer.  The key is only
    present when set, so pre-resilience clients parse unchanged.
    """
    message: Dict[str, Any] = {
        "type": "result",
        "id": id,
        "tier": tier,
        "result": plan_result_to_dict(result),
    }
    if degraded:
        message["degraded"] = True
    return message


def error_message(error: str, *, id: Any = None) -> Dict[str, Any]:
    """Envelope a failure as an ``error`` message."""
    return {"type": "error", "id": id, "error": error}


def session_result_message(update: SessionUpdate, *, id: Any = None) -> Dict[str, Any]:
    """Envelope a :class:`SessionUpdate` as a ``session-result``."""
    return {
        "type": "session-result",
        "id": id,
        "session": update.session_id,
        "seq": update.seq,
        "tier": update.tier,
        "repaired": update.repaired,
        "result": plan_result_to_dict(update.result),
    }


def session_closed_message(session: str, *, id: Any = None) -> Dict[str, Any]:
    """Acknowledge a ``session-close``."""
    return {"type": "session-closed", "id": id, "session": session}


# ----------------------------------------------------------------------
# payload extraction
# ----------------------------------------------------------------------
def parse_plan_request(message: Dict[str, Any]) -> PlanRequest:
    """Extract the :class:`PlanRequest` from a ``plan`` message."""
    if message.get("type") != "plan":
        raise ServiceError(f"expected a 'plan' message, got {message.get('type')!r}")
    payload = message.get("request")
    if not isinstance(payload, dict):
        raise ServiceError("'plan' message carries no request payload")
    return plan_request_from_dict(payload)


def parse_plan_result(message: Dict[str, Any]) -> PlanResult:
    """Extract the :class:`PlanResult` from a ``result`` message."""
    if message.get("type") != "result":
        raise ServiceError(
            f"expected a 'result' message, got {message.get('type')!r}"
        )
    payload = message.get("result")
    if not isinstance(payload, dict):
        raise ServiceError("'result' message carries no result payload")
    return plan_result_from_dict(payload)


def parse_session_open(
    message: Dict[str, Any],
) -> "tuple[PlanRequest, Optional[str]]":
    """``(request, chosen session id or None)`` from a ``session-open``."""
    if message.get("type") != "session-open":
        raise ServiceError(
            f"expected a 'session-open' message, got {message.get('type')!r}"
        )
    payload = message.get("request")
    if not isinstance(payload, dict):
        raise ServiceError("'session-open' message carries no request payload")
    session = message.get("session")
    if session is not None and (not isinstance(session, str) or not session):
        raise ServiceError("'session-open' session id must be a non-empty string")
    return plan_request_from_dict(payload), session


def parse_session_ref(message: Dict[str, Any]) -> str:
    """The session id any ``session-*`` message refers to."""
    session = message.get("session")
    if not isinstance(session, str) or not session:
        raise ServiceError(
            f"{message.get('type', 'session')!r} message carries no session id"
        )
    return session


def parse_session_delta(message: Dict[str, Any]) -> "tuple[str, MembershipDelta]":
    """``(session id, delta)`` from a ``session-delta`` message."""
    if message.get("type") != "session-delta":
        raise ServiceError(
            f"expected a 'session-delta' message, got {message.get('type')!r}"
        )
    session = parse_session_ref(message)
    payload = message.get("delta")
    try:
        delta = membership_delta_from_dict(payload)
    except ServiceError:
        raise
    except ReproError as exc:
        raise ServiceError(f"malformed session delta: {exc}") from exc
    return session, delta


def parse_session_update(message: Dict[str, Any]) -> SessionUpdate:
    """Rebuild the :class:`SessionUpdate` from a ``session-result``."""
    if message.get("type") != "session-result":
        raise ServiceError(
            f"expected a 'session-result' message, got {message.get('type')!r}"
        )
    payload = message.get("result")
    if not isinstance(payload, dict):
        raise ServiceError("'session-result' message carries no result payload")
    seq = message.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ServiceError(f"'session-result' seq must be an int >= 0, got {seq!r}")
    return SessionUpdate(
        session_id=parse_session_ref(message),
        seq=seq,
        result=plan_result_from_dict(payload),
        tier=str(message.get("tier", "")),
        repaired=bool(message.get("repaired", False)),
    )
