"""JSON-lines wire protocol of the planning service (documented in SERVICE.md).

One message per ``\\n``-terminated line, UTF-8 JSON objects, correlated by
a caller-chosen ``id`` echoed on the response — so a client may pipeline
many requests and read responses out of order.

Client -> server message types:

====================  ========================================================
``plan``              ``{"type": "plan", "id": ..., "client": ...,
                      "request": {repro/plan-request-v1}}``
``ping``              liveness probe
``metrics``           request a counters snapshot
====================  ========================================================

Server -> client message types:

====================  ========================================================
``result``            ``{"type": "result", "id": ..., "tier":
                      "memory"|"store"|"solve", "result":
                      {repro/plan-result-v1}}``
``error``             ``{"type": "error", "id": ..., "error": "..."}``
``pong``              answer to ``ping``
``metrics``           ``{"type": "metrics", "metrics": {...}}``
====================  ========================================================

The instance/request/result payloads are exactly the versioned formats of
:mod:`repro.io.serialization` — the wire adds only the envelope.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.api.request import PlanRequest, PlanResult
from repro.exceptions import ServiceError
from repro.io.serialization import (
    plan_request_from_dict,
    plan_request_to_dict,
    plan_result_from_dict,
    plan_result_to_dict,
)

__all__ = [
    "PROTOCOL",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "encode",
    "decode",
    "plan_message",
    "ping_message",
    "metrics_message",
    "result_message",
    "error_message",
    "parse_plan_request",
    "parse_plan_result",
]

#: Protocol identifier (bumped on incompatible envelope changes).
PROTOCOL = "repro/service-v1"

REQUEST_TYPES = ("plan", "ping", "metrics")
RESPONSE_TYPES = ("result", "error", "pong", "metrics")


def encode(message: Dict[str, Any]) -> bytes:
    """Serialize a message to one wire line (UTF-8, newline-terminated)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict (envelope-validated)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ServiceError("malformed wire message: not a JSON line") from None
    if not isinstance(message, dict):
        raise ServiceError(
            f"malformed wire message: expected an object, "
            f"got {type(message).__name__}"
        )
    if "type" not in message:
        raise ServiceError("malformed wire message: missing 'type'")
    return message


# ----------------------------------------------------------------------
# client-side constructors
# ----------------------------------------------------------------------
def plan_message(
    request: PlanRequest, *, id: Any = None, client: Optional[str] = None
) -> Dict[str, Any]:
    """Envelope a :class:`PlanRequest` as a ``plan`` message."""
    message: Dict[str, Any] = {
        "type": "plan",
        "id": id,
        "request": plan_request_to_dict(request),
    }
    if client is not None:
        message["client"] = client
    return message


def ping_message(*, id: Any = None) -> Dict[str, Any]:
    """A liveness probe."""
    return {"type": "ping", "id": id}


def metrics_message(*, id: Any = None) -> Dict[str, Any]:
    """A counters-snapshot request."""
    return {"type": "metrics", "id": id}


# ----------------------------------------------------------------------
# server-side constructors
# ----------------------------------------------------------------------
def result_message(result: PlanResult, tier: str, *, id: Any = None) -> Dict[str, Any]:
    """Envelope a :class:`PlanResult` (with its serving tier) as ``result``."""
    return {
        "type": "result",
        "id": id,
        "tier": tier,
        "result": plan_result_to_dict(result),
    }


def error_message(error: str, *, id: Any = None) -> Dict[str, Any]:
    """Envelope a failure as an ``error`` message."""
    return {"type": "error", "id": id, "error": error}


# ----------------------------------------------------------------------
# payload extraction
# ----------------------------------------------------------------------
def parse_plan_request(message: Dict[str, Any]) -> PlanRequest:
    """Extract the :class:`PlanRequest` from a ``plan`` message."""
    if message.get("type") != "plan":
        raise ServiceError(f"expected a 'plan' message, got {message.get('type')!r}")
    payload = message.get("request")
    if not isinstance(payload, dict):
        raise ServiceError("'plan' message carries no request payload")
    return plan_request_from_dict(payload)


def parse_plan_result(message: Dict[str, Any]) -> PlanResult:
    """Extract the :class:`PlanResult` from a ``result`` message."""
    if message.get("type") != "result":
        raise ServiceError(
            f"expected a 'result' message, got {message.get('type')!r}"
        )
    payload = message.get("result")
    if not isinstance(payload, dict):
        raise ServiceError("'result' message carries no result payload")
    return plan_result_from_dict(payload)
