"""Thread-safe operation counters for the planning service.

A deliberately small metrics facility: named monotonic counters plus
point-in-time gauges, snapshotted as a plain dict so they can be shipped
over the wire protocol's ``metrics`` message and printed by ``repro
submit --metrics``.  No external dependency, no histogram machinery —
just enough to observe the cache-tier split (``hits_memory`` /
``hits_store`` / ``solves``), admission behaviour (``rejected``),
per-shard dispatch balance and fault handling (``errors_total``,
``timeouts``, ``degraded_served``, ``worker_restarts`` server-side;
``retries``/``reconnects`` client-side in
:attr:`repro.service.client.ServiceClient.local_metrics`).
"""

from __future__ import annotations

import threading
from typing import Dict, Union

__all__ = ["MetricsRegistry"]

Number = Union[int, float]


class MetricsRegistry:
    """Named counters and gauges behind one lock.

    Counters only ever increase (:meth:`inc`); gauges are set to the
    latest observed value (:meth:`set_gauge`).  :meth:`snapshot` returns a
    merged, sorted dict — gauges are prefixed with ``gauge_`` so the two
    families cannot collide.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Number] = {}

    def inc(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name`` (created at 0); returns it."""
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
            return value

    def inc_error(self, kind: str = "errors") -> int:
        """Count one failure under ``kind`` *and* the ``errors_total`` roll-up.

        Every error path in the service funnels through this method so
        operators can alert on one counter (``errors_total``) while still
        seeing the per-kind split (``errors``, ``protocol_errors``, ...).
        Returns the new ``errors_total``.
        """
        with self._lock:
            self._counters[kind] = self._counters.get(kind, 0) + 1
            total = self._counters.get("errors_total", 0) + 1
            self._counters["errors_total"] = total
            return total

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: Number) -> None:
        """Record the latest value of gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def snapshot(self) -> Dict[str, Number]:
        """All counters plus ``gauge_``-prefixed gauges, key-sorted."""
        with self._lock:
            merged: Dict[str, Number] = dict(self._counters)
            merged.update({f"gauge_{k}": v for k, v in self._gauges.items()})
        return dict(sorted(merged.items()))

    def reset(self) -> None:
        """Zero everything (tests only; production counters are monotonic)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
