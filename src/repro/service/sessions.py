"""Group sessions: membership-delta streams with bit-identical repair.

A *session* tracks one multicast group through churn.  The client opens
it with an initial :class:`~repro.api.request.PlanRequest`, then streams
:class:`~repro.core.repair.MembershipDelta` batches; each accepted delta
yields a :class:`SessionUpdate` carrying the *repaired* plan for the
post-delta membership.  Repair never changes a single output bit — a
repaired plan is byte-equal to cold-planning the new membership (the
``repair-identity`` conformance invariant proves it continuously) — it
only changes the *cost*:

* while churn stays inside the group's canonical network
  (:func:`repro.core.canonical.same_network`), the session keeps serving
  from the cached :class:`~repro.core.dp_table.OptimalTable`, so a delta
  costs an ``O(n)`` schedule-materialization suffix (plus an incremental
  table extension when a join raises a type count) instead of a full DP
  re-plan — the ``delta_replan`` perf kernel holds this at ≥5x;
* a delta that changes the type system falls back to a cold solve.

Sequencing is **fail-closed**: a session accepts exactly ``last_seq + 1``.
An exact duplicate of the last applied delta is answered idempotently
with the already-computed update (at-least-once clients are safe); any
other out-of-order sequence number is rejected with
:class:`~repro.exceptions.ServiceError` and the session state — last
membership, last schedule, sequence cursor — is untouched.  A rejected
*content* (unknown departure, name collision, emptied group …) is
likewise rejected whole by :func:`repro.core.repair.apply_delta` before
any state changes.

The table a session repairs from is **pinned**
(:meth:`~repro.api.tables.OptimalTableCache.acquire` with ``pin=True``)
for as long as the session holds it, so cache-budget eviction triggered
by unrelated traffic can never invalidate an in-flight repair; the pin
moves when churn changes the session's network and is released on
:meth:`SessionManager.close`.

:class:`SessionManager` is deliberately service-independent — it needs
only a :class:`~repro.api.planner.Planner` — so the conformance
invariant, the perf kernel and the property tests drive the exact
production repair path without a running service.  The
:class:`~repro.service.server.PlanningService` embeds one and exposes it
over the wire via the ``session-*`` messages
(:mod:`repro.service.protocol`).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.api.planner import _TABLE_SAFE_OPTIONS, Planner
from repro.api.request import PlanRequest, PlanResult
from repro.api.solvers import resolve
from repro.core.repair import MembershipDelta, apply_delta
from repro.exceptions import ReproError, ServiceError
from repro.service.metrics import MetricsRegistry

__all__ = ["GroupSession", "SessionManager", "SessionUpdate"]


@dataclass(frozen=True)
class SessionUpdate:
    """One acknowledged schedule: the session's plan as of ``seq``.

    ``seq`` is ``0`` for the opening plan and the delta's sequence number
    afterwards.  ``tier`` mirrors the planner's serving tiers (``"solve"``
    for a real repair or rebuild, a cache tier name otherwise);
    ``repaired`` is ``True`` when the plan was materialized from the
    session's pinned optimal table rather than a cold solve.
    """

    session_id: str
    seq: int
    result: PlanResult
    tier: str
    repaired: bool


class GroupSession:
    """Mutable per-session state (managed by :class:`SessionManager`).

    Attributes are owned by the manager and mutated only under
    :attr:`lock`; ``shard`` is assigned by the planning service so every
    operation on a session runs serially on one shard's serving thread.
    """

    def __init__(self, session_id: str, client_id: str, request: PlanRequest) -> None:
        self.session_id = session_id
        self.client_id = client_id
        self.request = request
        self.last_seq = 0
        self.last_delta: Optional[MembershipDelta] = None
        self.last_update: Optional[SessionUpdate] = None
        #: (type_keys, latency) of the table key this session holds pinned.
        self.pinned_box: Optional[Tuple[tuple, float]] = None
        self.shard: Optional[int] = None
        self.closed = False
        self.lock = threading.Lock()


class SessionManager:
    """Open/apply/resume/close group sessions over one planner.

    Thread-safe: the session registry has its own lock and every
    per-session operation serializes on the session's lock, so concurrent
    deltas for one session are applied one at a time (and the sequence
    check keeps them ordered) while distinct sessions never contend.
    """

    def __init__(self, planner: Planner, *, metrics: Optional[MetricsRegistry] = None) -> None:
        self.planner = planner
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._sessions: Dict[str, GroupSession] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def session(self, session_id: str) -> GroupSession:
        """The live session, or :class:`ServiceError` for an unknown id."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return session

    def session_ids(self) -> Tuple[str, ...]:
        """Ids of every live session (stable order by id)."""
        with self._lock:
            return tuple(sorted(self._sessions))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def open(
        self,
        request: PlanRequest,
        *,
        session_id: Optional[str] = None,
        client_id: str = "local",
    ) -> SessionUpdate:
        """Open a session on ``request`` and return the opening plan (seq 0).

        ``session_id`` lets a reconnecting client re-open under a chosen
        id; a taken id is refused (resume instead).
        """
        if not isinstance(request, PlanRequest):
            raise ServiceError(
                f"a session opens on a PlanRequest, got {type(request).__name__}"
            )
        with self._lock:
            if session_id is None:
                session_id = f"s{next(self._ids)}"
                while session_id in self._sessions:  # pragma: no cover - defensive
                    session_id = f"s{next(self._ids)}"
            elif session_id in self._sessions:
                raise ServiceError(f"session {session_id!r} is already open")
            session = GroupSession(session_id, client_id, request)
            self._sessions[session_id] = session
            self.metrics.set_gauge("sessions_active", len(self._sessions))
        try:
            with session.lock:
                result, tier, repaired = self._plan(session, request)
                update = SessionUpdate(session_id, 0, result, tier, repaired)
                session.last_update = update
        except BaseException:
            with self._lock:
                self._sessions.pop(session_id, None)
                self.metrics.set_gauge("sessions_active", len(self._sessions))
            self._release_pin(session)
            raise
        self.metrics.inc("sessions_opened")
        return update

    def apply(self, session_id: str, delta: MembershipDelta) -> SessionUpdate:
        """Apply one delta and return the repaired plan — or fail closed.

        Accepts exactly ``last_seq + 1``.  An exact duplicate of the last
        applied delta replays its update idempotently; any other sequence
        number, and any delta whose content the membership rejects, raises
        :class:`ServiceError` with the session state untouched.
        """
        session = self.session(session_id)
        with session.lock:
            if session.closed:  # closed while we waited on the lock
                raise ServiceError(f"session {session_id!r} is closed")
            if delta.seq == session.last_seq and delta == session.last_delta:
                self.metrics.inc("session_duplicates")
                assert session.last_update is not None
                return session.last_update
            if delta.seq != session.last_seq + 1:
                self.metrics.inc_error("session_rejects")
                raise ServiceError(
                    f"session {session_id!r}: out-of-order delta seq "
                    f"{delta.seq} (expected {session.last_seq + 1})"
                )
            try:
                new_mset = apply_delta(session.request.instance, delta)
            except ReproError as exc:
                self.metrics.inc_error("session_rejects")
                raise ServiceError(
                    f"session {session_id!r}: rejected delta {delta.seq}: {exc}"
                ) from exc
            request = replace(session.request, instance=new_mset)
            result, tier, repaired = self._plan(session, request)
            # commit only after the plan succeeded: a solver error leaves
            # the session at its previous membership and sequence
            session.request = request
            session.last_seq = delta.seq
            session.last_delta = delta
            update = SessionUpdate(session_id, delta.seq, result, tier, repaired)
            session.last_update = update
        self.metrics.inc("session_deltas")
        if repaired:
            self.metrics.inc("session_repairs")
        return update

    def resume(self, session_id: str) -> SessionUpdate:
        """The last acknowledged update (reconnect path; no state change)."""
        session = self.session(session_id)
        with session.lock:
            if session.closed:
                raise ServiceError(f"session {session_id!r} is closed")
            assert session.last_update is not None
            self.metrics.inc("session_resumes")
            return session.last_update

    def close(self, session_id: str) -> None:
        """Close the session and release its pinned table."""
        session = self.session(session_id)
        with session.lock:
            if session.closed:
                raise ServiceError(f"session {session_id!r} is closed")
            session.closed = True
            self._release_pin(session)
        with self._lock:
            self._sessions.pop(session_id, None)
            self.metrics.set_gauge("sessions_active", len(self._sessions))
        self.metrics.inc("sessions_closed")

    def close_all(self) -> None:
        """Close every live session (service shutdown path)."""
        for session_id in self.session_ids():
            try:
                self.close(session_id)
            except ServiceError:  # pragma: no cover - lost a close race
                pass

    # ------------------------------------------------------------------
    # the repair engine
    # ------------------------------------------------------------------
    def _release_pin(self, session: GroupSession) -> None:
        box = session.pinned_box
        session.pinned_box = None
        tables = self.planner.table_cache
        if box is not None and tables is not None:
            tables.release_box(*box)

    def _plan(
        self, session: GroupSession, request: PlanRequest
    ) -> Tuple[PlanResult, str, bool]:
        """Serve one membership: cache tiers, pinned-table repair, or cold.

        Runs under ``session.lock``.  The cache tiers come first so a
        replayed stream (client retry, post-crash restart over a
        :class:`~repro.service.store.PlanStore`) answers from the store
        without re-solving.  The repair path acquires the session's
        network table *pinned* — the pin is taken inside the cache's own
        acquire lock, so concurrent eviction pressure can never drop the
        table between acquiring and holding it — and keeps exactly one
        pin per session, moved when churn changes the network.  Everything
        else (no reusable table, options the table cannot honor, a state
        budget bust, a network change past the cache) takes the cold path.
        """
        planner = self.planner
        key = planner.request_key(request)
        hit = planner.cache_lookup(request, key)
        if hit is not None:
            result, tier = hit
            self.metrics.inc(f"session_hits_{tier}")
            return result, tier, False
        entry, spec_options = resolve(request.solver)
        merged = {**spec_options, **request.options}
        tables = planner.table_cache
        result: Optional[PlanResult] = None
        repaired = False
        if (
            tables is not None
            and entry.capabilities.reusable_table
            and not (set(merged) - _TABLE_SAFE_OPTIONS)
        ):
            canon = request.instance.canonical_form()
            box = (canon.mset.type_keys(), canon.mset.latency)
            # TableCacheConfig.pin_sessions=False opts a deployment out of
            # session pinning: repairs still prefer the resident table but
            # eviction pressure may drop it between deltas
            pinning = planner.table_config.pin_sessions
            table = tables.acquire(
                canon.mset,
                merged.get("max_states"),
                pin=pinning and box != session.pinned_box,
            )
            if table is not None:
                if pinning and box != session.pinned_box:
                    old = session.pinned_box
                    session.pinned_box = box
                    if old is not None:
                        tables.release_box(*old)
                result = planner.solve_from_table(request, table, canon.mset)
                repaired = True
        if result is None:
            result = planner.solve_uncached(request)
        planner.cache_store(request, result, key)
        return result, "solve", repaired
