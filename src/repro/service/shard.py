"""Canonically-sharded solver workers for the planning service.

The service fans real solves out to a fixed set of *shards*.  A request is
routed by its canonical **network** key
(:attr:`repro.core.canonical.CanonicalForm.network_key` — the instance's
canonical type system plus latency), so all traffic drawn from the same
network lands on the same shard: concurrent duplicate (or merely
*equivalent*) requests serialize behind one worker instead of burning
several on the same solve, and the shard's worker answers repeated
same-network ``dp`` traffic from the optimal table it already holds
(:data:`repro.api.planner._STANDALONE_TABLES`) instead of rebuilding it.

Each shard owns one single-worker executor, created lazily:

- ``mode="process"`` — a one-process :class:`ProcessPoolExecutor` running
  :func:`repro.api.planner._plan_standalone` (true CPU parallelism across
  shards; requests must be picklable);
- ``mode="thread"`` — a one-thread pool (portable default; the GIL caps
  parallelism but keeps the event loop responsive);
- ``mode="inline"`` — solve on the caller's thread (tests and examples;
  blocks the event loop, so never the server default).

A :class:`~repro.api.tables.TableCacheConfig` threads table policy down
to the workers.  Process-mode workers are initialized with
:func:`repro.api.planner.configure_standalone_tables`, so every shard
process applies the same policy — and when the config names a
``snapshot_dir``, each process *attaches* the directory's mmap-backed
table snapshots instead of rebuilding private copies: the OS shares the
resident pages across all shard processes.  Thread/inline workers share
one router-local cache built from the same config.

Resilience
----------
Process-mode workers are *supervised*: a worker that dies mid-solve
(OOM-killed, segfaulted, ``SIGKILL``-ed — surfacing as a broken process
pool) is detected, the shard's pool is rebuilt through the same
``configure_standalone_tables`` initializer, ``worker_restarts`` is
counted, and the in-flight request is requeued onto the fresh worker
once.  A second consecutive death fails the request closed with a
*retryable* :class:`ServiceError` instead of looping.  Solves may also
carry a per-request deadline: :meth:`ShardRouter.solve_in_worker` raises
:class:`~repro.exceptions.DeadlineExceededError` when it elapses, which
the service converts into an explicitly-``degraded`` response.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Dict, Optional

from repro import faults
from repro.api.planner import (
    _plan_standalone,
    _plan_standalone_with,
    configure_standalone_tables,
)
from repro.api.request import PlanRequest, PlanResult
from repro.api.tables import OptimalTableCache, TableCacheConfig
from repro.exceptions import (
    DeadlineExceededError,
    ReproError,
    ServiceRetryableError,
)
from repro.service.metrics import MetricsRegistry

__all__ = ["ShardRouter", "WORKER_MODES"]

WORKER_MODES = ("thread", "process", "inline")


class ShardRouter:
    """Route plan requests to ``num_shards`` single-worker executors."""

    def __init__(
        self,
        num_shards: int = 4,
        *,
        mode: str = "thread",
        table_config: Optional[TableCacheConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_shards < 1:
            raise ReproError(f"num_shards must be >= 1, got {num_shards}")
        if mode not in WORKER_MODES:
            raise ReproError(
                f"worker mode must be one of {WORKER_MODES}, got {mode!r}"
            )
        self.num_shards = num_shards
        self.mode = mode
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.table_config = (
            table_config.validate() if table_config is not None else None
        )
        # thread/inline workers share one router-local cache; process-mode
        # workers get their own via the executor initializer instead
        self._tables: Optional[OptimalTableCache] = (
            self.table_config.build_cache() if self.table_config is not None else None
        )
        self._lock = threading.Lock()
        self._executors: Dict[int, Executor] = {}
        self._supervisors: Dict[int, Executor] = {}
        self._deadline_runners: Dict[int, Executor] = {}
        self._dispatched: Dict[int, int] = {s: 0 for s in range(num_shards)}

    def shard_of(self, routing_key: str) -> int:
        """Stable shard id for a routing key (hex prefix modulo shards)."""
        return int(routing_key[:8], 16) % self.num_shards

    def shard_for(self, request: PlanRequest) -> int:
        """Shard id a request routes to: by canonical *network* key.

        Same-network traffic — whatever the destination mix, node names
        or power-of-two time unit — shares a shard, so the worker that
        already built that network's optimal table keeps serving it.
        Identical (and equivalent) concurrent requests still always share
        a shard, which the service's duplicate-coalescing relies on.
        """
        return self.shard_of(request.instance.canonical_form().network_key)

    def _executor(self, shard: int) -> Optional[Executor]:
        if self.mode == "inline":
            return None
        with self._lock:
            executor = self._executors.get(shard)
            if executor is None:
                if self.mode == "process":
                    if self.table_config is not None:
                        # same table policy in every shard process; with a
                        # snapshot_dir the workers mmap-attach shared tables
                        executor = ProcessPoolExecutor(
                            max_workers=1,
                            initializer=configure_standalone_tables,
                            initargs=(self.table_config,),
                        )
                    else:
                        executor = ProcessPoolExecutor(max_workers=1)
                else:
                    executor = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix=f"repro-shard-{shard}"
                    )
                self._executors[shard] = executor
            return executor

    def serving_executor(self, shard: int) -> Optional[Executor]:
        """The single thread that serves this shard's cache misses.

        The planning service runs its whole miss path (cache re-check →
        solve → store write-through) on this thread so long solves never
        occupy threads of the shared default executor.  In ``thread`` mode
        it *is* the shard's worker; in ``process`` mode it is a dedicated
        supervisor thread that blocks on the shard's process pool;
        ``inline`` mode has none (callers fall back to the default pool).
        """
        if self.mode == "inline":
            return None
        if self.mode == "thread":
            return self._executor(shard)
        with self._lock:
            supervisor = self._supervisors.get(shard)
            if supervisor is None:
                supervisor = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"repro-shard-{shard}-supervisor",
                )
                self._supervisors[shard] = supervisor
            return supervisor

    def _deadline_runner(self, shard: int) -> Executor:
        """A one-thread pool that runs deadline-bounded thread/inline solves.

        The serving thread cannot await itself, so a deadline in thread
        mode needs a second thread to run the solve while the serving
        thread keeps the clock.  An abandoned solve keeps running on this
        thread until it finishes (Python threads cannot be killed);
        subsequent solves for the shard queue behind it, which the
        admission cap already bounds.
        """
        with self._lock:
            runner = self._deadline_runners.get(shard)
            if runner is None:
                runner = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"repro-shard-{shard}-deadline",
                )
                self._deadline_runners[shard] = runner
            return runner

    def _restart_shard(self, shard: int, broken: Executor) -> None:
        """Replace a dead process pool; the next `_executor` call rebuilds.

        The rebuilt pool runs the same ``configure_standalone_tables``
        initializer, so the fresh worker re-applies table policy (and
        re-attaches mmap snapshots) exactly like a restarted server.
        """
        with self._lock:
            if self._executors.get(shard) is broken:
                del self._executors[shard]
        broken.shutdown(wait=False)
        self.metrics.inc("worker_restarts")

    @staticmethod
    def _kill_worker(executor: Executor) -> None:
        """Fault effect for ``worker.kill``: SIGKILL the pool's process."""
        processes = dict(getattr(executor, "_processes", {}) or {})
        if not processes:
            # spin the pool up so there is a worker to kill
            executor.submit(int, 0).result()
            processes = dict(getattr(executor, "_processes", {}) or {})
        for process in processes.values():
            try:
                os.kill(process.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):  # pragma: no cover - raced exit
                pass

    def _solve_local(self, request: PlanRequest) -> PlanResult:
        if self.table_config is not None:
            return _plan_standalone_with(self._tables, request)
        return _plan_standalone(request)

    def _solve_in_process(
        self, shard: int, request: PlanRequest, deadline_s: Optional[float]
    ) -> PlanResult:
        for attempt in (1, 2):
            executor = self._executor(shard)
            assert executor is not None
            if faults.ACTIVE is not None and faults.ACTIVE.fire("worker.kill"):
                self._kill_worker(executor)
            try:
                future = executor.submit(_plan_standalone, request)
                return future.result(deadline_s)
            except FuturesTimeoutError:
                raise DeadlineExceededError(
                    f"solve exceeded the {deadline_s:g}s deadline on shard {shard}"
                ) from None
            except BrokenExecutor:
                # the worker process died mid-solve; rebuild the pool and
                # requeue this request onto the fresh worker once
                self._restart_shard(shard, executor)
                if attempt == 1:
                    continue
                raise ServiceRetryableError(
                    f"shard {shard} worker died twice in a row; retry later"
                ) from None
        raise AssertionError("unreachable")  # pragma: no cover

    def solve_in_worker(
        self,
        shard: int,
        request: PlanRequest,
        *,
        deadline_s: Optional[float] = None,
    ) -> PlanResult:
        """Solve when already on the shard's serving thread.

        ``thread``/``inline`` modes run the solver directly (submitting to
        the shard's own single-worker pool from its own thread would
        deadlock); ``process`` mode blocks on the shard's process pool
        under supervision (see the module docstring).  With ``deadline_s``
        the solve is bounded: :class:`DeadlineExceededError` is raised
        when it elapses and the solver has not finished.
        """
        if not 0 <= shard < self.num_shards:
            raise ReproError(f"shard must be in [0, {self.num_shards}), got {shard}")
        with self._lock:
            self._dispatched[shard] += 1
        if faults.ACTIVE is not None:
            spec = faults.ACTIVE.fire("solver.delay")
            if spec is not None and spec.delay_s > 0:
                # an injected stall models a slow solver, so it spends the
                # request's deadline budget: a stall past the deadline
                # waits the budget out, then times out like a real one
                if deadline_s is not None and spec.delay_s >= deadline_s:
                    time.sleep(deadline_s)
                    raise DeadlineExceededError(
                        f"solve exceeded the {deadline_s:g}s deadline on "
                        f"shard {shard} (injected stall)"
                    )
                time.sleep(spec.delay_s)
                if deadline_s is not None:
                    deadline_s -= spec.delay_s
            if faults.ACTIVE.fire("solver.error"):
                raise ServiceRetryableError(
                    "fault injected: solver error (retryable)"
                )
        if self.mode == "process":
            return self._solve_in_process(shard, request, deadline_s)
        if deadline_s is not None:
            future = self._deadline_runner(shard).submit(self._solve_local, request)
            try:
                return future.result(deadline_s)
            except FuturesTimeoutError:
                raise DeadlineExceededError(
                    f"solve exceeded the {deadline_s:g}s deadline on shard {shard}"
                ) from None
        return self._solve_local(request)

    def solve_sync(self, request: PlanRequest) -> PlanResult:
        """Route and solve one request, blocking (tests, one-shots).

        Thin wrapper over the production path: routes with
        :meth:`shard_for`, then runs :meth:`solve_in_worker` on the
        shard's serving thread.
        """
        shard = self.shard_for(request)
        executor = self.serving_executor(shard)
        if executor is None:  # inline mode
            return self.solve_in_worker(shard, request)
        return executor.submit(self.solve_in_worker, shard, request).result()

    @property
    def tables(self) -> Optional[OptimalTableCache]:
        """The router-local table cache (thread/inline modes, config given).

        ``None`` without a ``table_config`` (workers then share the
        module-level standalone cache) and in ``process`` mode (each
        worker process owns its own cache, seeded by the initializer).
        """
        return self._tables

    def stats(self) -> Dict[str, int]:
        """Per-shard dispatch counters, e.g. ``{"shard_0": 12, ...}``."""
        with self._lock:
            return {f"shard_{s}": n for s, n in sorted(self._dispatched.items())}

    def shutdown(self) -> None:
        """Tear down every lazily-created executor."""
        with self._lock:
            executors, self._executors = dict(self._executors), {}
            supervisors, self._supervisors = dict(self._supervisors), {}
            runners, self._deadline_runners = dict(self._deadline_runners), {}
        for executor in (
            *supervisors.values(),
            *runners.values(),
            *executors.values(),
        ):
            executor.shutdown(wait=True)
