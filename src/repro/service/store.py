"""Persistent on-disk plan store: the planner's durable cache tier.

The store is a directory of append-only JSONL segments
(:mod:`repro.io.segments`).  Every record is::

    {"format": "repro/plan-store-v1",
     "key": "<fingerprint>|<solver>|<bounds>|<options-json>",
     "result": { ... repro/plan-result-v1 ... }}

where ``result`` is exactly the :data:`repro.io.serialization.PLAN_RESULT_FORMAT`
payload, so anything written by the service round-trips through
``plan_result_from_dict`` with no service-specific decoder.

Properties:

- **Warm start** — opening a store replays every segment into an in-memory
  key index (later records win), so a restarted server serves identical
  ``PlanResult``s from disk without re-solving anything.
- **Crash safety** — writers append whole lines and rotate segments at
  ``segment_max_records``; a torn final line (crash mid-append) is dropped
  on load (``on_error="truncate"``), never propagated.
- **Compaction** — superseded duplicates accumulate in the append-only log;
  :meth:`PlanStore.compact` rewrites the live records into fresh segments
  and deletes the old ones.

:class:`PlanStore` implements the :class:`repro.api.CacheTier` protocol
(``name``/``get``/``put``), so ``Planner(cache_tiers=[PlanStore(path)])``
gives any planner a memory → store → solve hierarchy with zero service
code involved.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import faults
from repro.api.planner import CacheKey
from repro.api.request import PlanResult
from repro.exceptions import ReproError, ServiceRetryableError
from repro.io.segments import (
    append_jsonl,
    iter_jsonl,
    list_segments,
    repair_torn_tail,
    segment_index,
    segment_name,
    write_jsonl,
)
from repro.io.serialization import plan_result_from_dict, plan_result_to_dict

__all__ = ["PlanStore", "StoreStats", "PLAN_STORE_FORMAT"]

PLAN_STORE_FORMAT = "repro/plan-store-v1"


class StoreStats:
    """Point-in-time occupancy of a :class:`PlanStore`."""

    def __init__(self, live_keys: int, total_records: int, segments: int) -> None:
        self.live_keys = live_keys
        self.total_records = total_records
        self.segments = segments

    @property
    def dead_records(self) -> int:
        """Superseded records reclaimable by :meth:`PlanStore.compact`."""
        return self.total_records - self.live_keys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoreStats(live_keys={self.live_keys}, "
            f"total_records={self.total_records}, segments={self.segments})"
        )


def key_string(key: CacheKey) -> str:
    """Flatten a planner cache key to the store's string form."""
    fingerprint, solver, options_key, include_bounds = key
    return f"{fingerprint}|{solver}|{int(include_bounds)}|{options_key}"


class PlanStore:
    """Append-only persistent plan store with warm-start loading.

    Parameters
    ----------
    root:
        Directory of segments; created (with parents) if missing.
    segment_max_records:
        Records per segment before the writer rotates to a new one.

    The store keeps an in-memory index ``{key string: result dict}`` built
    by replaying segments at open, so ``get`` never touches disk and
    ``put`` performs one appended line.  All methods are thread-safe.
    """

    #: Tier label reported in planner/service hit metrics.
    name = "store"

    def __init__(
        self, root: Union[str, Path], *, segment_max_records: int = 512
    ) -> None:
        if segment_max_records < 1:
            raise ReproError(
                f"segment_max_records must be >= 1, got {segment_max_records}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_max_records = segment_max_records
        self._lock = threading.Lock()
        self._index: Dict[str, Dict[str, Any]] = {}
        self._total_records = 0
        self._active_index = 1
        self._active_records = 0
        # set when an injected crash tore the active segment's tail; the
        # next append repairs before writing (a real crashed writer gets
        # the same repair from _load on restart)
        self._torn_tail = False
        self._load()

    # ------------------------------------------------------------------
    # loading / warm start
    # ------------------------------------------------------------------
    def _load(self) -> None:
        segments = list_segments(self.root)
        for position, segment in enumerate(segments):
            last = position == len(segments) - 1
            if last:
                repair_torn_tail(segment)
            # belt and braces: tolerate a torn tail on the newest segment
            # even though repair_torn_tail should have removed it
            on_error = "truncate" if last else "raise"
            records = 0
            for number, record in iter_jsonl(segment, on_error=on_error):
                flat, payload = self._validate_record(segment, number, record)
                self._index[flat] = payload
                records += 1
            self._total_records += records
            if last:
                self._active_index = segment_index(segment)
                self._active_records = records
        if segments and self._active_records >= self.segment_max_records:
            self._active_index += 1
            self._active_records = 0

    @staticmethod
    def _validate_record(
        segment: Path, number: int, record: Dict[str, Any]
    ) -> Tuple[str, Dict[str, Any]]:
        """Check one raw store record; raises :class:`ReproError` if bad."""
        if record.get("format") != PLAN_STORE_FORMAT:
            raise ReproError(
                f"{segment.name}:{number}: not a {PLAN_STORE_FORMAT} "
                f"record: {record.get('format')!r}"
            )
        flat = record.get("key")
        payload = record.get("result")
        if not isinstance(flat, str) or not isinstance(payload, dict):
            raise ReproError(
                f"{segment.name}:{number}: malformed plan-store record "
                f"(missing or mistyped 'key'/'result')"
            )
        return flat, payload

    # ------------------------------------------------------------------
    # CacheTier protocol
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[PlanResult]:
        """Return the stored :class:`PlanResult` for ``key``, or ``None``."""
        with self._lock:
            payload = self._index.get(key_string(key))
        if payload is None:
            return None
        return plan_result_from_dict(payload)

    def put(self, key: CacheKey, result: PlanResult) -> None:
        """Persist ``result`` under ``key`` (idempotent for equal payloads)."""
        payload = plan_result_to_dict(result)
        flat = key_string(key)
        with self._lock:
            if self._index.get(flat) == payload:
                return  # identical record already durable; skip the append
            self._append_locked(flat, payload)

    def _append_locked(self, flat: str, payload: Dict[str, Any]) -> None:
        record = {"format": PLAN_STORE_FORMAT, "key": flat, "result": payload}
        segment = self.root / segment_name(self._active_index)
        if self._torn_tail:
            # a prior injected crash left a torn line; appending onto it
            # would glue two records into one corrupt interior line, so
            # repair first — exactly what _load does for a real crash
            repair_torn_tail(segment)
            self._torn_tail = False
        if faults.ACTIVE is not None and faults.ACTIVE.fire("store.torn_append"):
            faults.torn_append(segment, json.dumps(record, sort_keys=True) + "\n")
            self._torn_tail = True
            # raised before the index/counters update, so in-memory state
            # matches what a reload of the repaired segment would rebuild
            raise ServiceRetryableError(
                "fault injected: plan-store append torn mid-write; retry later"
            )
        append_jsonl(segment, [record])
        self._index[flat] = payload
        self._total_records += 1
        self._active_records += 1
        if self._active_records >= self.segment_max_records:
            self._active_index += 1
            self._active_records = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def keys(self) -> List[str]:
        """Live key strings, sorted (diagnostics and ``store verify``)."""
        with self._lock:
            return sorted(self._index)

    def stats(self) -> StoreStats:
        """Live/total/segment occupancy."""
        with self._lock:
            return StoreStats(
                live_keys=len(self._index),
                total_records=self._total_records,
                segments=len(list_segments(self.root)),
            )

    def compact(self) -> int:
        """Rewrite live records into fresh segments; returns reclaimed count.

        New segments are numbered after the current active one, written
        fully, and only then are the old segments deleted — a crash during
        compaction leaves a store that still loads (duplicate records are
        harmless; later ones win and a re-compaction cleans up).

        .. warning::
           Compact through the *owning* process only.  Running
           ``repro store compact`` against a directory a live server is
           writing to deletes records appended after this handle loaded
           its index — stop the server (or call ``compact()`` on its own
           :class:`PlanStore`) first.
        """
        with self._lock:
            old_segments = list_segments(self.root)
            live = sorted(self._index.items())
            reclaimed = self._total_records - len(live)
            next_index = self._active_index + 1
            written_records = 0
            for offset in range(0, max(len(live), 1), self.segment_max_records):
                chunk = live[offset : offset + self.segment_max_records]
                if not chunk:
                    break
                write_jsonl(
                    self.root / segment_name(next_index),
                    [
                        {"format": PLAN_STORE_FORMAT, "key": k, "result": v}
                        for k, v in chunk
                    ],
                )
                written_records = len(chunk)
                next_index += 1
            for segment in old_segments:
                segment.unlink()
            self._total_records = len(live)
            if live and written_records < self.segment_max_records:
                self._active_index = next_index - 1
                self._active_records = written_records
            else:
                self._active_index = next_index
                self._active_records = 0
            return reclaimed

    def verify(self) -> int:
        """Re-read every segment, round-tripping each result; returns count.

        Raises :class:`ReproError` on any malformed record — this is what
        ``repro store verify`` (and the CI end-to-end job) runs.
        """
        checked = 0
        for segment in list_segments(self.root):
            for number, record in iter_jsonl(segment, on_error="raise"):
                _flat, payload = self._validate_record(segment, number, record)
                result = plan_result_from_dict(payload)
                again = plan_result_to_dict(result)
                if json.dumps(again, sort_keys=True) != json.dumps(
                    payload, sort_keys=True
                ):
                    raise ReproError(
                        f"{segment.name}:{number}: result does not round-trip "
                        f"through repro.io plan-result-v1"
                    )
                checked += 1
        return checked
