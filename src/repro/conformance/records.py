"""``repro/conformance-v1`` records on the :mod:`repro.io.segments` substrate.

Three record kinds share the format:

.. code-block:: json

    {"format": "repro/conformance-v1", "kind": "scenario",
     "spec": {"family": "two-class", "n": 5, "seed": 0, ...}}

    {"format": "repro/conformance-v1", "kind": "multi-group-scenario",
     "spec": {"groups": 3, "n": 5, "seed": 0, ...},
     "digest": "<sha256 prefix>"}

    {"format": "repro/conformance-v1", "kind": "failure",
     "spec": {...}, "invariant": "oracle-optimality", "solver": "greedy",
     "message": "...", "digest": "<sha256 prefix>"}

Scenario records persist generated corpora (multi-group scenarios carry a
digest over their full cross-group evaluation, proving bit-identical
replay); failure records are the
replayable artifacts the runner emits on invariant violations.  The
``digest`` is a content hash over the *deterministic* failure identity —
spec, invariant, solver, message — so ``repro conformance replay`` can
prove a reproduction is bit-identical by recomputing it.

Directories of records reuse the plan store's segment layout (rotating
``segment-NNNNNN.jsonl`` files with crash-tolerant loading); single
failures also round-trip through standalone JSON files, which is the form
committed to the ``tests/corpus/`` regression corpus.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.conformance.corpus import ScenarioSpec
from repro.exceptions import ConformanceError
from repro.io.segments import (
    append_jsonl,
    iter_jsonl,
    list_segments,
    record_digest,
    repair_torn_tail,
    segment_index,
    segment_name,
)

__all__ = [
    "CONFORMANCE_FORMAT",
    "FailureRecord",
    "failure_digest",
    "scenario_record",
    "record_from_dict",
    "write_records",
    "load_records",
    "load_record_file",
]

CONFORMANCE_FORMAT = "repro/conformance-v1"

#: Records per segment before the writer rotates (small: corpora are small).
SEGMENT_MAX_RECORDS = 256

# ScenarioSpec | MultiGroupScenarioSpec | FailureRecord (the multi-group
# spec type is imported lazily to avoid a module cycle)
Record = Union[ScenarioSpec, Any, "FailureRecord"]


def failure_digest(
    spec: ScenarioSpec, invariant: str, solver: Optional[str], message: str
) -> str:
    """Deterministic content hash of a failure's identity (hex prefix).

    Everything hashed is derived from the seed-complete spec and the
    deterministic solver/invariant pipeline, so an honest replay of the
    same library version recomputes the same digest bit-for-bit.  The
    stamp itself is the shared :func:`repro.io.segments.record_digest`.
    """
    return record_digest(
        {
            "spec": spec.to_dict(),
            "invariant": invariant,
            "solver": solver,
            "message": message,
        }
    )


class FailureRecord:
    """One invariant violation, replayable from its embedded spec."""

    def __init__(
        self,
        spec: ScenarioSpec,
        invariant: str,
        solver: Optional[str],
        message: str,
        digest: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.invariant = invariant
        self.solver = solver
        self.message = message
        self.digest = digest or failure_digest(spec, invariant, solver, message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready ``repro/conformance-v1`` failure record."""
        return {
            "format": CONFORMANCE_FORMAT,
            "kind": "failure",
            "spec": self.spec.to_dict(),
            "invariant": self.invariant,
            "solver": self.solver,
            "message": self.message,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureRecord":
        """Inverse of :meth:`to_dict` (format/kind checked)."""
        _check_format(data)
        if data.get("kind") != "failure":
            raise ConformanceError(
                f"not a failure record: kind={data.get('kind')!r}"
            )
        try:
            spec, invariant = data["spec"], data["invariant"]
        except KeyError as missing:
            raise ConformanceError(
                f"failure record missing field {missing}"
            ) from None
        return cls(
            spec=ScenarioSpec.from_dict(spec),
            invariant=invariant,
            solver=data.get("solver"),
            message=data.get("message", ""),
            digest=data.get("digest"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f" solver={self.solver}" if self.solver else ""
        return f"FailureRecord({self.invariant}{where} on {self.spec.key})"


def scenario_record(spec: ScenarioSpec) -> Dict[str, Any]:
    """JSON-ready ``repro/conformance-v1`` scenario record."""
    return {"format": CONFORMANCE_FORMAT, "kind": "scenario", "spec": spec.to_dict()}


def _check_format(data: Mapping[str, Any]) -> None:
    if data.get("format") != CONFORMANCE_FORMAT:
        raise ConformanceError(
            f"not a {CONFORMANCE_FORMAT} record: {data.get('format')!r}"
        )


def record_from_dict(data: Mapping[str, Any]) -> Record:
    """Decode any record kind (scenarios -> specs, failure -> record)."""
    _check_format(data)
    kind = data.get("kind")
    if kind == "scenario":
        try:
            spec = data["spec"]
        except KeyError:
            raise ConformanceError("scenario record missing field 'spec'") from None
        return ScenarioSpec.from_dict(spec)
    if kind == "multi-group-scenario":
        # local import: repro.conformance.contention consumes this module
        from repro.conformance.contention import MultiGroupScenarioSpec

        try:
            spec = data["spec"]
        except KeyError:
            raise ConformanceError(
                "multi-group scenario record missing field 'spec'"
            ) from None
        return MultiGroupScenarioSpec.from_dict(spec, digest=data.get("digest"))
    if kind == "failure":
        return FailureRecord.from_dict(data)
    raise ConformanceError(f"unknown conformance record kind {kind!r}")


def _record_payload(record: Record) -> Dict[str, Any]:
    from repro.conformance.contention import MultiGroupScenarioSpec, multi_group_record

    if isinstance(record, MultiGroupScenarioSpec):
        return multi_group_record(record)
    if isinstance(record, ScenarioSpec):
        return scenario_record(record)
    if isinstance(record, FailureRecord):
        return record.to_dict()
    raise ConformanceError(f"cannot persist a {type(record).__name__}")


def write_records(root: Union[str, Path], records: Iterable[Record]) -> int:
    """Append records to a segments directory; returns records written.

    Follows the plan store's layout: the newest segment receives appends
    and rotates at :data:`SEGMENT_MAX_RECORDS`, so a crash can at worst
    truncate the final line (tolerated by :func:`load_records`).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    existing = list_segments(root)
    if existing:
        # a torn tail (crash mid-append) must come off disk before we
        # append, or the new record would glue onto the fragment
        repair_torn_tail(existing[-1])
        active = segment_index(existing[-1])
        filled = sum(1 for _ in iter_jsonl(existing[-1], on_error="raise"))
    else:
        active, filled = 1, 0
    written = 0
    batch: List[Dict[str, Any]] = []

    def flush() -> None:
        nonlocal filled, active, written
        if batch:
            append_jsonl(root / segment_name(active), batch)
            written += len(batch)
            filled += len(batch)
            batch.clear()
        if filled >= SEGMENT_MAX_RECORDS:
            active += 1
            filled = 0

    for record in records:
        batch.append(_record_payload(record))
        if filled + len(batch) >= SEGMENT_MAX_RECORDS:
            flush()
    flush()
    return written


def load_records(root: Union[str, Path]) -> List[Record]:
    """Load every record under a segments directory, in write order.

    A torn final line in the newest segment (crash mid-append) is dropped;
    corrupt interior lines raise :class:`ConformanceError`.
    """
    root = Path(root)
    segments = list_segments(root)
    if not segments:
        raise ConformanceError(f"no conformance records under {root}")
    out: List[Record] = []
    for position, segment in enumerate(segments):
        on_error = "truncate" if position == len(segments) - 1 else "raise"
        for _number, payload in iter_jsonl(segment, on_error=on_error):
            out.append(record_from_dict(payload))
    return out


def load_record_file(path: Union[str, Path]) -> Record:
    """Load one standalone JSON record file (the ``tests/corpus/`` form)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError:
        raise ConformanceError(f"{path}: not valid JSON") from None
    if not isinstance(data, dict):
        raise ConformanceError(f"{path}: expected a JSON object")
    return record_from_dict(data)
