"""The differential conformance runner.

:class:`ConformanceRunner` sweeps a scenario corpus: for each spec it
builds the instance, runs **every** registered solver whose capabilities
declare the instance practical, derives the exact-oracle value (the
branch-and-bound ``exact`` solver, cross-checked against the Section 4
``dp`` wherever both apply), evaluates the full invariant catalogue, and
optionally proves the planning service answers bit-identically to the
direct planner.  Violations become replayable
:class:`~repro.conformance.records.FailureRecord` artifacts: the runner
auto-shrinks each one (smaller ``n``, unit latency — always staying
inside the seed-complete spec space) so what lands in the regression
corpus is the minimal reproducing recipe.

``replay`` closes the loop: given a failure record it rebuilds the
scenario from its spec, re-evaluates just that invariant and compares
content digests, proving (or disproving) a bit-identical reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.planner import Planner
from repro.api.request import PlanRequest, PlanResult
from repro.api.solvers import bound_values, capable_solvers
from repro.conformance.corpus import ScenarioSpec
from repro.conformance.invariants import (
    InvariantEntry,
    ScenarioOutcome,
    Violation,
    canonical_result_payload,
    get_invariant,
    invariant_items,
)
from repro.conformance.records import FailureRecord, failure_digest
from repro.exceptions import ConformanceError

__all__ = ["ConformanceRunner", "InvariantReport", "ReplayOutcome"]

#: Invariant name under which service/planner divergence is reported.
SERVICE_PARITY = "service-parity"


@dataclass
class InvariantReport:
    """Aggregated outcome of one conformance sweep.

    ``checks`` counts invariant evaluations (scenario x invariant);
    ``per_invariant`` maps invariant name -> ``{"passed": .., "failed": ..}``.
    ``ok`` is the single bit CI gates on.
    """

    scenarios: int = 0
    checks: int = 0
    failures: List[FailureRecord] = field(default_factory=list)
    per_invariant: Dict[str, Dict[str, int]] = field(default_factory=dict)
    solvers: Tuple[str, ...] = ()
    families: Tuple[str, ...] = ()
    errors: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """No invariant violations and no scenario crashed."""
        return not self.failures and not self.errors

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (failures as conformance-v1 records)."""
        return {
            "scenarios": self.scenarios,
            "checks": self.checks,
            "per_invariant": {k: dict(v) for k, v in sorted(self.per_invariant.items())},
            "solvers": list(self.solvers),
            "families": list(self.families),
            "failures": [f.to_dict() for f in self.failures],
            "errors": list(self.errors),
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
        }

    def summary(self) -> str:
        """Human-readable multi-line report (what the CLI prints)."""
        rate = self.scenarios / self.elapsed_s if self.elapsed_s > 0 else 0.0
        lines = [
            f"conformance: {self.scenarios} scenarios, {self.checks} invariant "
            f"checks, {len(self.failures)} violations "
            f"({self.elapsed_s:.1f}s, {rate:.0f} scenarios/s)",
            f"solvers exercised ({len(self.solvers)}): {', '.join(self.solvers)}",
            f"families covered ({len(self.families)}): {', '.join(self.families)}",
        ]
        for name, counts in sorted(self.per_invariant.items()):
            status = "ok" if counts.get("failed", 0) == 0 else "FAIL"
            lines.append(
                f"  {name:<20} passed={counts.get('passed', 0):<5} "
                f"failed={counts.get('failed', 0):<3} {status}"
            )
        for failure in self.failures:
            solver = f" solver={failure.solver}" if failure.solver else ""
            lines.append(
                f"  FAILURE {failure.invariant}{solver} on {failure.spec.key}: "
                f"{failure.message} (digest {failure.digest})"
            )
        for error in self.errors:
            lines.append(f"  ERROR {error}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying one failure record from its seed."""

    record: FailureRecord
    reproduced: bool
    digest: Optional[str]
    detail: str

    @property
    def bit_identical(self) -> bool:
        """Whether the replayed failure hashed to the recorded digest."""
        return self.reproduced and self.digest == self.record.digest


class ConformanceRunner:
    """Differential cross-solver conformance engine.

    Parameters
    ----------
    planner:
        Engine used for all solves; defaults to an uncached planner so
        every scenario measures a real solve.
    invariants:
        Invariant names to evaluate (default: the whole catalogue).
    solvers:
        Restrict the differential sweep to these solver names (default:
        every registered solver capable of each instance).
    oracle_max_n:
        Largest ``n`` the branch-and-bound oracle is asked to certify.
    service_every:
        Check planner/service bit-parity on every k-th scenario
        (``0`` disables the service check entirely).
    shrink:
        Auto-shrink failing scenarios to minimal reproducing specs.
    group_solve:
        Amortize the sweep's table-reusable solves: before sweeping a
        materialized corpus, the runner group-prewarms the planner's
        optimal tables (:meth:`~repro.api.Planner.prewarm_tables`) — one
        table per canonical type-system bucket, sized for the bucket's
        element-wise maximum — so every ``dp`` solve in the sweep is a
        lookup with no growth churn.  Results are bit-identical either
        way (the invariants themselves keep proving it), so this only
        changes sweep wall-clock.
    """

    def __init__(
        self,
        *,
        planner: Optional[Planner] = None,
        invariants: Optional[Sequence[str]] = None,
        solvers: Optional[Sequence[str]] = None,
        oracle_max_n: int = 9,
        service_every: int = 8,
        shrink: bool = True,
        group_solve: bool = True,
    ) -> None:
        if service_every < 0:
            raise ConformanceError(
                f"service_every must be >= 0, got {service_every}"
            )
        self.planner = planner if planner is not None else Planner(cache_size=0)
        if invariants is None:
            self._invariants: List[InvariantEntry] = list(invariant_items())
        else:
            self._invariants = [get_invariant(name) for name in invariants]
        # certified lower bounds are only consumed by bounds-sandwich;
        # filtered sweeps (the throughput benchmarks) skip computing them
        self._needs_bounds = invariants is None or "bounds-sandwich" in invariants
        self._solver_filter = tuple(solvers) if solvers is not None else None
        self.oracle_max_n = oracle_max_n
        self.service_every = service_every
        self.shrink = shrink
        self.group_solve = group_solve
        self._service = None  # lazily started PlanningService
        self._service_client = None

    # ------------------------------------------------------------------
    # group-solve amortization
    # ------------------------------------------------------------------
    def _prewarm(self, specs: Sequence[ScenarioSpec]) -> int:
        """Pre-size the planner's optimal tables for a whole corpus.

        Rebuilds each spec's instance (cheap, deterministic) and hands the
        ``dp``-practical ones to :meth:`~repro.api.Planner.prewarm_tables`;
        instances whose buckets bust the table budget are simply skipped by
        the cache and solve directly as before.
        """
        instances = []
        for spec in specs:
            try:
                mset = spec.build()
            except Exception:  # noqa: BLE001 - run() reports the crash itself
                continue
            if "dp" in self._solver_names(mset):
                instances.append(mset)
        return self.planner.prewarm_tables(instances)

    # ------------------------------------------------------------------
    # scenario evaluation
    # ------------------------------------------------------------------
    def _solver_names(self, mset) -> List[str]:
        names = capable_solvers(mset)
        if self._solver_filter is not None:
            names = [n for n in names if n in self._solver_filter]
        return names

    def evaluate(self, spec: ScenarioSpec) -> ScenarioOutcome:
        """Build one scenario and run every capable solver over it.

        A solver that raises — any exception, not just library errors —
        does not abort the sweep: it is recorded in
        :attr:`ScenarioOutcome.solver_errors` and surfaces as a
        replayable ``no-crash`` violation, while every other solver's
        invariants still run.
        """
        mset = spec.build()
        results: Dict[str, PlanResult] = {}
        solver_errors: Dict[str, str] = {}
        for name in self._solver_names(mset):
            try:
                results[name] = self.planner.plan(
                    PlanRequest(instance=mset, solver=name)
                )
            except Exception as exc:  # noqa: BLE001 - crashes are findings
                solver_errors[name] = f"{type(exc).__name__}: {exc}"
        oracle_value: Optional[float] = None
        oracle_solver: Optional[str] = None
        exact_result = results.get("exact")
        if exact_result is not None and mset.n <= self.oracle_max_n:
            oracle_value, oracle_solver = exact_result.value, "exact"
        elif "dp" in results:
            # inside its regime the Section 4 DP is exact; it becomes the
            # oracle whenever branch-and-bound is impractical
            oracle_value, oracle_solver = results["dp"].value, "dp"
        return ScenarioOutcome(
            spec=spec,
            mset=mset,
            results=results,
            oracle_value=oracle_value,
            oracle_solver=oracle_solver,
            bounds=bound_values(mset) if self._needs_bounds else {},
            planner=self.planner,
            solver_errors=solver_errors,
        )

    def check(self, spec: ScenarioSpec) -> List[FailureRecord]:
        """Evaluate one scenario against the configured invariant suite."""
        outcome = self.evaluate(spec)
        failures: List[FailureRecord] = []
        for entry in self._invariants:
            for violation in entry(outcome):
                failures.append(
                    FailureRecord(spec, entry.name, violation.solver, violation.message)
                )
        return failures

    # ------------------------------------------------------------------
    # sweeping
    # ------------------------------------------------------------------
    def run(
        self,
        specs: Iterable[ScenarioSpec],
        *,
        deadline_s: Optional[float] = None,
        progress: Optional[Callable[[int, ScenarioSpec], None]] = None,
    ) -> InvariantReport:
        """Sweep a corpus (or spec stream) and aggregate the report.

        ``deadline_s`` stops the sweep after a wall-clock budget (used by
        ``conformance fuzz``); ``progress`` is invoked per scenario.
        """
        report = InvariantReport(
            per_invariant={e.name: {"passed": 0, "failed": 0} for e in self._invariants}
        )
        if self.service_every:
            report.per_invariant[SERVICE_PARITY] = {"passed": 0, "failed": 0}
        if self.group_solve and isinstance(specs, (list, tuple)):
            # materialized corpus: group-build every bucket's table up
            # front (spec streams — the fuzzer — warm incrementally)
            self._prewarm(specs)
        start = time.perf_counter()
        solvers_seen: set = set()
        families_seen: set = set()
        try:
            for index, spec in enumerate(specs):
                if deadline_s is not None and time.perf_counter() - start >= deadline_s:
                    break
                if progress is not None:
                    progress(index, spec)
                try:
                    outcome = self.evaluate(spec)
                except Exception as exc:  # noqa: BLE001 - keep sweeping
                    report.errors.append(
                        f"{spec.key}: scenario crashed: {type(exc).__name__}: {exc}"
                    )
                    continue
                report.scenarios += 1
                solvers_seen.update(outcome.results)
                families_seen.add(spec.family)
                for entry in self._invariants:
                    try:
                        violations = entry(outcome)
                    except Exception as exc:  # noqa: BLE001 - keep sweeping
                        report.errors.append(
                            f"{spec.key}: invariant {entry.name} crashed: "
                            f"{type(exc).__name__}: {exc}"
                        )
                        continue
                    report.checks += 1
                    bucket = report.per_invariant[entry.name]
                    if violations:
                        bucket["failed"] += 1
                        for violation in violations:
                            report.failures.append(
                                self._finalize_failure(
                                    spec, entry.name, violation
                                )
                            )
                    else:
                        bucket["passed"] += 1
                if self.service_every and index % self.service_every == 0:
                    report.checks += 1
                    parity = self._check_service_parity(outcome)
                    bucket = report.per_invariant[SERVICE_PARITY]
                    if parity:
                        bucket["failed"] += 1
                        report.failures.extend(parity)
                    else:
                        bucket["passed"] += 1
        finally:
            self._stop_service()
        report.solvers = tuple(sorted(solvers_seen))
        report.families = tuple(sorted(families_seen))
        report.elapsed_s = time.perf_counter() - start
        return report

    def _finalize_failure(
        self, spec: ScenarioSpec, invariant: str, violation: Violation
    ) -> FailureRecord:
        record = FailureRecord(spec, invariant, violation.solver, violation.message)
        if self.shrink:
            record = self.shrink_failure(record)
        return record

    # ------------------------------------------------------------------
    # shrinking
    # ------------------------------------------------------------------
    def _reproduces(
        self, spec: ScenarioSpec, invariant: str, solver: Optional[str]
    ) -> Optional[Violation]:
        """Re-check one candidate spec; the matching violation or ``None``."""
        try:
            outcome = self.evaluate(spec)
            if invariant == "bounds-sandwich" and not self._needs_bounds:
                # replay/shrink resolves invariants globally, so a runner
                # filtered past bounds-sandwich still backfills the bounds
                outcome.bounds = bound_values(outcome.mset)
            violations = get_invariant(invariant)(outcome)
        except Exception:  # noqa: BLE001 - a broken candidate does not count
            return None
        for violation in violations:
            if violation.solver == solver:
                return violation
        return None

    def shrink_failure(self, record: FailureRecord) -> FailureRecord:
        """Greedily shrink a failure to a minimal reproducing spec.

        Candidates stay inside the seed-complete spec space — smaller
        ``n``, then unit latency — so the shrunk artifact replays from
        five scalars exactly like the original.  The original record is
        returned unchanged when no candidate reproduces.
        """
        spec, message = record.spec, record.message
        changed = True
        while changed:
            changed = False
            candidates = []
            if spec.n > 1:
                candidates.append(replace(spec, n=spec.n - 1))
                if spec.n > 2:
                    candidates.append(replace(spec, n=max(1, spec.n // 2)))
            if spec.latency != 1:
                candidates.append(replace(spec, latency=1))
            for candidate in candidates:
                violation = self._reproduces(candidate, record.invariant, record.solver)
                if violation is not None:
                    spec, message = candidate, violation.message
                    changed = True
                    break
        if spec == record.spec:
            return record
        return FailureRecord(spec, record.invariant, record.solver, message)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self, record: FailureRecord) -> ReplayOutcome:
        """Rebuild a failure from its spec and verify a bit-identical repro."""
        if record.invariant == SERVICE_PARITY:
            try:
                outcome = self.evaluate(record.spec)
                violations = self._check_service_parity(outcome)
                matching = [v for v in violations if v.solver == record.solver]
            finally:
                # a spec that no longer builds must not leak the lazily
                # started background service and its worker threads
                self._stop_service()
            if not matching:
                return ReplayOutcome(
                    record, False, None, "service parity holds on replay"
                )
            digest = matching[0].digest
            return ReplayOutcome(
                record,
                True,
                digest,
                "digest match" if digest == record.digest else "digest MISMATCH",
            )
        violation = self._reproduces(record.spec, record.invariant, record.solver)
        if violation is None:
            return ReplayOutcome(
                record, False, None, f"invariant {record.invariant} holds on replay"
            )
        digest = failure_digest(
            record.spec, record.invariant, violation.solver, violation.message
        )
        return ReplayOutcome(
            record,
            True,
            digest,
            "digest match" if digest == record.digest else "digest MISMATCH",
        )

    # ------------------------------------------------------------------
    # service parity
    # ------------------------------------------------------------------
    def _ensure_service(self):
        if self._service is None:
            from repro.service.client import InProcessClient
            from repro.service.server import PlanningService

            # an uncached planner inside the service forces real solves,
            # making parity a statement about the whole service path
            self._service = PlanningService(
                planner=Planner(cache_size=0), num_shards=2, worker_mode="thread"
            )
            self._service.start_background()
            self._service_client = InProcessClient(
                self._service, client_id="conformance"
            )
        return self._service_client

    def _stop_service(self) -> None:
        if self._service is not None:
            self._service.stop()
            self._service = None
            self._service_client = None

    def _check_service_parity(self, outcome: ScenarioOutcome) -> List[FailureRecord]:
        """Service answers must be bit-identical to the direct planner's.

        Volatile fields (wall-clock, cache provenance) are neutralized by
        :func:`~repro.conformance.invariants.canonical_result_payload`;
        everything computed — schedule, values, exactness, bounds, solver
        stats — must agree byte for byte.
        """
        client = self._ensure_service()
        failures: List[FailureRecord] = []
        for name, direct in sorted(outcome.results.items()):
            served = client.plan(
                PlanRequest(instance=outcome.mset, solver=name),
            )
            direct_payload = canonical_result_payload(direct)
            served_payload = canonical_result_payload(served.result)
            if direct_payload != served_payload:
                failures.append(
                    FailureRecord(
                        outcome.spec,
                        SERVICE_PARITY,
                        name,
                        "service answer diverges from the direct planner "
                        f"(tier={served.tier})",
                    )
                )
        return failures
