"""Chaos conformance: seeded fault sweeps over the planning service.

The functional conformance engine proves the service answers exactly like
a direct :class:`~repro.api.Planner` when nothing goes wrong.  This
module proves the *resilience* claim: under injected failures —
transport drops, torn frames, solver faults, stalled solves, torn store
appends — every **completed** response is still byte-identical to the
direct planner's answer, or is an *explicitly* degraded answer honouring
the bounds-sandwich contract, or is a well-formed error.  Never a silent
wrong answer, never a hang, never a corrupted store.

One :func:`run_chaos` sweep:

1. builds the scenario corpus once and a shared reference planner;
2. for each seeded :class:`~repro.faults.FaultPlan`, boots a fresh TCP
   :class:`~repro.service.server.PlanningService` (real sockets — the
   transport faults need a wire) with a persistent store and a solve
   deadline, and plans every scenario through a
   :class:`~repro.service.client.ServiceClient` carrying a
   :class:`~repro.service.client.RetryPolicy`;
3. classifies each outcome (*completed* / *degraded* / *errored*) and
   checks the matching contract;
4. after stopping the service, reloads and :meth:`~repro.service.store.
   PlanStore.verify`-checks the store — injected torn appends must never
   leave an unreadable store behind.

Every blocking operation is timeout-bounded (socket timeouts, bounded
retries, per-plan watchdog), so the sweep itself cannot hang — a stuck
service surfaces as an error or a watchdog violation, not a wedged CI
job.  Determinism: fault decisions replay from each plan's seed, so a
failing ``(plan, scenario)`` pair reproduces exactly.

CLI: ``hnow-multicast chaos [--suite quick] [--deadline 0.2]``.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import faults
from repro.api.planner import Planner
from repro.api.request import PlanRequest, PlanResult
from repro.conformance.corpus import ScenarioSpec, generate_corpus
from repro.conformance.invariants import canonical_result_payload
from repro.exceptions import ConformanceError, ServiceError
from repro.faults import FaultPlan, FaultSpec
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.server import PlanningService
from repro.service.store import PlanStore

__all__ = [
    "ChaosViolation",
    "PlanRunSummary",
    "ChaosReport",
    "default_fault_plans",
    "run_chaos",
]

#: Scenario size below which chaos also sweeps the exact ``dp`` solver.
DP_MAX_N = 8


@dataclass(frozen=True)
class ChaosViolation:
    """One broken resilience contract: which plan, scenario and how."""

    plan: str
    scenario: str
    message: str

    def __str__(self) -> str:
        return f"[{self.plan}] {self.scenario}: {self.message}"


@dataclass
class PlanRunSummary:
    """Outcome counts for one fault plan's sweep."""

    plan: str
    seed: int
    scenarios: int = 0
    completed: int = 0
    degraded: int = 0
    errors: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0


@dataclass
class ChaosReport:
    """Everything one chaos sweep observed."""

    suite: str
    runs: List[PlanRunSummary] = field(default_factory=list)
    violations: List[ChaosViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every contract held under every fault plan."""
        return not self.violations

    @property
    def total_injected(self) -> int:
        """Faults actually fired across all plans (sanity: should be > 0)."""
        return sum(sum(run.injected.values()) for run in self.runs)

    def summary(self) -> str:
        """One line per plan plus the verdict, for CLI output."""
        lines = []
        for run in self.runs:
            fired = ", ".join(
                f"{site}={n}" for site, n in sorted(run.injected.items()) if n
            )
            lines.append(
                f"{run.plan} (seed {run.seed}): {run.scenarios} scenarios, "
                f"{run.completed} exact, {run.degraded} degraded, "
                f"{run.errors} errors, injected [{fired or 'none'}] "
                f"in {run.elapsed_s:.1f}s"
            )
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        lines.append(f"chaos[{self.suite}]: {verdict}")
        return "\n".join(lines)


def default_fault_plans(count: int = 5, *, seed: int = 0) -> List[FaultPlan]:
    """The standard chaos battery: ``count`` distinct seeded fault plans.

    The first five cover one failure family each (transport loss, torn
    frames, solver faults, torn store appends, deadline storms); further
    plans recycle the families with shifted seeds, so a fuzz budget can
    keep widening coverage deterministically.
    """
    if count < 1:
        raise ConformanceError(f"fault plan count must be >= 1, got {count}")
    builders: List[Callable[[int], FaultPlan]] = [
        lambda s: FaultPlan(
            [FaultSpec("client.drop_send", rate=0.25, count=10, after=2)],
            seed=s,
            name="transport-drop",
        ),
        lambda s: FaultPlan(
            [FaultSpec("client.partial_send", rate=0.3, count=25, after=1)],
            seed=s,
            name="partial-frames",
        ),
        lambda s: FaultPlan(
            [
                FaultSpec("solver.error", rate=0.25, count=30),
                FaultSpec("solver.delay", rate=0.15, count=30, delay_s=0.03),
            ],
            seed=s,
            name="solver-chaos",
        ),
        lambda s: FaultPlan(
            [FaultSpec("store.torn_append", rate=0.3, count=30)],
            seed=s,
            name="torn-store",
        ),
        # delay_s far past any deadline: each firing burns the full solve
        # budget and must come back explicitly degraded, never wrong
        lambda s: FaultPlan(
            [FaultSpec("solver.delay", rate=0.2, count=15, delay_s=60.0)],
            seed=s,
            name="deadline-storm",
        ),
    ]
    plans = []
    for index in range(count):
        build = builders[index % len(builders)]
        plan = build(seed + index)
        if index >= len(builders):
            plan.name = f"{plan.name}-{index // len(builders)}"
        plans.append(plan)
    return plans


def _chaos_requests(spec: ScenarioSpec) -> List[PlanRequest]:
    """The requests chaos sends for one scenario (greedy always, dp small)."""
    mset = spec.build()
    requests = [PlanRequest(instance=mset, solver="greedy+reversal")]
    if len(mset.destinations) <= DP_MAX_N:
        requests.append(PlanRequest(instance=mset, solver="dp"))
    return requests


def _check_degraded(
    result: PlanResult, run: PlanRunSummary, scenario: str, report: ChaosReport
) -> None:
    """The degraded-response contract: marked, bounded, sandwich valid."""
    if result.provenance.get("degraded") is not True:
        report.violations.append(
            ChaosViolation(run.plan, scenario, "degraded reply lacks provenance mark")
        )
    if result.bounds is None:
        report.violations.append(
            ChaosViolation(run.plan, scenario, "degraded reply carries no bounds")
        )
        return
    # opt_value is the certified Theorem 1 lower bound (or the exact
    # optimum); either way it must sit under the degraded plan's value
    lower = result.bounds.opt_value
    if lower > result.value + 1e-9:
        report.violations.append(
            ChaosViolation(
                run.plan,
                scenario,
                f"degraded bounds sandwich broken: max lower bound {lower:g} "
                f"> value {result.value:g}",
            )
        )


def run_chaos(
    specs: Optional[Sequence[ScenarioSpec]] = None,
    plans: Optional[Sequence[FaultPlan]] = None,
    *,
    suite: str = "smoke",
    solve_deadline_s: float = 0.2,
    call_timeout_s: float = 2.0,
    watchdog_s: float = 600.0,
    budget_s: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Sweep every fault plan over the corpus; returns the full report.

    Parameters
    ----------
    specs:
        Scenario corpus (default: ``generate_corpus(suite)``).
    plans:
        Fault plans to inject (default: :func:`default_fault_plans`).
    suite:
        Corpus suite name used when ``specs`` is omitted.
    solve_deadline_s:
        Per-request solve budget on the service under test; injected
        stalls past it must surface as explicit degradation.
    call_timeout_s:
        Client socket timeout — the first line of the no-hang watchdog.
    watchdog_s:
        Hard wall-clock bound per fault plan; overruns are recorded as
        violations (the sweep aborts that plan rather than hang CI).
    budget_s:
        Optional overall time budget (fuzz mode): once spent, remaining
        plans are skipped — coverage shrinks, contracts never relax.
    """
    corpus = list(specs) if specs is not None else generate_corpus(suite)
    battery = list(plans) if plans is not None else default_fault_plans()
    reference = Planner()  # shared across plans: the ground truth
    report = ChaosReport(suite=suite)
    sweep_started = time.monotonic()
    for plan in battery:
        if budget_s is not None and time.monotonic() - sweep_started > budget_s:
            break
        plan.reset()
        run = PlanRunSummary(plan=plan.name, seed=plan.seed)
        report.runs.append(run)
        plan_started = time.monotonic()
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            service = PlanningService(
                planner=Planner(cache_size=0),
                store_path=tmp,
                num_shards=2,
                worker_mode="thread",
                solve_deadline_s=solve_deadline_s,
            )
            address = service.start_background(tcp=True)
            assert address is not None
            client = ServiceClient(
                address[0],
                address[1],
                client_id=f"chaos-{plan.name}",
                timeout=call_timeout_s,
                retry=RetryPolicy(
                    attempts=5,
                    base_delay_s=0.02,
                    max_delay_s=0.2,
                    seed=plan.seed,
                ),
            )
            try:
                with faults.inject(plan):
                    for spec in corpus:
                        if time.monotonic() - plan_started > watchdog_s:
                            report.violations.append(
                                ChaosViolation(
                                    run.plan,
                                    spec.key,
                                    f"watchdog: plan exceeded {watchdog_s:g}s",
                                )
                            )
                            break
                        for request in _chaos_requests(spec):
                            run.scenarios += 1
                            scenario = f"{spec.key} solver={request.solver}"
                            try:
                                served = client.plan(request)
                            except ServiceError:
                                # a *well-formed* failure: allowed, counted
                                run.errors += 1
                                continue
                            if served.degraded:
                                run.degraded += 1
                                _check_degraded(
                                    served.result, run, scenario, report
                                )
                                continue
                            run.completed += 1
                            expected = reference.plan(request)
                            if canonical_result_payload(
                                served.result
                            ) != canonical_result_payload(expected):
                                report.violations.append(
                                    ChaosViolation(
                                        run.plan,
                                        scenario,
                                        "completed response differs from the "
                                        "direct Planner answer",
                                    )
                                )
            finally:
                client.close()
                service.stop()
                run.injected = plan.fired()
                run.elapsed_s = time.monotonic() - plan_started
            # durability contract: whatever was injected, the store a
            # restarted server would load from must verify clean
            try:
                PlanStore(tmp).verify()
            except Exception as exc:  # noqa: BLE001 - report, don't mask
                report.violations.append(
                    ChaosViolation(run.plan, "<store>", f"store verify failed: {exc}")
                )
        if progress is not None:
            fired = run.injected
            progress(
                f"{run.plan}: {run.scenarios} scenarios, "
                f"{run.completed} exact / {run.degraded} degraded / "
                f"{run.errors} errors, {sum(fired.values())} faults fired"
            )
    return report
