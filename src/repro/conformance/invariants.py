"""The pluggable invariant catalogue.

An *invariant* is a named check over a :class:`ScenarioOutcome` — one
scenario's instance plus every capable solver's :class:`PlanResult`, the
exact-oracle value when one applies, and the certified lower bounds.  It
returns a list of :class:`Violation` (empty means the invariant holds), so
the runner can keep sweeping and report everything at once.

Built-in catalogue
------------------
``value-consistency``     result fields agree with the schedule's recurrences
``replay-agreement``      the discrete-event simulator replays every schedule
                          to the analytic times
``oracle-optimality``     no solver beats the exact oracle; exact solvers
                          (dp, branch-and-bound) agree with it bit-for-bit
``bounds-sandwich``       every certified lower bound <= OPT <= every solver
``theorem1-guarantee``    greedy respects ``C * OPT + beta`` (exact opt only)
``leaf-reversal``         reversing leaves never increases ``R_T`` and is
                          idempotent in value
``scaling``               scaling all overheads and the latency by ``c``
                          scales every solver's value by exactly ``c``
``permutation``           destination input order never changes any value
``serialization``         instances, schedules and results round-trip
                          bit-identically through :mod:`repro.io`
``repair-identity``       session repair under a membership-delta chain is
                          byte-equal to cold re-planning each post-delta
                          membership
``contention-work-conservation``
                          no shared sender is busy for two groups in
                          overlapping intervals on a derived contended
                          multi-group instance
``contention-isolated-floor``
                          a group planned under contention never beats its
                          isolated single-group optimum
``contention-replay``     the merged multi-group discrete-event replay
                          agrees with the analytic offsets and makespan
``contention-dominance``  naive sequential is never better than the best
                          interleaved multi-group strategy

Custom invariants register with :func:`register_invariant` and are picked
up by every :class:`~repro.conformance.runner.ConformanceRunner` built
afterwards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.api.planner import Planner, instance_fingerprint
from repro.api.request import PlanRequest, PlanResult
from repro.conformance.corpus import ScenarioSpec
from repro.core.bounds import theorem1_factor
from repro.core.leaf_reversal import reverse_leaves
from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.exceptions import ConformanceError, ReproError
from repro.io.serialization import (
    multicast_from_dict,
    multicast_to_dict,
    plan_result_from_dict,
    plan_result_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.simulation.executor import simulate_schedule

__all__ = [
    "TOLERANCE",
    "Violation",
    "ScenarioOutcome",
    "InvariantEntry",
    "register_invariant",
    "get_invariant",
    "available_invariants",
    "invariant_items",
]

#: Absolute tolerance for float comparisons.  All model arithmetic is
#: sums/maxima of integer inputs, so disagreements beyond this are real.
TOLERANCE = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant breach: the offending solver (if any) and what broke.

    Messages are deterministic functions of the scenario spec so failure
    digests replay bit-identically.
    """

    message: str
    solver: Optional[str] = None


@dataclass
class ScenarioOutcome:
    """Everything the runner computed for one scenario.

    Attributes
    ----------
    spec / mset:
        The scenario recipe and the instance it built.
    results:
        Canonical solver name -> :class:`PlanResult`, for every registered
        solver whose capabilities declare the instance practical.
    oracle_value:
        The exact optimum when an exact solver was capable, else ``None``.
    oracle_solver:
        Which solver certified ``oracle_value``.
    bounds:
        Certified lower bounds from the :mod:`repro.api` bound registry.
    planner:
        The planner metamorphic invariants re-solve through.
    solver_errors:
        Solvers that raised instead of returning a schedule, mapped to a
        deterministic ``"ExceptionType: message"`` description; consumed
        by the ``no-crash`` invariant.
    """

    spec: ScenarioSpec
    mset: MulticastSet
    results: Dict[str, PlanResult]
    oracle_value: Optional[float] = None
    oracle_solver: Optional[str] = None
    bounds: Dict[str, float] = field(default_factory=dict)
    planner: Planner = field(default_factory=lambda: Planner(cache_size=0))
    solver_errors: Dict[str, str] = field(default_factory=dict)

    def solve(self, mset: MulticastSet, solver: str) -> PlanResult:
        """Re-solve a (possibly transformed) instance with one solver."""
        return self.planner.plan(PlanRequest(instance=mset, solver=solver))


#: (outcome) -> violations
InvariantFn = Callable[[ScenarioOutcome], List[Violation]]


@dataclass(frozen=True)
class InvariantEntry:
    """One registered invariant: name, callable, description."""

    name: str
    fn: InvariantFn
    description: str

    def __call__(self, outcome: ScenarioOutcome) -> List[Violation]:
        return self.fn(outcome)


_INVARIANTS: Dict[str, InvariantEntry] = {}


def register_invariant(name: str, description: str) -> Callable[[InvariantFn], InvariantFn]:
    """Decorator: add an invariant to the catalogue under ``name``."""

    def deco(fn: InvariantFn) -> InvariantFn:
        if name in _INVARIANTS:
            raise ConformanceError(f"invariant {name!r} registered twice")
        _INVARIANTS[name] = InvariantEntry(name=name, fn=fn, description=description)
        return fn

    return deco


def get_invariant(name: str) -> InvariantEntry:
    """The registered invariant, or :class:`ConformanceError`."""
    try:
        return _INVARIANTS[name]
    except KeyError:
        raise ConformanceError(
            f"unknown invariant {name!r}; available: {available_invariants()}"
        ) from None


def available_invariants() -> List[str]:
    """Sorted names of every registered invariant."""
    return sorted(_INVARIANTS)


def invariant_items() -> Iterator[InvariantEntry]:
    """Iterate entries in sorted name order."""
    for name in sorted(_INVARIANTS):
        yield _INVARIANTS[name]


# ----------------------------------------------------------------------
# built-in catalogue
# ----------------------------------------------------------------------
@register_invariant(
    "no-crash",
    "every capable solver returns a schedule instead of raising",
)
def _no_crash(outcome: ScenarioOutcome) -> List[Violation]:
    return [
        Violation(f"solver raised {description}", name)
        for name, description in sorted(outcome.solver_errors.items())
    ]


@register_invariant(
    "value-consistency",
    "PlanResult fields agree with the schedule's analytic recurrences",
)
def _value_consistency(outcome: ScenarioOutcome) -> List[Violation]:
    out: List[Violation] = []
    for name, result in sorted(outcome.results.items()):
        schedule = result.schedule
        if schedule.multicast != outcome.mset:
            out.append(Violation("schedule built for a different instance", name))
            continue
        if abs(result.value - schedule.reception_completion) > TOLERANCE:
            out.append(
                Violation(
                    f"value {result.value:g} != schedule R_T "
                    f"{schedule.reception_completion:g}",
                    name,
                )
            )
        if abs(result.delivery_completion - schedule.delivery_completion) > TOLERANCE:
            out.append(
                Violation(
                    f"delivery_completion {result.delivery_completion:g} != "
                    f"schedule D_T {schedule.delivery_completion:g}",
                    name,
                )
            )
        reached = set()
        for _parent, child, _slot in schedule.edges():
            reached.add(child)
        expected = set(range(1, outcome.mset.n + 1))
        if reached != expected:
            out.append(
                Violation(
                    f"tree reaches {sorted(reached)} instead of all "
                    f"{outcome.mset.n} destinations",
                    name,
                )
            )
    return out


@register_invariant(
    "replay-agreement",
    "the discrete-event simulator replays each schedule to the analytic times",
)
def _replay_agreement(outcome: ScenarioOutcome) -> List[Violation]:
    out: List[Violation] = []
    for name, result in sorted(outcome.results.items()):
        try:
            sim = simulate_schedule(result.schedule, verify=True)
        except ReproError as exc:
            out.append(Violation(f"simulated replay failed: {exc}", name))
            continue
        if abs(sim.reception_completion - result.value) > TOLERANCE:
            out.append(
                Violation(
                    f"simulated R_T {sim.reception_completion:g} != planned "
                    f"{result.value:g}",
                    name,
                )
            )
    return out


@register_invariant(
    "oracle-optimality",
    "no solver beats the exact oracle and exact solvers agree with it",
)
def _oracle_optimality(outcome: ScenarioOutcome) -> List[Violation]:
    if outcome.oracle_value is None:
        return []
    opt = outcome.oracle_value
    out: List[Violation] = []
    for name, result in sorted(outcome.results.items()):
        if result.value < opt - TOLERANCE:
            out.append(
                Violation(
                    f"value {result.value:g} beats the {outcome.oracle_solver} "
                    f"oracle optimum {opt:g} — one of them is wrong",
                    name,
                )
            )
        if result.exact and abs(result.value - opt) > TOLERANCE:
            out.append(
                Violation(
                    f"exact solver disagrees with the {outcome.oracle_solver} "
                    f"oracle: {result.value:g} != {opt:g}",
                    name,
                )
            )
    return out


@register_invariant(
    "bounds-sandwich",
    "every certified lower bound <= OPT <= every solver's value",
)
def _bounds_sandwich(outcome: ScenarioOutcome) -> List[Violation]:
    out: List[Violation] = []
    for bound_name, bound in sorted(outcome.bounds.items()):
        if outcome.oracle_value is not None and bound > outcome.oracle_value + TOLERANCE:
            out.append(
                Violation(
                    f"lower bound {bound_name}={bound:g} exceeds the exact "
                    f"optimum {outcome.oracle_value:g}",
                )
            )
        for solver, result in sorted(outcome.results.items()):
            if bound > result.value + TOLERANCE:
                out.append(
                    Violation(
                        f"lower bound {bound_name}={bound:g} exceeds the "
                        f"feasible value {result.value:g}",
                        solver,
                    )
                )
    return out


@register_invariant(
    "theorem1-guarantee",
    "greedy respects Theorem 1's C * OPT + beta against an exact optimum",
)
def _theorem1_guarantee(outcome: ScenarioOutcome) -> List[Violation]:
    if outcome.oracle_value is None or not outcome.mset.correlated:
        return []
    out: List[Violation] = []
    factor = theorem1_factor(outcome.mset)
    guarantee = factor * outcome.oracle_value + outcome.mset.beta
    for name in ("greedy", "greedy+reversal"):
        result = outcome.results.get(name)
        if result is None:
            continue
        if result.value >= guarantee + TOLERANCE:
            out.append(
                Violation(
                    f"value {result.value:g} breaks Theorem 1's guarantee "
                    f"{factor:g} * {outcome.oracle_value:g} + "
                    f"{outcome.mset.beta:g} = {guarantee:g}",
                    name,
                )
            )
    return out


@register_invariant(
    "leaf-reversal",
    "reversing leaf order never increases R_T and is idempotent in value",
)
def _leaf_reversal(outcome: ScenarioOutcome) -> List[Violation]:
    out: List[Violation] = []
    for name, result in sorted(outcome.results.items()):
        reversed_once = reverse_leaves(result.schedule)
        if reversed_once.reception_completion > result.value + TOLERANCE:
            out.append(
                Violation(
                    f"leaf reversal increased R_T: {result.value:g} -> "
                    f"{reversed_once.reception_completion:g}",
                    name,
                )
            )
        reversed_twice = reverse_leaves(reversed_once)
        if (
            abs(
                reversed_twice.reception_completion
                - reversed_once.reception_completion
            )
            > TOLERANCE
        ):
            out.append(
                Violation(
                    f"leaf reversal is not value-idempotent: "
                    f"{reversed_once.reception_completion:g} -> "
                    f"{reversed_twice.reception_completion:g}",
                    name,
                )
            )
    gr, grr = outcome.results.get("greedy"), outcome.results.get("greedy+reversal")
    if gr is not None and grr is not None and grr.value > gr.value + TOLERANCE:
        out.append(
            Violation(
                f"greedy+reversal ({grr.value:g}) worse than greedy "
                f"({gr.value:g})",
                "greedy+reversal",
            )
        )
    return out


_SCALING_FACTOR = 3


def _scaled_instance(mset: MulticastSet, factor: int) -> MulticastSet:
    scaled = [
        Node(nd.name, nd.send_overhead * factor, nd.receive_overhead * factor)
        for nd in mset.nodes
    ]
    return MulticastSet(
        scaled[0],
        scaled[1:],
        mset.latency * factor,
        validate_correlation=mset.correlated,
    )


@register_invariant(
    "scaling",
    "scaling all overheads and the latency by c scales every value by c",
)
def _scaling(outcome: ScenarioOutcome) -> List[Violation]:
    scaled = _scaled_instance(outcome.mset, _SCALING_FACTOR)
    out: List[Violation] = []
    for name, result in sorted(outcome.results.items()):
        rescaled = outcome.solve(scaled, name)
        expected = result.value * _SCALING_FACTOR
        if abs(rescaled.value - expected) > TOLERANCE:
            out.append(
                Violation(
                    f"x{_SCALING_FACTOR} instance solved to {rescaled.value:g}, "
                    f"expected {expected:g}",
                    name,
                )
            )
    return out


@register_invariant(
    "permutation",
    "the input order of destinations never changes any solver's value",
)
def _permutation(outcome: ScenarioOutcome) -> List[Violation]:
    mset = outcome.mset
    permuted = MulticastSet(
        mset.source,
        tuple(reversed(mset.destinations)),
        mset.latency,
        validate_correlation=mset.correlated,
    )
    out: List[Violation] = []
    for name, result in sorted(outcome.results.items()):
        reordered = outcome.solve(permuted, name)
        if abs(reordered.value - result.value) > TOLERANCE:
            out.append(
                Violation(
                    f"destination permutation changed the value: "
                    f"{result.value:g} -> {reordered.value:g}",
                    name,
                )
            )
    return out


@register_invariant(
    "serialization",
    "instances, schedules and plan results round-trip through repro.io",
)
def _serialization(outcome: ScenarioOutcome) -> List[Violation]:
    out: List[Violation] = []
    rebuilt = multicast_from_dict(multicast_to_dict(outcome.mset))
    if instance_fingerprint(rebuilt) != instance_fingerprint(outcome.mset):
        out.append(Violation("instance fingerprint changed across a JSON round-trip"))
    for name, result in sorted(outcome.results.items()):
        schedule_again = schedule_from_dict(schedule_to_dict(result.schedule))
        if schedule_again != result.schedule:
            out.append(Violation("schedule changed across a JSON round-trip", name))
        elif (
            abs(schedule_again.reception_completion - result.value) > TOLERANCE
        ):  # pragma: no cover - implied by equality above
            out.append(Violation("round-tripped schedule re-times differently", name))
        first = plan_result_to_dict(result)
        second = plan_result_to_dict(plan_result_from_dict(first))
        if json.dumps(first, sort_keys=True) != json.dumps(second, sort_keys=True):
            out.append(
                Violation("plan result is not bit-stable across a JSON round-trip", name)
            )
    return out


@register_invariant(
    "repair-identity",
    "session-repaired plans under membership churn are byte-equal to cold re-plans",
)
def _repair_identity(outcome: ScenarioOutcome) -> List[Violation]:
    """Drive the production session engine over a deterministic churn chain.

    For every table-reusable solver: open a session on the scenario's
    instance, stream the :func:`repro.core.repair.churn_chain` derived
    from the scenario seed, and demand each repaired plan byte-equal a
    cold re-plan (fresh planner, no table reuse) of the same post-delta
    membership — values, schedules, bounds and provenance alike.
    """
    # local imports: conformance must stay importable without the service
    # package loaded, and repro.service.sessions imports nothing back
    from repro.api.solvers import resolve
    from repro.core.repair import apply_delta, churn_chain
    from repro.service.sessions import SessionManager

    out: List[Violation] = []
    for name in sorted(outcome.results):
        entry, _ = resolve(name)
        if not entry.capabilities.reusable_table:
            continue
        chain = churn_chain(outcome.mset, seed=outcome.spec.seed, length=3)
        manager = SessionManager(Planner(cache_size=0))
        cold = Planner(cache_size=0, reuse_tables=False)
        opened = manager.open(PlanRequest(instance=outcome.mset, solver=name))
        try:
            mset = outcome.mset
            for delta in chain:
                mset = apply_delta(mset, delta)
                if not entry.capabilities.supports(mset):
                    break  # churn pushed past the solver's practical range
                update = manager.apply(opened.session_id, delta)
                repaired = canonical_result_payload(update.result)
                replanned = canonical_result_payload(
                    cold.plan(PlanRequest(instance=mset, solver=name))
                )
                if repaired != replanned:
                    out.append(
                        Violation(
                            f"repaired plan diverged from cold re-plan at "
                            f"delta seq {delta.seq}",
                            name,
                        )
                    )
        finally:
            manager.close(opened.session_id)
    return out


def _contention_outcome(outcome: ScenarioOutcome):
    """Evaluate the scenario's derived contended instance once, cached.

    Four ``contention-*`` invariants consume the same evaluation; the
    derivation and every strategy solve are deterministic functions of
    the scenario instance, so computing them once per outcome is safe.
    """
    # local import: repro.conformance.contention consumes this module
    from repro.conformance.contention import (
        derive_contention_instance,
        evaluate_multi_group,
    )

    cached = getattr(outcome, "_contention", None)
    if cached is None:
        instance = derive_contention_instance(outcome.mset)
        cached = evaluate_multi_group(instance, outcome.planner)
        outcome._contention = cached  # type: ignore[attr-defined]
    return cached


@register_invariant(
    "contention-work-conservation",
    "no shared sender serves two multicast groups in overlapping intervals",
)
def _contention_work_conservation(outcome: ScenarioOutcome) -> List[Violation]:
    from repro.conformance.contention import check_work_conservation

    return check_work_conservation(_contention_outcome(outcome))


@register_invariant(
    "contention-isolated-floor",
    "a group planned under contention never beats its isolated optimum",
)
def _contention_isolated_floor(outcome: ScenarioOutcome) -> List[Violation]:
    from repro.conformance.contention import check_isolated_floor

    return check_isolated_floor(_contention_outcome(outcome))


@register_invariant(
    "contention-replay",
    "the merged multi-group replay agrees with the analytic schedule",
)
def _contention_replay(outcome: ScenarioOutcome) -> List[Violation]:
    from repro.conformance.contention import check_replay_agreement

    return check_replay_agreement(_contention_outcome(outcome))


@register_invariant(
    "contention-dominance",
    "naive sequential never beats the best interleaved multi-group strategy",
)
def _contention_dominance(outcome: ScenarioOutcome) -> List[Violation]:
    from repro.conformance.contention import check_strategy_dominance

    return check_strategy_dominance(_contention_outcome(outcome))


def canonical_result_payload(result: PlanResult) -> str:
    """Bit-comparable form of a result: volatile fields neutralized.

    ``elapsed_s`` is wall-clock and ``cache_hit``/``tag`` depend on which
    path served the result, not on what was computed; everything else —
    schedule, values, exactness, bounds, provenance — must match exactly
    between the direct planner and the service.  Used by the runner's
    service-parity check.
    """
    payload = plan_result_to_dict(result)
    payload["elapsed_s"] = 0.0
    payload["cache_hit"] = False
    payload["tag"] = None
    return json.dumps(payload, sort_keys=True)
