"""repro.conformance — the differential conformance engine.

The paper's central claims are *relational*: greedy matches the DP optimum
in the Theorem 1/2 regimes, certified lower bounds sandwich every solver,
leaf reversal never hurts, and the simulator replays every schedule to the
analytic times.  This package checks those relations continuously, across
*every* solver registered in :mod:`repro.api`, over a generated scenario
corpus spanning all :mod:`repro.workloads` cluster families, source
policies and size sweeps plus a catalogue of adversarial cases.

Pieces
------
* :class:`~repro.conformance.corpus.ScenarioSpec` — a deterministic,
  replayable recipe for one instance (family, n, seed, source, latency);
  the ``quick``/``full`` corpora and the seeded fuzzer all emit specs.
* :mod:`~repro.conformance.invariants` — the pluggable invariant
  catalogue: oracle optimality, bounds sandwiching, simulator replay,
  metamorphic laws (scaling, permutation, leaf reversal, serialization
  round-trips).
* :class:`~repro.conformance.runner.ConformanceRunner` — runs every
  capable solver differentially over a corpus, evaluates the invariant
  suite, auto-shrinks counterexamples, and checks the planning service
  answers bit-identically to the direct planner.
* :mod:`~repro.conformance.records` — ``repro/conformance-v1`` records on
  the :mod:`repro.io.segments` substrate, so corpora persist and every
  reported failure replays bit-identically from its seed
  (``repro conformance replay``).
* :mod:`~repro.conformance.contention` — the cross-group layer:
  seed-complete multi-group scenarios (kind ``multi-group-scenario``),
  the work-conservation / isolated-floor / replay-agreement /
  strategy-dominance checks behind the registered ``contention-*``
  invariants, and evaluation digests proving bit-identical replay.

Quickstart
----------
>>> from repro.conformance import ConformanceRunner, generate_corpus
>>> report = ConformanceRunner().run(generate_corpus("smoke"))
>>> report.ok
True

CLI: ``hnow-multicast conformance {run,fuzz,corpus,replay}`` — see the
"Verification" sections of DESIGN.md and API.md.
"""

from __future__ import annotations

from repro.conformance.corpus import (
    ADVERSARIAL_CASES,
    CORPUS_SUITES,
    FAMILIES,
    SOURCE_POLICIES,
    ScenarioSpec,
    corpus_suite,
    fuzz_specs,
    generate_corpus,
)
from repro.conformance.invariants import (
    InvariantEntry,
    ScenarioOutcome,
    Violation,
    available_invariants,
    get_invariant,
    invariant_items,
    register_invariant,
)
from repro.conformance.contention import (
    MULTI_GROUP_KIND,
    MULTI_GROUP_SUITES,
    MultiGroupOutcome,
    MultiGroupScenarioSpec,
    check_multi_group,
    derive_contention_instance,
    evaluate_multi_group,
    multi_group_corpus,
    multi_group_digest,
    multi_group_record,
)
from repro.conformance.chaos import (
    ChaosReport,
    ChaosViolation,
    PlanRunSummary,
    default_fault_plans,
    run_chaos,
)
from repro.conformance.records import (
    CONFORMANCE_FORMAT,
    FailureRecord,
    failure_digest,
    load_records,
    record_from_dict,
    write_records,
)
from repro.conformance.runner import (
    ConformanceRunner,
    InvariantReport,
    ReplayOutcome,
)

__all__ = [
    # corpus
    "ScenarioSpec",
    "generate_corpus",
    "corpus_suite",
    "fuzz_specs",
    "FAMILIES",
    "SOURCE_POLICIES",
    "ADVERSARIAL_CASES",
    "CORPUS_SUITES",
    # invariants
    "ScenarioOutcome",
    "Violation",
    "InvariantEntry",
    "register_invariant",
    "get_invariant",
    "available_invariants",
    "invariant_items",
    # cross-group contention
    "MULTI_GROUP_KIND",
    "MULTI_GROUP_SUITES",
    "MultiGroupOutcome",
    "MultiGroupScenarioSpec",
    "check_multi_group",
    "derive_contention_instance",
    "evaluate_multi_group",
    "multi_group_corpus",
    "multi_group_digest",
    "multi_group_record",
    # chaos
    "ChaosReport",
    "ChaosViolation",
    "PlanRunSummary",
    "default_fault_plans",
    "run_chaos",
    # records
    "CONFORMANCE_FORMAT",
    "FailureRecord",
    "failure_digest",
    "write_records",
    "load_records",
    "record_from_dict",
    # runner
    "ConformanceRunner",
    "InvariantReport",
    "ReplayOutcome",
]
