"""Cross-group conformance: multi-group scenarios, checks, and digests.

The single-group conformance engine trusts a plan because every solver's
output survives the invariant catalogue over a seed-complete corpus.
This module extends that trust boundary across groups:

* :class:`MultiGroupScenarioSpec` — a seed-complete recipe rebuilding a
  :func:`repro.workloads.multigroup.multi_group_workload` instance; it
  persists as a ``repro/conformance-v1`` record of kind
  ``multi-group-scenario`` (see :mod:`repro.conformance.records`).
* :func:`evaluate_multi_group` — plan a multi-group instance with every
  registered ``mg-*`` strategy through one shared planner and compute
  each group's isolated single-group optimum when an exact oracle is
  capable.
* The four cross-group checks, shared between the registered invariant
  catalogue (where they sweep the regular quick corpus on derived
  contended instances) and the committed multi-group corpus records:

  - :func:`check_work_conservation` — no shared workstation is busy for
    two groups in overlapping intervals;
  - :func:`check_isolated_floor` — a group planned under contention
    never beats its isolated single-group optimum;
  - :func:`check_replay_agreement` — the merged discrete-event replay
    reproduces the analytic offsets/makespan and stays overlap-free;
  - :func:`check_strategy_dominance` — naive sequential is never better
    than the best interleaved strategy.

* :func:`multi_group_digest` — a content hash over the full evaluation
  payload (offsets, trees, objectives per strategy), so committed corpus
  records prove bit-identical replay, mirroring failure-record digests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.api.multigroup import MultiGroupPlanner, available_multi_group_solvers
from repro.api.planner import Planner
from repro.api.request import PlanRequest
from repro.api.solvers import get_solver
from repro.conformance.invariants import TOLERANCE, Violation
from repro.core.contention import MultiGroupInstance
from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.exceptions import ConformanceError, ContentionError, SimulationError
from repro.io.segments import record_digest
from repro.io.serialization import multi_group_to_dict
from repro.simulation.multigroup import simulate_multi_group
from repro.workloads.multigroup import multi_group_workload

__all__ = [
    "MULTI_GROUP_KIND",
    "MultiGroupScenarioSpec",
    "MultiGroupOutcome",
    "MULTI_GROUP_SUITES",
    "multi_group_corpus",
    "derive_contention_instance",
    "evaluate_multi_group",
    "check_work_conservation",
    "check_isolated_floor",
    "check_replay_agreement",
    "check_strategy_dominance",
    "check_multi_group",
    "multi_group_payload",
    "multi_group_digest",
    "multi_group_record",
]

#: Record kind of multi-group scenarios inside ``repro/conformance-v1``.
MULTI_GROUP_KIND = "multi-group-scenario"


@dataclass(frozen=True)
class MultiGroupScenarioSpec:
    """One replayable multi-group scenario (seed-complete).

    The fields mirror :func:`multi_group_workload`'s arguments; ``digest``
    (optional, excluded from identity) pins the evaluation payload a
    committed record was generated from, so replay can prove
    bit-identical reproduction.
    """

    groups: int
    n: int
    seed: int
    latency: float = 1
    relays: int = 0
    label: str = ""
    digest: Optional[str] = field(default=None, compare=False)

    def build(self) -> MultiGroupInstance:
        """Deterministically rebuild this scenario's instance."""
        return multi_group_workload(
            self.groups,
            self.n,
            self.seed,
            latency=self.latency,
            relays=self.relays,
        )

    @property
    def key(self) -> str:
        """Compact one-line identity, used in reports and progress lines."""
        suffix = f" [{self.label}]" if self.label else ""
        return (
            f"multi-group(groups={self.groups}, n={self.n}, seed={self.seed}, "
            f"L={self.latency:g}, relays={self.relays}){suffix}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready spec payload (no digest; records carry it alongside)."""
        return {
            "groups": self.groups,
            "n": self.n,
            "seed": self.seed,
            "latency": self.latency,
            "relays": self.relays,
            "label": self.label,
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, digest: Optional[str] = None
    ) -> "MultiGroupScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                groups=int(data["groups"]),
                n=int(data["n"]),
                seed=int(data["seed"]),
                latency=data.get("latency", 1),
                relays=int(data.get("relays", 0)),
                label=data.get("label", ""),
                digest=digest,
            )
        except KeyError as missing:
            raise ConformanceError(
                f"multi-group scenario record missing field {missing}"
            ) from None


# ----------------------------------------------------------------------
# corpora
# ----------------------------------------------------------------------
def _sweep(
    shapes: List[Tuple[int, int]], seeds: Tuple[int, ...], latencies: Tuple[float, ...]
) -> List[MultiGroupScenarioSpec]:
    out = []
    for groups, n in shapes:
        for seed in seeds:
            for latency in latencies:
                for relays in (0, min(1, groups - 1)):
                    out.append(
                        MultiGroupScenarioSpec(
                            groups=groups,
                            n=n,
                            seed=seed,
                            latency=latency,
                            relays=relays,
                        )
                    )
    # relays=0 duplicates when groups == 1 collapse via dict keying
    unique: Dict[str, MultiGroupScenarioSpec] = {s.key: s for s in out}
    return list(unique.values())


#: Named multi-group corpora mirroring the single-group suites.
MULTI_GROUP_SUITES: Dict[str, List[MultiGroupScenarioSpec]] = {
    "smoke": _sweep([(2, 3), (3, 4)], (0,), (1,)),
    "quick": _sweep([(2, 3), (2, 5), (3, 4), (4, 5)], (0, 1), (1, 4)),
    "full": _sweep(
        [(2, 3), (2, 5), (3, 4), (3, 8), (4, 5), (6, 6)], (0, 1, 2), (1, 4, 8)
    ),
}


def multi_group_corpus(suite: str = "quick") -> List[MultiGroupScenarioSpec]:
    """The named deterministic multi-group corpus (smoke/quick/full)."""
    try:
        return list(MULTI_GROUP_SUITES[suite])
    except KeyError:
        raise ConformanceError(
            f"unknown multi-group suite {suite!r}; "
            f"available: {sorted(MULTI_GROUP_SUITES)}"
        ) from None


def derive_contention_instance(mset: MulticastSet, groups: int = 3) -> MultiGroupInstance:
    """A contended multi-group instance derived from one scenario instance.

    Every derived group shares the scenario's source (send-slot
    contention) and its first destination verbatim (receive-slot
    contention); up to three further destinations are cloned per group
    under fresh names, so the derived network keeps the scenario's type
    structure.  Deterministic — the registered ``contention-*`` invariants
    use it to sweep the regular conformance corpus cross-group.
    """
    shared_dest = mset.destinations[0]
    extras = mset.destinations[1:4]
    group_sets = []
    for g in range(groups):
        dests = [shared_dest] + [
            Node(f"mg{g}x{i}", d.send_overhead, d.receive_overhead)
            for i, d in enumerate(extras)
        ]
        group_sets.append(
            MulticastSet(
                mset.source,
                dests,
                mset.latency,
                validate_correlation=mset.correlated,
            )
        )
    return MultiGroupInstance(group_sets)


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
@dataclass
class MultiGroupOutcome:
    """Everything the cross-group checks consume for one instance.

    ``results`` maps every registered ``mg-*`` strategy to its
    :class:`~repro.api.multigroup.MultiGroupResult`; ``isolated`` holds
    each group's isolated single-group optimum (``None`` where no exact
    oracle is capable).
    """

    instance: MultiGroupInstance
    inner_solver: str
    results: Dict[str, Any]
    isolated: Tuple[Optional[float], ...]


def _pick_inner_solver(instance: MultiGroupInstance) -> str:
    dp = get_solver("dp")
    if all(dp.capabilities.supports(g) for g in instance.groups):
        return "dp"
    return "greedy+reversal"


def evaluate_multi_group(
    instance: MultiGroupInstance,
    planner: Optional[Planner] = None,
    *,
    inner_solver: Optional[str] = None,
) -> MultiGroupOutcome:
    """Plan ``instance`` with every ``mg-*`` strategy and the exact oracles.

    The inner single-group solver defaults to ``dp`` when every group is
    within its capability envelope (making the isolated-floor check an
    equality) and ``greedy+reversal`` otherwise.  All strategies share one
    planner, so the inner solves are computed once and reused.
    """
    planner = planner if planner is not None else Planner()
    inner = inner_solver or _pick_inner_solver(instance)
    mg_planner = MultiGroupPlanner(planner)
    results = mg_planner.compare_strategies(instance, solver=inner)
    dp = get_solver("dp")
    isolated: List[Optional[float]] = []
    for group in instance.groups:
        if dp.capabilities.supports(group):
            isolated.append(
                planner.plan(PlanRequest(instance=group, solver="dp")).value
            )
        else:
            isolated.append(None)
    return MultiGroupOutcome(
        instance=instance,
        inner_solver=inner,
        results=results,
        isolated=tuple(isolated),
    )


# ----------------------------------------------------------------------
# cross-group checks
# ----------------------------------------------------------------------
def check_work_conservation(outcome: MultiGroupOutcome) -> List[Violation]:
    """No shared workstation transmits/receives for two groups at once."""
    out: List[Violation] = []
    for name in sorted(outcome.results):
        result = outcome.results[name]
        try:
            result.schedule.assert_no_contention()
        except ContentionError as exc:
            out.append(Violation(str(exc), name))
        for g, offset in enumerate(result.offsets):
            if not offset >= 0:
                out.append(Violation(f"group {g} has negative offset {offset!r}", name))
    return out


def check_isolated_floor(outcome: MultiGroupOutcome) -> List[Violation]:
    """Per-group completion under contention never beats isolated OPT."""
    out: List[Violation] = []
    for name in sorted(outcome.results):
        result = outcome.results[name]
        for g, (group_result, opt) in enumerate(
            zip(result.group_results, outcome.isolated)
        ):
            if opt is not None and group_result.value < opt - TOLERANCE:
                out.append(
                    Violation(
                        f"group {g} completes at {group_result.value:g} under "
                        f"contention, beating its isolated optimum {opt:g}",
                        name,
                    )
                )
    return out


def check_replay_agreement(outcome: MultiGroupOutcome) -> List[Violation]:
    """The merged discrete-event replay agrees with the analytic schedule."""
    out: List[Violation] = []
    for name in sorted(outcome.results):
        result = outcome.results[name]
        try:
            sim = simulate_multi_group(result.schedule)
        except SimulationError as exc:
            out.append(Violation(f"replay failed: {exc}", name))
            continue
        if abs(sim.makespan - result.max_makespan) > TOLERANCE:
            out.append(
                Violation(
                    f"replayed makespan {sim.makespan:g} != analytic "
                    f"{result.max_makespan:g}",
                    name,
                )
            )
        for g, completion in enumerate(sim.completions):
            if abs(completion - result.schedule.group_completion(g)) > TOLERANCE:
                out.append(
                    Violation(
                        f"group {g} replays to {completion:g}, analytic "
                        f"completion is {result.schedule.group_completion(g):g}",
                        name,
                    )
                )
    return out


def check_strategy_dominance(outcome: MultiGroupOutcome) -> List[Violation]:
    """Naive sequential is never better than the best interleaved strategy."""
    out: List[Violation] = []
    results = outcome.results
    if "mg-sequential" not in results:
        return [Violation("mg-sequential is not registered")]
    sequential = results["mg-sequential"].max_makespan
    expected = sum(r.value for r in results["mg-sequential"].group_results)
    if abs(sequential - expected) > TOLERANCE:
        out.append(
            Violation(
                f"sequential max-makespan {sequential:g} != sum of group "
                f"completions {expected:g}",
                "mg-sequential",
            )
        )
    interleaved = {
        name: r.max_makespan for name, r in results.items() if name != "mg-sequential"
    }
    if interleaved:
        best_name = min(interleaved, key=lambda name: (interleaved[name], name))
        if sequential < interleaved[best_name] - TOLERANCE:
            out.append(
                Violation(
                    f"sequential max-makespan {sequential:g} beats the best "
                    f"interleaved strategy {best_name} "
                    f"({interleaved[best_name]:g})",
                    best_name,
                )
            )
    return out


_CHECKS = (
    check_work_conservation,
    check_isolated_floor,
    check_replay_agreement,
    check_strategy_dominance,
)


def check_multi_group(
    spec: "MultiGroupScenarioSpec",
    planner: Optional[Planner] = None,
) -> List[Violation]:
    """Run every cross-group check on one scenario; `[]` means all pass.

    When the spec carries a ``digest`` (committed corpus records do), the
    evaluation payload must also replay bit-identically.
    """
    outcome = evaluate_multi_group(spec.build(), planner)
    violations: List[Violation] = []
    for check in _CHECKS:
        violations.extend(check(outcome))
    if spec.digest is not None:
        replayed = record_digest(
            {"spec": spec.to_dict(), "payload": multi_group_payload(outcome)}
        )
        if replayed != spec.digest:
            violations.append(
                Violation(
                    f"evaluation payload digest {replayed} != committed "
                    f"digest {spec.digest} (replay is not bit-identical)"
                )
            )
    return violations


# ----------------------------------------------------------------------
# bit-identical replay digests
# ----------------------------------------------------------------------
def multi_group_payload(outcome: MultiGroupOutcome) -> str:
    """Canonical JSON of a full evaluation (volatile fields excluded).

    Covers the instance, the inner solver, and — per strategy — offsets,
    objectives, and every group's tree and completion.  Two evaluations
    of the same spec must produce byte-equal payloads.
    """
    payload = {
        "instance": multi_group_to_dict(outcome.instance),
        "inner_solver": outcome.inner_solver,
        "isolated": list(outcome.isolated),
        "strategies": {
            name: {
                "offsets": list(result.offsets),
                "max_makespan": result.max_makespan,
                "weighted_sum": result.weighted_sum,
                "groups": [
                    {
                        "value": group_result.value,
                        "children": {
                            str(parent): [[c, s] for c, s in kids]
                            for parent, kids in sorted(
                                group_result.schedule.children.items()
                            )
                        },
                    }
                    for group_result in result.group_results
                ],
            }
            for name, result in sorted(outcome.results.items())
        },
    }
    return json.dumps(payload, sort_keys=True)


def multi_group_digest(
    spec: MultiGroupScenarioSpec, planner: Optional[Planner] = None
) -> str:
    """Content hash of a spec's evaluation, for bit-identical replay.

    Committed ``multi-group-scenario`` records carry this digest;
    :func:`check_multi_group` recomputes it on replay and flags any
    drift.
    """
    outcome = evaluate_multi_group(spec.build(), planner)
    return record_digest(
        {"spec": spec.to_dict(), "payload": multi_group_payload(outcome)}
    )


def multi_group_record(spec: MultiGroupScenarioSpec) -> Dict[str, Any]:
    """JSON-ready ``repro/conformance-v1`` multi-group scenario record."""
    from repro.conformance.records import CONFORMANCE_FORMAT

    record: Dict[str, Any] = {
        "format": CONFORMANCE_FORMAT,
        "kind": MULTI_GROUP_KIND,
        "spec": spec.to_dict(),
    }
    if spec.digest is not None:
        record["digest"] = spec.digest
    return record
