"""Scenario corpus: deterministic, replayable instance recipes.

A :class:`ScenarioSpec` is *not* an instance — it is the seed-complete
recipe for one (family, n, seed, source policy, latency).  Everything the
conformance engine reports references specs, never raw instances, so any
failure replays bit-identically from five scalars.

Families cover every :mod:`repro.workloads.clusters` generator (the
regimes the paper's analysis distinguishes) plus an ``adversarial``
catalogue of hand-built corner cases: degenerate sizes, homogeneous
clusters, extreme ratios and latencies, zero-beta populations, maximal
heterogeneity.  The named corpora sweep families × source policies ×
sizes × seeds; the seeded fuzzer draws unbounded random specs from the
same space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.core.multicast import MulticastSet
from repro.exceptions import ConformanceError
from repro.workloads.clusters import (
    bounded_ratio_cluster,
    limited_type_cluster,
    pareto_cluster,
    power_of_two_cluster,
    two_class_cluster,
    uniform_ratio_cluster,
)
from repro.workloads.generator import multicast_from_cluster

__all__ = [
    "ScenarioSpec",
    "FAMILIES",
    "SOURCE_POLICIES",
    "ADVERSARIAL_CASES",
    "CORPUS_SUITES",
    "generate_corpus",
    "corpus_suite",
    "fuzz_specs",
]

#: Source policies swept by the generated corpora.
SOURCE_POLICIES: Tuple[str, ...] = ("slowest", "fastest", "median", "random")


@dataclass(frozen=True)
class ScenarioSpec:
    """One replayable scenario: everything needed to rebuild its instance.

    ``family`` names a generator in :data:`FAMILIES`; ``n`` is the
    destination count; ``seed`` feeds every random draw; ``source`` is the
    :data:`repro.workloads.generator.SourcePolicy`; ``latency`` is the
    network latency ``L``.  ``label`` is informational (adversarial cases
    carry their case name).
    """

    family: str
    n: int
    seed: int
    source: str = "slowest"
    latency: float = 1
    label: str = ""

    def build(self) -> MulticastSet:
        """Deterministically rebuild this scenario's instance."""
        try:
            builder = FAMILIES[self.family]
        except KeyError:
            raise ConformanceError(
                f"unknown scenario family {self.family!r}; "
                f"available: {sorted(FAMILIES)}"
            ) from None
        return builder(self)

    @property
    def key(self) -> str:
        """Compact one-line identity, used in reports and progress lines."""
        suffix = f" [{self.label}]" if self.label else ""
        return (
            f"{self.family}(n={self.n}, seed={self.seed}, "
            f"source={self.source}, L={self.latency:g}){suffix}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (embedded in ``repro/conformance-v1`` records)."""
        return {
            "family": self.family,
            "n": self.n,
            "seed": self.seed,
            "source": self.source,
            "latency": self.latency,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                family=data["family"],
                n=int(data["n"]),
                seed=int(data["seed"]),
                source=data.get("source", "slowest"),
                latency=data.get("latency", 1),
                label=data.get("label", ""),
            )
        except KeyError as missing:
            raise ConformanceError(f"scenario record missing field {missing}") from None


# ----------------------------------------------------------------------
# cluster-generator families
# ----------------------------------------------------------------------
def _from_cluster(nodes, spec: ScenarioSpec) -> MulticastSet:
    return multicast_from_cluster(
        nodes, latency=spec.latency, source=spec.source, seed=spec.seed
    )


def _split(total: int, parts: int) -> List[int]:
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def _two_class(spec: ScenarioSpec) -> MulticastSet:
    n_slow = max(1, (spec.n + 1) // 3)
    return _from_cluster(two_class_cluster(spec.n + 1 - n_slow, n_slow), spec)


def _bounded_ratio(spec: ScenarioSpec) -> MulticastSet:
    return _from_cluster(bounded_ratio_cluster(spec.n + 1, spec.seed), spec)


def _bounded_ratio_wide(spec: ScenarioSpec) -> MulticastSet:
    nodes = bounded_ratio_cluster(spec.n + 1, spec.seed, ratio_range=(1.0, 4.0))
    return _from_cluster(nodes, spec)


def _two_type(spec: ScenarioSpec) -> MulticastSet:
    counts = _split(spec.n + 1, 2)
    return _from_cluster(limited_type_cluster([(1, 1), (3, 5)], counts), spec)


def _three_type(spec: ScenarioSpec) -> MulticastSet:
    counts = _split(spec.n + 1, min(3, spec.n + 1))
    types = [(1, 1), (2, 3), (5, 8)][: len(counts)]
    return _from_cluster(limited_type_cluster(types, counts), spec)


def _uniform_ratio(spec: ScenarioSpec) -> MulticastSet:
    ratio = 1 + spec.seed % 3
    return _from_cluster(uniform_ratio_cluster(spec.n + 1, spec.seed, ratio), spec)


def _power_of_two(spec: ScenarioSpec) -> MulticastSet:
    ratio = 1 + spec.seed % 3
    return _from_cluster(power_of_two_cluster(spec.n + 1, spec.seed, ratio), spec)


def _pareto(spec: ScenarioSpec) -> MulticastSet:
    return _from_cluster(pareto_cluster(spec.n + 1, spec.seed), spec)


# ----------------------------------------------------------------------
# adversarial catalogue (family "adversarial"; seed selects the case)
# ----------------------------------------------------------------------
def _adv_homogeneous(spec: ScenarioSpec) -> MulticastSet:
    """All nodes identical — the k=1 regime where the DP is the oracle."""
    return MulticastSet.from_overheads((2, 2), [(2, 2)] * spec.n, spec.latency)


def _adv_extreme_ratio(spec: ScenarioSpec) -> MulticastSet:
    """Receive overheads 100x the sends (stresses the Theorem 1 factor)."""
    pairs = [(s, 100 * s) for s in range(1, spec.n + 2)]
    return MulticastSet.from_overheads(pairs[0], pairs[1:], spec.latency)


def _adv_huge_latency(spec: ScenarioSpec) -> MulticastSet:
    """Latency dwarfs every overhead (wire-bound regime)."""
    sends = [1 + (i % 3) for i in range(spec.n + 1)]
    pairs = [(s, s + 1) for s in sends]
    return MulticastSet.from_overheads(pairs[0], pairs[1:], 1000)


def _adv_fast_source(spec: ScenarioSpec) -> MulticastSet:
    """One very fast source, uniformly slow destinations."""
    return MulticastSet.from_overheads((1, 1), [(40, 70)] * spec.n, spec.latency)


def _adv_slow_source(spec: ScenarioSpec) -> MulticastSet:
    """A legacy-machine source in front of a fast cluster (Figure 1 spirit)."""
    return MulticastSet.from_overheads((50, 80), [(1, 1)] * spec.n, spec.latency)


def _adv_zero_beta(spec: ScenarioSpec) -> MulticastSet:
    """beta = 0: every destination shares one receive overhead."""
    return MulticastSet.from_overheads((3, 4), [(2, 2)] * spec.n, spec.latency)


def _adv_unit_ratio(spec: ScenarioSpec) -> MulticastSet:
    """Distinct sends with receive == send (alpha = 1 everywhere)."""
    pairs = [(i, i) for i in range(1, spec.n + 2)]
    return MulticastSet.from_overheads(pairs[0], pairs[1:], spec.latency)


def _adv_max_heterogeneity(spec: ScenarioSpec) -> MulticastSet:
    """Every node its own type (k = n + 1, far outside the DP regime)."""
    pairs = [(2 * i + 1, 3 * i + 2) for i in range(spec.n + 1)]
    return MulticastSet.from_overheads(pairs[0], pairs[1:], spec.latency)


def _adv_one_fast_many_slow(spec: ScenarioSpec) -> MulticastSet:
    """A single fast helper among identical slow destinations."""
    dests = [(1, 1)] + [(8, 13)] * max(1, spec.n - 1)
    return MulticastSet.from_overheads((8, 13), dests, spec.latency)


def _adv_figure1(spec: ScenarioSpec) -> MulticastSet:
    """The paper's exact Figure 1 instance (n and seed ignored)."""
    return MulticastSet.from_overheads(
        (2, 3), [(1, 1), (1, 1), (1, 1), (2, 3)], 1
    )


#: The adversarial case catalogue; ``seed`` indexes into it.
ADVERSARIAL_CASES: Tuple[Tuple[str, Callable[[ScenarioSpec], MulticastSet]], ...] = (
    ("homogeneous", _adv_homogeneous),
    ("extreme-ratio", _adv_extreme_ratio),
    ("huge-latency", _adv_huge_latency),
    ("fast-source", _adv_fast_source),
    ("slow-source", _adv_slow_source),
    ("zero-beta", _adv_zero_beta),
    ("unit-ratio", _adv_unit_ratio),
    ("max-heterogeneity", _adv_max_heterogeneity),
    ("one-fast-many-slow", _adv_one_fast_many_slow),
    ("figure1", _adv_figure1),
)


def _adversarial(spec: ScenarioSpec) -> MulticastSet:
    name, builder = ADVERSARIAL_CASES[spec.seed % len(ADVERSARIAL_CASES)]
    del name
    return builder(spec)


#: Scenario family registry: name -> builder(spec) -> MulticastSet.
FAMILIES: Dict[str, Callable[[ScenarioSpec], MulticastSet]] = {
    "two-class": _two_class,
    "bounded-ratio": _bounded_ratio,
    "bounded-ratio-wide": _bounded_ratio_wide,
    "two-type": _two_type,
    "three-type": _three_type,
    "uniform-ratio": _uniform_ratio,
    "power-of-two": _power_of_two,
    "pareto": _pareto,
    "adversarial": _adversarial,
}

#: Families built from cluster generators (swept with source policies).
_CLUSTER_FAMILIES: Tuple[str, ...] = tuple(
    name for name in FAMILIES if name != "adversarial"
)


@dataclass(frozen=True)
class CorpusSuite:
    """A named corpus definition: the sweep axes for :func:`generate_corpus`."""

    name: str
    description: str
    sizes: Tuple[int, ...]
    seeds: Tuple[int, ...]
    sources: Tuple[str, ...] = SOURCE_POLICIES
    adversarial_sizes: Tuple[int, ...] = (1, 2, 5)

    def specs(self) -> List[ScenarioSpec]:
        """Materialize the full sweep (deterministic order)."""
        out: List[ScenarioSpec] = []
        for family in _CLUSTER_FAMILIES:
            for n in self.sizes:
                for source in self.sources:
                    for seed in self.seeds:
                        out.append(
                            ScenarioSpec(
                                family=family,
                                n=n,
                                seed=seed,
                                source=source,
                                latency=1 + seed % 3,
                            )
                        )
        for case_index, (label, _builder) in enumerate(ADVERSARIAL_CASES):
            for n in self.adversarial_sizes:
                out.append(
                    ScenarioSpec(
                        family="adversarial",
                        n=n,
                        seed=case_index,
                        source="first",
                        latency=1,
                        label=label,
                    )
                )
        return out


#: Named corpora.  ``quick`` is the CI gate: every cluster family x every
#: source policy x a small-size sweep where the exact oracle applies, plus
#: the adversarial catalogue — ~280 scenarios, a couple of minutes.
CORPUS_SUITES: Dict[str, CorpusSuite] = {
    s.name: s
    for s in (
        CorpusSuite(
            "smoke",
            "minimal pulse for unit tests and docs (seconds)",
            sizes=(3, 5),
            seeds=(0,),
            sources=("slowest", "fastest"),
            adversarial_sizes=(2,),
        ),
        CorpusSuite(
            "quick",
            "CI gate: all families x source policies, oracle-sized instances",
            sizes=(2, 3, 5, 8),
            seeds=(0, 1),
        ),
        CorpusSuite(
            "full",
            "nightly sweep: adds sizes beyond the exact oracle's reach",
            sizes=(2, 3, 5, 8, 12, 16, 24, 32),
            seeds=(0, 1, 2),
        ),
    )
}


def corpus_suite(name: str) -> CorpusSuite:
    """Look up a corpus suite by name."""
    try:
        return CORPUS_SUITES[name]
    except KeyError:
        raise ConformanceError(
            f"unknown corpus suite {name!r}; available: {sorted(CORPUS_SUITES)}"
        ) from None


def generate_corpus(suite: str = "quick") -> List[ScenarioSpec]:
    """The named corpus as a list of specs (deterministic order)."""
    return corpus_suite(suite).specs()


def fuzz_specs(
    seed: int,
    *,
    max_n: int = 10,
    sizes: Sequence[int] = (),
) -> Iterator[ScenarioSpec]:
    """Endless stream of random scenario specs, fully determined by ``seed``.

    Draws uniformly over families (adversarial cases included), source
    policies, sizes ``1..max_n`` (or the explicit ``sizes``) and a wide
    seed space, so a budgeted fuzz run explores corners the fixed sweeps
    do not.  The stream is deterministic: the same ``seed`` yields the
    same specs in the same order, which is what makes every fuzz failure
    replayable.
    """
    rng = random.Random(seed)
    families = sorted(FAMILIES)
    size_pool = tuple(sizes) or tuple(range(1, max_n + 1))
    while True:
        family = rng.choice(families)
        n = rng.choice(size_pool)
        if family == "adversarial":
            case_index = rng.randrange(len(ADVERSARIAL_CASES))
            yield ScenarioSpec(
                family=family,
                n=max(1, n),
                seed=case_index,
                source="first",
                latency=1,
                label=ADVERSARIAL_CASES[case_index][0],
            )
            continue
        yield ScenarioSpec(
            family=family,
            n=max(2, n),  # cluster families need >= 2 nodes (and types)
            seed=rng.randrange(1 << 16),
            source=rng.choice(SOURCE_POLICIES),
            latency=rng.choice((1, 1, 2, 3, 5)),
        )
