"""Append-only JSONL segment files (the persistent plan store's substrate).

A *segment* is a plain-text file of newline-delimited JSON records.  The
planning service's :class:`repro.service.store.PlanStore` keeps its data in
a directory of numbered segments (``segment-000001.jsonl`` ...): writers
only ever append to the newest segment and rotate to a fresh one when it
fills, so a crash can at worst truncate the final line of the final
segment.  :func:`iter_jsonl` therefore tolerates a partial trailing line
when asked to (``on_error="truncate"``), which is how warm starts survive
an unclean shutdown.

These helpers are deliberately independent of what the records mean; the
store layers keys and the ``repro/plan-result-v1`` payload format
(:mod:`repro.io.serialization`) on top.

Alongside the text substrate lives a *binary* one:
:func:`write_snapshot` / :func:`read_snapshot` implement digest-stamped
single-record container files — one JSON header line followed by an
8-byte-aligned binary body of named sections.  The body is written so a
reader can ``mmap`` the file and hand out zero-copy views; the header
carries the same ``record_digest`` stamp the JSONL records use plus a
sha256 of the body, and reading is *fail-closed*: a truncated, torn or
bit-flipped file raises :class:`ReproError` rather than yielding partial
data (the binary analogue of :func:`repair_torn_tail` — except snapshots
are whole-file records, so the only repair is to discard and rebuild).
``repro/table-snapshot-v1`` DP-table snapshots
(:mod:`repro.core.dp_table`) layer their layout on top of this container.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.exceptions import ReproError

__all__ = [
    "SEGMENT_PATTERN",
    "segment_name",
    "segment_index",
    "list_segments",
    "append_jsonl",
    "write_jsonl",
    "iter_jsonl",
    "repair_torn_tail",
    "record_digest",
    "Snapshot",
    "write_snapshot",
    "read_snapshot",
]


def record_digest(payload: Any, *, length: int = 32) -> str:
    """Deterministic content hash of a JSON-ready payload (hex prefix).

    The canonical stamp for records layered on this substrate: sorted-key
    JSON hashed with sha256, truncated to ``length`` hex characters.
    Conformance failure records and ``repro/perf-v1`` benchmark baselines
    both stamp themselves with it, so any honest re-serialization of the
    same content reproduces the same digest bit-for-bit.
    """
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:length]

#: Segment file names: ``segment-<6-digit index>.jsonl``.
SEGMENT_PATTERN = re.compile(r"^segment-(\d{6})\.jsonl$")


def segment_name(index: int) -> str:
    """File name of segment ``index`` (1-based, zero-padded)."""
    if index < 1:
        raise ReproError(f"segment index must be >= 1, got {index}")
    return f"segment-{index:06d}.jsonl"


def segment_index(path: Union[str, Path]) -> int:
    """Inverse of :func:`segment_name` (raises on non-segment names)."""
    match = SEGMENT_PATTERN.match(Path(path).name)
    if match is None:
        raise ReproError(f"not a segment file name: {Path(path).name!r}")
    return int(match.group(1))


def list_segments(root: Union[str, Path]) -> List[Path]:
    """Segment files under ``root`` in index order (missing dir -> empty)."""
    root = Path(root)
    if not root.is_dir():
        return []
    found = [p for p in root.iterdir() if SEGMENT_PATTERN.match(p.name)]
    return sorted(found, key=segment_index)


def append_jsonl(path: Union[str, Path], records: Iterable[Dict[str, Any]]) -> int:
    """Append ``records`` to ``path`` as JSON lines; returns records written.

    Each record is written and flushed as one ``\\n``-terminated line with
    sorted keys, so concurrent readers only ever observe whole records plus
    at most one partial tail.
    """
    written = 0
    with open(path, "a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            written += 1
        fh.flush()
    return written


def write_jsonl(path: Union[str, Path], records: Iterable[Dict[str, Any]]) -> int:
    """Write ``records`` to a fresh file (truncates); returns records written.

    Used by compaction, which rewrites the live records into new segments
    before deleting the old ones.
    """
    Path(path).write_text("")
    return append_jsonl(path, records)


def repair_torn_tail(path: Union[str, Path]) -> bool:
    """Physically drop a torn final line left by a crash mid-append.

    Every complete append ends with ``\\n``, so a file not ending in a
    newline holds a partial record.  Writers that re-open a segment for
    appending must remove it from disk (not just skip it on read): a
    later append would otherwise glue its JSON onto the fragment,
    corrupting an interior line for good.  Returns whether a tail was
    dropped; a missing file is left alone.
    """
    path = Path(path)
    if not path.is_file():
        return False
    text = path.read_text(encoding="utf-8")
    if not text or text.endswith("\n"):
        return False
    keep, newline, _torn = text.rpartition("\n")
    path.write_text(keep + newline, encoding="utf-8")
    return True


def iter_jsonl(
    path: Union[str, Path], *, on_error: str = "raise"
) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(line_number, record)`` for each JSON line of ``path``.

    ``on_error`` controls how malformed lines are handled:

    - ``"raise"``: any undecodable line raises :class:`ReproError`;
    - ``"truncate"``: an undecodable *final* line is silently dropped (the
      signature of a crash mid-append) but a corrupt interior line still
      raises;
    - ``"skip"``: every undecodable line is dropped.
    """
    if on_error not in ("raise", "truncate", "skip"):
        raise ReproError(
            f"on_error must be 'raise', 'truncate' or 'skip', got {on_error!r}"
        )
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if on_error == "skip":
                continue
            if on_error == "truncate" and number == len(lines):
                return
            raise ReproError(f"{Path(path).name}:{number}: malformed JSON line") from None
        if not isinstance(record, dict):
            if on_error == "skip":
                continue
            raise ReproError(
                f"{Path(path).name}:{number}: expected a JSON object, "
                f"got {type(record).__name__}"
            )
        yield number, record


# ----------------------------------------------------------------------
# binary snapshot container
# ----------------------------------------------------------------------
_SNAPSHOT_ALIGN = 8


def _align(offset: int) -> int:
    return (offset + _SNAPSHOT_ALIGN - 1) // _SNAPSHOT_ALIGN * _SNAPSHOT_ALIGN


class Snapshot:
    """A verified, mmap'ed snapshot file: header dict + zero-copy sections.

    Produced only by :func:`read_snapshot` (which performs every
    fail-closed check first).  The mmap stays open for the object's
    lifetime; :meth:`view` returns :class:`memoryview` windows into it, so
    every consumer of the same file shares one set of resident pages.
    """

    def __init__(self, path: Path, header: Dict[str, Any], mm: mmap.mmap, body_start: int):
        self.path = path
        self.header = header
        self.mmap = mm
        self._body_start = body_start
        self._sections = {
            s["name"]: (int(s["offset"]), int(s["length"])) for s in header["sections"]
        }

    def section_names(self) -> List[str]:
        return [s["name"] for s in self.header["sections"]]

    def view(self, name: str) -> memoryview:
        """Zero-copy read-only bytes of one named section."""
        try:
            offset, length = self._sections[name]
        except KeyError:
            raise ReproError(
                f"snapshot {self.path.name} has no section {name!r}"
            ) from None
        start = self._body_start + offset
        return memoryview(self.mmap)[start : start + length]

    def close(self) -> None:
        """Release the mapping (outstanding views must be dropped first)."""
        self.mmap.close()


def write_snapshot(
    path: Union[str, Path],
    header: Dict[str, Any],
    sections: Sequence[Tuple[str, bytes]],
) -> Path:
    """Atomically write a digest-stamped binary snapshot file.

    ``header`` is caller metadata (it must carry a ``format`` key naming
    the record format, e.g. ``repro/table-snapshot-v1``); ``sections`` are
    ``(name, payload)`` pairs laid out 8-byte-aligned in order.  The
    function adds the section directory, the body sha256 and the
    :func:`record_digest` stamp, then writes via a temp file, fsync and
    rename — a crash at any point leaves either the old complete file or
    none, never a half-written one (readers additionally verify, so even
    external truncation is caught).
    """
    path = Path(path)
    if "format" not in header:
        raise ReproError("snapshot header must carry a 'format' key")
    directory: List[Dict[str, Any]] = []
    offset = 0
    seen = set()
    for name, payload in sections:
        if name in seen:
            raise ReproError(f"duplicate snapshot section {name!r}")
        seen.add(name)
        offset = _align(offset)
        directory.append({"name": name, "offset": offset, "length": len(payload)})
        offset += len(payload)
    body = bytearray(_align(offset))
    for entry, (_, payload) in zip(directory, sections):
        body[entry["offset"] : entry["offset"] + len(payload)] = payload
    stamped = dict(header)
    stamped["sections"] = directory
    stamped["body_length"] = len(body)
    stamped["body_sha256"] = hashlib.sha256(bytes(body)).hexdigest()
    stamped["digest"] = record_digest(stamped)
    line = (json.dumps(stamped, sort_keys=True) + "\n").encode("utf-8")
    pad = b"\x00" * (_align(len(line)) - len(line))
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(line)
        fh.write(pad)
        fh.write(bytes(body))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_snapshot(
    path: Union[str, Path], *, expected_format: Union[str, None] = None
) -> Snapshot:
    """``mmap`` a snapshot written by :func:`write_snapshot`, fail-closed.

    Every integrity property is checked before any section is exposed:
    the header must parse, its :func:`record_digest` stamp must verify,
    the file must have exactly the recorded body length (a short file is
    a torn write), and the body sha256 must match.  Any violation raises
    :class:`ReproError`; there is no partial success.
    """
    path = Path(path)
    if not path.is_file():
        raise ReproError(f"snapshot {path} does not exist")
    fh = open(path, "rb")
    try:
        size = os.fstat(fh.fileno()).st_size
        if size == 0:
            raise ReproError(f"snapshot {path.name} is empty")
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    finally:
        # the mapping (when created) keeps the file open; the fd can go
        fh.close()
    try:
        newline = mm.find(b"\n", 0, min(size, 1 << 20))
        if newline < 0:
            raise ReproError(f"snapshot {path.name} has no header line")
        try:
            header = json.loads(mm[:newline].decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ReproError(f"snapshot {path.name} header is not valid JSON") from None
        if not isinstance(header, dict) or "sections" not in header:
            raise ReproError(f"snapshot {path.name} header is not a snapshot record")
        if expected_format is not None and header.get("format") != expected_format:
            raise ReproError(
                f"snapshot {path.name} has format {header.get('format')!r}, "
                f"expected {expected_format!r}"
            )
        unstamped = dict(header)
        digest = unstamped.pop("digest", None)
        if digest != record_digest(unstamped):
            raise ReproError(f"snapshot {path.name} header digest mismatch")
        body_start = _align(newline + 1)
        body_length = int(header["body_length"])
        if size != body_start + body_length:
            raise ReproError(
                f"snapshot {path.name} is truncated or padded: "
                f"{size} bytes on disk, {body_start + body_length} recorded"
            )
        if hashlib.sha256(mm[body_start:]).hexdigest() != header["body_sha256"]:
            raise ReproError(f"snapshot {path.name} body sha256 mismatch")
        for entry in header["sections"]:
            end = int(entry["offset"]) + int(entry["length"])
            if end > body_length:
                raise ReproError(
                    f"snapshot {path.name} section {entry.get('name')!r} "
                    "overruns the body"
                )
    except Exception:
        mm.close()
        raise
    return Snapshot(path, header, mm, body_start)
