"""Append-only JSONL segment files (the persistent plan store's substrate).

A *segment* is a plain-text file of newline-delimited JSON records.  The
planning service's :class:`repro.service.store.PlanStore` keeps its data in
a directory of numbered segments (``segment-000001.jsonl`` ...): writers
only ever append to the newest segment and rotate to a fresh one when it
fills, so a crash can at worst truncate the final line of the final
segment.  :func:`iter_jsonl` therefore tolerates a partial trailing line
when asked to (``on_error="truncate"``), which is how warm starts survive
an unclean shutdown.

These helpers are deliberately independent of what the records mean; the
store layers keys and the ``repro/plan-result-v1`` payload format
(:mod:`repro.io.serialization`) on top.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Tuple, Union

from repro.exceptions import ReproError

__all__ = [
    "SEGMENT_PATTERN",
    "segment_name",
    "segment_index",
    "list_segments",
    "append_jsonl",
    "write_jsonl",
    "iter_jsonl",
    "repair_torn_tail",
    "record_digest",
]


def record_digest(payload: Any, *, length: int = 32) -> str:
    """Deterministic content hash of a JSON-ready payload (hex prefix).

    The canonical stamp for records layered on this substrate: sorted-key
    JSON hashed with sha256, truncated to ``length`` hex characters.
    Conformance failure records and ``repro/perf-v1`` benchmark baselines
    both stamp themselves with it, so any honest re-serialization of the
    same content reproduces the same digest bit-for-bit.
    """
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:length]

#: Segment file names: ``segment-<6-digit index>.jsonl``.
SEGMENT_PATTERN = re.compile(r"^segment-(\d{6})\.jsonl$")


def segment_name(index: int) -> str:
    """File name of segment ``index`` (1-based, zero-padded)."""
    if index < 1:
        raise ReproError(f"segment index must be >= 1, got {index}")
    return f"segment-{index:06d}.jsonl"


def segment_index(path: Union[str, Path]) -> int:
    """Inverse of :func:`segment_name` (raises on non-segment names)."""
    match = SEGMENT_PATTERN.match(Path(path).name)
    if match is None:
        raise ReproError(f"not a segment file name: {Path(path).name!r}")
    return int(match.group(1))


def list_segments(root: Union[str, Path]) -> List[Path]:
    """Segment files under ``root`` in index order (missing dir -> empty)."""
    root = Path(root)
    if not root.is_dir():
        return []
    found = [p for p in root.iterdir() if SEGMENT_PATTERN.match(p.name)]
    return sorted(found, key=segment_index)


def append_jsonl(path: Union[str, Path], records: Iterable[Dict[str, Any]]) -> int:
    """Append ``records`` to ``path`` as JSON lines; returns records written.

    Each record is written and flushed as one ``\\n``-terminated line with
    sorted keys, so concurrent readers only ever observe whole records plus
    at most one partial tail.
    """
    written = 0
    with open(path, "a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            written += 1
        fh.flush()
    return written


def write_jsonl(path: Union[str, Path], records: Iterable[Dict[str, Any]]) -> int:
    """Write ``records`` to a fresh file (truncates); returns records written.

    Used by compaction, which rewrites the live records into new segments
    before deleting the old ones.
    """
    Path(path).write_text("")
    return append_jsonl(path, records)


def repair_torn_tail(path: Union[str, Path]) -> bool:
    """Physically drop a torn final line left by a crash mid-append.

    Every complete append ends with ``\\n``, so a file not ending in a
    newline holds a partial record.  Writers that re-open a segment for
    appending must remove it from disk (not just skip it on read): a
    later append would otherwise glue its JSON onto the fragment,
    corrupting an interior line for good.  Returns whether a tail was
    dropped; a missing file is left alone.
    """
    path = Path(path)
    if not path.is_file():
        return False
    text = path.read_text(encoding="utf-8")
    if not text or text.endswith("\n"):
        return False
    keep, newline, _torn = text.rpartition("\n")
    path.write_text(keep + newline, encoding="utf-8")
    return True


def iter_jsonl(
    path: Union[str, Path], *, on_error: str = "raise"
) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(line_number, record)`` for each JSON line of ``path``.

    ``on_error`` controls how malformed lines are handled:

    - ``"raise"``: any undecodable line raises :class:`ReproError`;
    - ``"truncate"``: an undecodable *final* line is silently dropped (the
      signature of a crash mid-append) but a corrupt interior line still
      raises;
    - ``"skip"``: every undecodable line is dropped.
    """
    if on_error not in ("raise", "truncate", "skip"):
        raise ReproError(
            f"on_error must be 'raise', 'truncate' or 'skip', got {on_error!r}"
        )
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if on_error == "skip":
                continue
            if on_error == "truncate" and number == len(lines):
                return
            raise ReproError(f"{Path(path).name}:{number}: malformed JSON line") from None
        if not isinstance(record, dict):
            if on_error == "skip":
                continue
            raise ReproError(
                f"{Path(path).name}:{number}: expected a JSON object, "
                f"got {type(record).__name__}"
            )
        yield number, record
