"""Serialization and storage primitives (JSON formats, JSONL segments).

:mod:`repro.io.serialization` defines the versioned JSON formats
(``repro/multicast-v1``, ``repro/schedule-v1``, ``repro/plan-request-v1``,
``repro/plan-result-v1``); :mod:`repro.io.segments` provides the
append-only JSONL segment files the persistent plan store is built on.
"""

from repro.io.segments import (
    append_jsonl,
    iter_jsonl,
    list_segments,
    segment_index,
    segment_name,
    write_jsonl,
)
from repro.io.serialization import (
    load_multicast,
    load_schedule,
    multi_group_from_dict,
    multi_group_to_dict,
    multicast_from_dict,
    multicast_to_dict,
    plan_request_from_dict,
    plan_request_to_dict,
    plan_result_from_dict,
    plan_result_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "multicast_to_dict",
    "multicast_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "plan_request_to_dict",
    "plan_request_from_dict",
    "plan_result_to_dict",
    "plan_result_from_dict",
    "multi_group_to_dict",
    "multi_group_from_dict",
    "save_json",
    "load_multicast",
    "load_schedule",
    "append_jsonl",
    "write_jsonl",
    "iter_jsonl",
    "list_segments",
    "segment_name",
    "segment_index",
]
