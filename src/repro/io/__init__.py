"""Serialization of instances and schedules (JSON, networkx export)."""

from repro.io.serialization import (
    load_multicast,
    load_schedule,
    multicast_from_dict,
    multicast_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "multicast_to_dict",
    "multicast_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_json",
    "load_multicast",
    "load_schedule",
]
