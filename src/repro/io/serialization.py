"""JSON serialization of instances and schedules.

The on-disk format is deliberately simple and versioned so experiment
outputs remain loadable:

.. code-block:: json

    {"format": "repro/multicast-v1",
     "latency": 1,
     "source": {"name": "p0", "send": 2, "receive": 3},
     "destinations": [{"name": "d1", "send": 1, "receive": 1}, ...]}

    {"format": "repro/schedule-v1",
     "multicast": {...},
     "children": {"0": [[1, 1], [2, 2]], "1": [[3, 1]]}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.core.schedule import Schedule
from repro.exceptions import ReproError

__all__ = [
    "multicast_to_dict",
    "multicast_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "plan_request_to_dict",
    "plan_request_from_dict",
    "plan_result_to_dict",
    "plan_result_from_dict",
    "multi_group_to_dict",
    "multi_group_from_dict",
    "save_json",
    "load_multicast",
    "load_schedule",
]

MULTICAST_FORMAT = "repro/multicast-v1"
MULTI_GROUP_FORMAT = "repro/multi-group-v1"
SCHEDULE_FORMAT = "repro/schedule-v1"
PLAN_REQUEST_FORMAT = "repro/plan-request-v1"
PLAN_RESULT_FORMAT = "repro/plan-result-v1"


def _node_to_dict(node: Node) -> Dict[str, Any]:
    return {
        "name": node.name,
        "send": node.send_overhead,
        "receive": node.receive_overhead,
    }


def _node_from_dict(data: Dict[str, Any]) -> Node:
    try:
        return Node(data["name"], data["send"], data["receive"])
    except KeyError as missing:
        raise ReproError(f"node record missing field {missing}") from None


def multicast_to_dict(mset: MulticastSet) -> Dict[str, Any]:
    """Serialize an instance (destinations in canonical order)."""
    return {
        "format": MULTICAST_FORMAT,
        "latency": mset.latency,
        "source": _node_to_dict(mset.source),
        "destinations": [_node_to_dict(d) for d in mset.destinations],
    }


def multicast_from_dict(data: Dict[str, Any]) -> MulticastSet:
    """Inverse of :func:`multicast_to_dict` (format-checked)."""
    if data.get("format") != MULTICAST_FORMAT:
        raise ReproError(f"not a {MULTICAST_FORMAT} record: {data.get('format')!r}")
    return MulticastSet(
        _node_from_dict(data["source"]),
        [_node_from_dict(d) for d in data["destinations"]],
        data["latency"],
    )


def multi_group_to_dict(instance) -> Dict[str, Any]:
    """Serialize a :class:`~repro.core.contention.MultiGroupInstance`.

    Groups serialize as ordinary ``repro/multicast-v1`` records; shared
    workstations are shared *by name*, which the inverse re-validates.
    """
    return {
        "format": MULTI_GROUP_FORMAT,
        "groups": [multicast_to_dict(g) for g in instance.groups],
        "weights": list(instance.weights),
    }


def multi_group_from_dict(data: Dict[str, Any]):
    """Inverse of :func:`multi_group_to_dict` (format- and model-checked)."""
    from repro.core.contention import MultiGroupInstance

    if data.get("format") != MULTI_GROUP_FORMAT:
        raise ReproError(f"not a {MULTI_GROUP_FORMAT} record: {data.get('format')!r}")
    return MultiGroupInstance(
        [multicast_from_dict(g) for g in data["groups"]],
        data.get("weights"),
    )


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Serialize a schedule with its instance and explicit slots."""
    return {
        "format": SCHEDULE_FORMAT,
        "multicast": multicast_to_dict(schedule.multicast),
        "children": {
            str(parent): [[child, slot] for child, slot in kids]
            for parent, kids in sorted(schedule.children.items())
        },
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict` (structure re-validated)."""
    if data.get("format") != SCHEDULE_FORMAT:
        raise ReproError(f"not a {SCHEDULE_FORMAT} record: {data.get('format')!r}")
    mset = multicast_from_dict(data["multicast"])
    children = {
        int(parent): [(int(child), int(slot)) for child, slot in kids]
        for parent, kids in data["children"].items()
    }
    return Schedule(mset, children)


def plan_request_to_dict(request) -> Dict[str, Any]:
    """Serialize a :class:`repro.api.PlanRequest` (format-stamped)."""
    return {
        "format": PLAN_REQUEST_FORMAT,
        "instance": multicast_to_dict(request.instance),
        "solver": request.solver,
        "options": dict(request.options),
        "include_bounds": request.include_bounds,
        "tag": request.tag,
    }


def plan_request_from_dict(data: Dict[str, Any]):
    """Inverse of :func:`plan_request_to_dict` (format-checked)."""
    from repro.api.request import PlanRequest

    if data.get("format") != PLAN_REQUEST_FORMAT:
        raise ReproError(f"not a {PLAN_REQUEST_FORMAT} record: {data.get('format')!r}")
    return PlanRequest(
        instance=multicast_from_dict(data["instance"]),
        solver=data.get("solver", "greedy+reversal"),
        options=data.get("options", {}),
        include_bounds=bool(data.get("include_bounds", False)),
        tag=data.get("tag"),
    )


def plan_result_to_dict(result) -> Dict[str, Any]:
    """Serialize a :class:`repro.api.PlanResult` (schedule embedded)."""
    from dataclasses import asdict

    return {
        "format": PLAN_RESULT_FORMAT,
        "solver": result.solver,
        "schedule": schedule_to_dict(result.schedule),
        "value": result.value,
        "delivery_completion": result.delivery_completion,
        "exact": result.exact,
        "bounds": asdict(result.bounds) if result.bounds is not None else None,
        "elapsed_s": result.elapsed_s,
        "cache_hit": result.cache_hit,
        "tag": result.tag,
        "provenance": dict(result.provenance),
    }


def plan_result_from_dict(data: Dict[str, Any]):
    """Inverse of :func:`plan_result_to_dict` (format-checked)."""
    from repro.api.request import PlanResult
    from repro.core.bounds import BoundReport

    if data.get("format") != PLAN_RESULT_FORMAT:
        raise ReproError(f"not a {PLAN_RESULT_FORMAT} record: {data.get('format')!r}")
    bounds = data.get("bounds")
    return PlanResult(
        solver=data["solver"],
        schedule=schedule_from_dict(data["schedule"]),
        value=data["value"],
        delivery_completion=data["delivery_completion"],
        exact=bool(data["exact"]),
        bounds=BoundReport(**bounds) if bounds is not None else None,
        elapsed_s=data.get("elapsed_s", 0.0),
        cache_hit=bool(data.get("cache_hit", False)),
        tag=data.get("tag"),
        provenance=data.get("provenance", {}),
    )


def save_json(obj: Any, path: Union[str, Path]) -> Path:
    """Write an instance, schedule, plan request or plan result to JSON.

    Returns the path written.
    """
    from repro.api.request import PlanRequest, PlanResult
    from repro.core.contention import MultiGroupInstance

    if isinstance(obj, Schedule):
        payload = schedule_to_dict(obj)
    elif isinstance(obj, MulticastSet):
        payload = multicast_to_dict(obj)
    elif isinstance(obj, MultiGroupInstance):
        payload = multi_group_to_dict(obj)
    elif isinstance(obj, PlanRequest):
        payload = plan_request_to_dict(obj)
    elif isinstance(obj, PlanResult):
        payload = plan_result_to_dict(obj)
    else:
        raise ReproError(f"cannot serialize {type(obj).__name__}")
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_multicast(path: Union[str, Path]) -> MulticastSet:
    """Load a multicast instance from a JSON file."""
    return multicast_from_dict(json.loads(Path(path).read_text()))


def load_schedule(path: Union[str, Path]) -> Schedule:
    """Load a schedule (and its embedded instance) from a JSON file."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
