"""JSON serialization of instances and schedules.

The on-disk format is deliberately simple and versioned so experiment
outputs remain loadable:

.. code-block:: json

    {"format": "repro/multicast-v1",
     "latency": 1,
     "source": {"name": "p0", "send": 2, "receive": 3},
     "destinations": [{"name": "d1", "send": 1, "receive": 1}, ...]}

    {"format": "repro/schedule-v1",
     "multicast": {...},
     "children": {"0": [[1, 1], [2, 2]], "1": [[3, 1]]}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.multicast import MulticastSet
from repro.core.node import Node
from repro.core.schedule import Schedule
from repro.exceptions import ReproError

__all__ = [
    "multicast_to_dict",
    "multicast_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_json",
    "load_multicast",
    "load_schedule",
]

MULTICAST_FORMAT = "repro/multicast-v1"
SCHEDULE_FORMAT = "repro/schedule-v1"


def _node_to_dict(node: Node) -> Dict[str, Any]:
    return {
        "name": node.name,
        "send": node.send_overhead,
        "receive": node.receive_overhead,
    }


def _node_from_dict(data: Dict[str, Any]) -> Node:
    try:
        return Node(data["name"], data["send"], data["receive"])
    except KeyError as missing:
        raise ReproError(f"node record missing field {missing}") from None


def multicast_to_dict(mset: MulticastSet) -> Dict[str, Any]:
    """Serialize an instance (destinations in canonical order)."""
    return {
        "format": MULTICAST_FORMAT,
        "latency": mset.latency,
        "source": _node_to_dict(mset.source),
        "destinations": [_node_to_dict(d) for d in mset.destinations],
    }


def multicast_from_dict(data: Dict[str, Any]) -> MulticastSet:
    """Inverse of :func:`multicast_to_dict` (format-checked)."""
    if data.get("format") != MULTICAST_FORMAT:
        raise ReproError(f"not a {MULTICAST_FORMAT} record: {data.get('format')!r}")
    return MulticastSet(
        _node_from_dict(data["source"]),
        [_node_from_dict(d) for d in data["destinations"]],
        data["latency"],
    )


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Serialize a schedule with its instance and explicit slots."""
    return {
        "format": SCHEDULE_FORMAT,
        "multicast": multicast_to_dict(schedule.multicast),
        "children": {
            str(parent): [[child, slot] for child, slot in kids]
            for parent, kids in sorted(schedule.children.items())
        },
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict` (structure re-validated)."""
    if data.get("format") != SCHEDULE_FORMAT:
        raise ReproError(f"not a {SCHEDULE_FORMAT} record: {data.get('format')!r}")
    mset = multicast_from_dict(data["multicast"])
    children = {
        int(parent): [(int(child), int(slot)) for child, slot in kids]
        for parent, kids in data["children"].items()
    }
    return Schedule(mset, children)


def save_json(obj: Union[MulticastSet, Schedule], path: Union[str, Path]) -> Path:
    """Write an instance or schedule to a JSON file; returns the path."""
    if isinstance(obj, Schedule):
        payload = schedule_to_dict(obj)
    elif isinstance(obj, MulticastSet):
        payload = multicast_to_dict(obj)
    else:
        raise ReproError(f"cannot serialize {type(obj).__name__}")
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_multicast(path: Union[str, Path]) -> MulticastSet:
    """Load a multicast instance from a JSON file."""
    return multicast_from_dict(json.loads(Path(path).read_text()))


def load_schedule(path: Union[str, Path]) -> Schedule:
    """Load a schedule (and its embedded instance) from a JSON file."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
