"""E7 — why the receive-send model matters: scheduler shoot-out.

Every registered scheduler is evaluated under the receive-send model on the
same instances.  The heterogeneity-blind baselines (binomial, postal,
star, chain) and the node-model greedy of [2, 9] (``fnf`` — which sees send
overheads but not receive overheads or latency) are compared against the
paper's greedy (+reversal).

Paper expectation (Section 1's motivation, quantified): the paper's greedy
wins or ties everywhere; ``fnf`` trails because it recruits without
accounting for receive costs; structure-oblivious trees lose by growing
factors as ``n`` or heterogeneity grows.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import Table
from repro.api import Planner, PlanRequest, solver_items
from repro.workloads.suites import suite

_PLANNER = Planner(cache_size=512)

__all__ = ["run", "DEFAULTS"]

DEFAULTS: Dict[str, object] = {
    "suites": ("two-class", "bounded-ratio"),
    "reference": "greedy+reversal",
}


def run(
    suites=DEFAULTS["suites"],
    reference: str = DEFAULTS["reference"],
) -> List[Table]:
    """Mean completion per scheduler per size, normalized to the reference."""
    tables: List[Table] = []
    names = [
        e.name
        for e in solver_items()
        if not e.capabilities.exact and not e.capabilities.multi_group
    ]
    for suite_name in suites:
        sizes: Dict[int, Dict[str, List[float]]] = {}
        for n, _seed, mset in suite(suite_name).instances():
            per_algo = sizes.setdefault(n, {name: [] for name in names})
            ref_value = _PLANNER.plan(mset, solver=reference).value
            batch = _PLANNER.plan_batch(
                [PlanRequest(instance=mset, solver=name) for name in names]
            )
            for name, result in zip(names, batch):
                per_algo[name].append(result.value / ref_value)
        table = Table(
            f"E7 — completion relative to '{reference}' on suite '{suite_name}'",
            ["n"] + names,
        )
        losses = 0
        for n in sorted(sizes):
            row: List[object] = [n]
            for name in names:
                values = sizes[n][name]
                mean = sum(values) / len(values)
                row.append(f"{mean:.3f}")
                if name == reference and any(v > 1.0 + 1e-9 for v in values):
                    losses += 1
            table.add_row(row)
        table.add_note(
            "values are mean R_T relative to the reference (1.000 = ties "
            f"the paper's algorithm); reference rows above 1.0: {losses}"
        )
        tables.append(table)
    return tables
