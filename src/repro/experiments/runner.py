"""Experiment harness: run any/all of E1..E10, print paper-style tables.

Each experiment module exposes ``run(**params) -> list[Table]`` and a
``DEFAULTS`` dict; the runner wires them to names, the CLI, and
EXPERIMENTS.md generation.  Solver invocations inside the experiment
modules go through the :mod:`repro.api` façade: timing-sensitive modules
use a cache-disabled :class:`~repro.api.Planner`, while correctness grids
(E4a's DP-vs-exact sweep) batch their table-reusable solves through
``plan_batch(group_solve=True)`` so one optimal table per canonical type
system answers the whole grid.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping

from repro.analysis.tables import Table
from repro.exceptions import ReproError
from repro.experiments import (
    ablation,
    bound_tightness,
    dp_scaling,
    fig1,
    layered_optimality,
    leaf_reversal,
    model_comparison,
    ratio_bound,
    scaling,
    table_precompute,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "render_report"]

EXPERIMENTS: Dict[str, Callable[..., List[Table]]] = {
    "E1": fig1.run,
    "E2": ratio_bound.run,
    "E3": scaling.run,
    "E4": dp_scaling.run,
    "E5": leaf_reversal.run,
    "E6": bound_tightness.run,
    "E7": model_comparison.run,
    "E8": table_precompute.run,
    "E9": layered_optimality.run,
    "E10": ablation.run,
}

DESCRIPTIONS: Dict[str, str] = {
    "E1": "Figure 1 reproduction (schedules (a)/(b), narrated times)",
    "E2": "Theorem 1: greedy vs optimal, bound verification",
    "E3": "Lemma 1: O(n log n) greedy runtime scaling",
    "E4": "Theorem 2: DP optimality and O(n^{2k}) scaling",
    "E5": "Section 3: leaf reversal never hurts, often helps",
    "E6": "Theorem 1 bound decomposition / tightness",
    "E7": "model comparison: paper's greedy vs baselines",
    "E8": "Theorem 2 note: precomputed table, constant-time queries",
    "E9": "Corollary 1: greedy is layered-optimal (exhaustive)",
    "E10": "ablation: what each greedy ingredient buys (extension)",
}


def run_experiment(name: str, **params) -> List[Table]:
    """Run one experiment by id (``E1`` .. ``E10``)."""
    try:
        fn = EXPERIMENTS[name.upper()]
    except KeyError:
        raise ReproError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**params)


def _id_order(name: str) -> int:
    return int(name[1:])


def run_all(
    names=None, *, params: Mapping[str, Mapping] | None = None
) -> Dict[str, List[Table]]:
    """Run several experiments; returns ``{name: tables}`` in id order."""
    selected = (
        sorted(EXPERIMENTS, key=_id_order)
        if names is None
        else [n.upper() for n in names]
    )
    results: Dict[str, List[Table]] = {}
    for name in selected:
        kwargs = dict((params or {}).get(name, {}))
        results[name] = run_experiment(name, **kwargs)
    return results


def render_report(results: Mapping[str, List[Table]], *, markdown: bool = False) -> str:
    """Render experiment outputs as one text (or markdown) report."""
    chunks: List[str] = []
    for name in sorted(results, key=_id_order):
        header = f"{name}: {DESCRIPTIONS.get(name, '')}"
        chunks.append(("## " + header) if markdown else (header + "\n" + "=" * len(header)))
        for table in results[name]:
            chunks.append(table.to_markdown() if markdown else table.render())
    return "\n\n".join(chunks) + "\n"


def main() -> None:  # pragma: no cover - thin convenience entry point
    start = time.perf_counter()
    report = render_report(run_all())
    elapsed = time.perf_counter() - start
    print(report)
    print(f"[all experiments completed in {elapsed:.1f}s]")


if __name__ == "__main__":  # pragma: no cover
    main()
