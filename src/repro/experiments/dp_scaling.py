"""E4 — Theorem 2: the DP is optimal and polynomial for fixed k.

Two claims, two measurements:

1. **Optimality**: on every small instance the DP value equals the
   branch-and-bound optimum (and the reconstructed schedule attains it).
2. **Complexity**: DP runtime grows polynomially in ``n`` with degree about
   ``2k`` (Theorem 2's ``O(n^{2k})``); we report the fitted log-log slope
   per ``k``.  (The measured exponent typically lands *below* ``2k`` —
   the bound counts every split of every state, while memo reuse and the
   small per-state constant help in practice.)
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.complexity import fit_power
from repro.analysis.tables import Table
from repro.api import Planner, PlanRequest
from repro.workloads.clusters import limited_type_cluster
from repro.workloads.generator import multicast_from_cluster
from repro.workloads.suites import suite

# timing experiment (E4b): caching would turn repeats into no-ops
_PLANNER = Planner(cache_size=0, reuse_tables=False)
# correctness sweep (E4a): group-solve amortizes the dp side of the grid —
# one table per canonical type system answers the whole suite, bit-identical
# to per-instance solves (the exact cross-check still certifies every row)
_GROUP_PLANNER = Planner(cache_size=0)

__all__ = ["run", "DEFAULTS", "TYPE_SETS"]

DEFAULTS: Dict[str, object] = {
    "optimality_suites": ("two-type", "three-type"),
    "optimality_max_n": 8,
    "sizes_by_k": {1: (8, 16, 32, 64, 128), 2: (8, 16, 32, 64), 3: (6, 12, 18, 24)},
    "repeats": 3,
}

#: Workstation types per k used by the scaling half of the experiment.
TYPE_SETS = {
    1: [(2, 3)],
    2: [(1, 1), (3, 5)],
    3: [(1, 1), (2, 3), (5, 8)],
}


def _split(total: int, parts: int) -> List[int]:
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def run(
    optimality_suites=DEFAULTS["optimality_suites"],
    optimality_max_n: int = DEFAULTS["optimality_max_n"],
    sizes_by_k=DEFAULTS["sizes_by_k"],
    repeats: int = DEFAULTS["repeats"],
) -> List[Table]:
    """Optimality cross-check plus runtime scaling per k."""
    opt_table = Table(
        "E4a — DP optimality vs branch-and-bound",
        ["suite", "n", "seed", "DP value", "exact value", "equal", "DP states"],
    )
    for suite_name in optimality_suites:
        rows = [
            (n, seed, mset)
            for n, seed, mset in suite(suite_name).instances()
            if n <= optimality_max_n
        ]
        dp_batch = _GROUP_PLANNER.plan_batch(
            [PlanRequest(instance=mset, solver="dp") for _n, _seed, mset in rows],
            group_solve=True,
        )
        for (n, seed, mset), dp in zip(rows, dp_batch):
            exact = _PLANNER.plan(mset, solver="exact")
            opt_table.add_row(
                [
                    suite_name,
                    n,
                    seed,
                    dp.value,
                    exact.value,
                    abs(dp.value - exact.value) < 1e-9,
                    dp.provenance["states_computed"],
                ]
            )

    scale_table = Table(
        "E4b — DP runtime scaling (Theorem 2: O(n^{2k}))",
        ["k", "n", "median time (ms)", "states"],
    )
    fits: List[str] = []
    for k, sizes in sorted(sizes_by_k.items()):
        times: List[float] = []
        for n in sizes:
            nodes = limited_type_cluster(TYPE_SETS[k], _split(n + 1, k))
            mset = multicast_from_cluster(nodes, latency=1, source="slowest")
            samples = []
            states = 0
            for _ in range(repeats):
                solution = _PLANNER.plan(mset, solver="dp")
                samples.append(solution.elapsed_s)
                states = solution.provenance["states_computed"]
            samples.sort()
            median = samples[len(samples) // 2]
            times.append(median)
            scale_table.add_row([k, n, f"{median * 1e3:.3f}", states])
        exponent, _coeff = fit_power(sizes, times)
        fits.append(
            f"k={k}: fitted n^{exponent:.2f} (Theorem 2 bound: n^{2 * k})"
        )
    for note in fits:
        scale_table.add_note(note)
    return [opt_table, scale_table]
