"""E8 — Theorem 2 closing note: precompute once, answer in constant time.

We build the full :class:`~repro.core.dp_table.OptimalTable` for small-k
networks, then compare (a) the one-off build cost, (b) the per-query lookup
cost over *every* multicast the network supports, and (c) what the same
queries would cost as fresh DP solves.

Paper expectation: per-query time after the build is microseconds and
independent of the query size, orders of magnitude below fresh solves.
"""

from __future__ import annotations

import time
from itertools import product
from typing import Dict, List

from repro.analysis.tables import Table
from repro.api import Planner
from repro.core.dp_table import OptimalTable

# timing experiment: fresh solves must not be served from a cache
_PLANNER = Planner(cache_size=0, reuse_tables=False)
from repro.workloads.clusters import limited_type_cluster
from repro.workloads.generator import multicast_from_cluster

__all__ = ["run", "DEFAULTS", "NETWORKS"]

DEFAULTS: Dict[str, object] = {"fresh_solve_samples": 5}

#: (type overheads, per-type counts) describing each benchmark network.
NETWORKS = {
    "k=2, 20 nodes": ([(1, 1), (3, 5)], [10, 10]),
    "k=3, 18 nodes": ([(1, 1), (2, 3), (5, 8)], [6, 6, 6]),
}


def run(fresh_solve_samples: int = DEFAULTS["fresh_solve_samples"]) -> List[Table]:
    """Build tables, time queries, compare with fresh solves."""
    table = Table(
        "E8 — precomputed optimal-schedule table (Theorem 2 note)",
        [
            "network",
            "entries",
            "build (ms)",
            "queries",
            "mean query (us)",
            "mean fresh solve (ms)",
            "speedup (x)",
        ],
    )
    for label, (types, counts) in NETWORKS.items():
        start = time.perf_counter()
        opt_table = OptimalTable(types, counts, latency=1).build()
        build_time = time.perf_counter() - start

        k = len(types)
        queries = [
            (s, vec)
            for s in range(k)
            for vec in product(*(range(c + 1) for c in counts))
            if any(vec)
        ]
        start = time.perf_counter()
        for s, vec in queries:
            opt_table.completion(s, vec)
        query_time = (time.perf_counter() - start) / len(queries)

        # fresh solves for a sample of the largest queries
        fresh_times: List[float] = []
        sample = sorted(queries, key=lambda q: sum(q[1]), reverse=True)
        for s, vec in sample[:fresh_solve_samples]:
            nodes = limited_type_cluster(types, [c + (1 if t == s else 0) for t, c in enumerate(vec)])
            # place one node of the source type first so the policy picks it
            mset = multicast_from_cluster(nodes, latency=1, source="slowest")
            fresh_times.append(_PLANNER.plan(mset, solver="dp").elapsed_s)
        mean_fresh = sum(fresh_times) / len(fresh_times)
        table.add_row(
            [
                label,
                opt_table.entries,
                f"{build_time * 1e3:.1f}",
                len(queries),
                f"{query_time * 1e6:.2f}",
                f"{mean_fresh * 1e3:.2f}",
                f"{mean_fresh / query_time / 1e3:.0f}k",
            ]
        )
    table.add_note(
        "queries cover every (source type, count vector) the network "
        "supports; after build() each is a dictionary lookup"
    )
    return [table]
