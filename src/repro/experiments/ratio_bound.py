"""E2 — Theorem 1: greedy vs optimal across bounded-ratio workloads.

For every instance we measure the greedy (and greedy+reversal) reception
completion against the optimum — exact by branch-and-bound for small ``n``,
a certified lower bound for large ``n`` — and check Theorem 1's strict
inequality ``GREEDY_R < 2*ceil(a_max)/a_min * OPT_R + beta``.

Paper expectation: the inequality always holds (it is a theorem); the
interesting measurement is *how loose* it is — the paper conjectures the
bound is not tight, and on ratios inside the published [1.05, 1.85] band
greedy is typically within a few percent of optimal.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import summarize
from repro.analysis.tables import Table
from repro.api import plan
from repro.core.bounds import bound_report, certified_lower_bound
from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.workloads.suites import suite

__all__ = ["run", "DEFAULTS"]

DEFAULTS: Dict[str, object] = {
    "suites": ("bounded-ratio", "bounded-ratio-wide"),
    "exact_max_n": 8,
}


def run(
    suites: tuple = DEFAULTS["suites"],
    exact_max_n: int = DEFAULTS["exact_max_n"],
) -> List[Table]:
    """Run the ratio study; one table per suite plus a verdict table."""
    tables: List[Table] = []
    verdict = Table(
        "E2 — Theorem 1 verdict",
        ["suite", "instances", "violations", "max measured ratio", "min bound slack"],
    )
    for suite_name in suites:
        table = Table(
            f"E2 — greedy vs optimal on suite '{suite_name}'",
            [
                "n",
                "seed",
                "opt kind",
                "OPT_R",
                "greedy",
                "greedy+rev",
                "ratio",
                "bound",
                "holds",
            ],
        )
        ratios: List[float] = []
        slacks: List[float] = []
        violations = 0
        count = 0
        for n, seed, mset in suite(suite_name).instances():
            greedy = greedy_schedule(mset)
            refined = reverse_leaves(greedy)
            if n <= exact_max_n:
                opt = plan(mset, solver="exact").value
                exact = True
            else:
                opt = certified_lower_bound(mset)
                exact = False
            report = bound_report(
                mset, greedy.reception_completion, opt, opt_is_exact=exact
            )
            holds = report.within_guarantee
            if exact and not holds:
                violations += 1
            if exact:
                ratios.append(report.measured_ratio)
                slacks.append(report.guarantee - report.greedy_value)
            count += 1
            table.add_row(
                [
                    n,
                    seed,
                    "exact" if exact else "lower-bd",
                    opt,
                    greedy.reception_completion,
                    refined.reception_completion,
                    f"{report.measured_ratio:.3f}",
                    f"{report.guarantee:.1f}",
                    holds,
                ]
            )
        stats = summarize(ratios)
        table.add_note(
            f"measured greedy/OPT over exact instances: mean {stats.mean:.3f}, "
            f"max {stats.maximum:.3f} (Theorem 1 factor alone would allow "
            f">= 2; the bound is loose, as the paper conjectures)"
        )
        tables.append(table)
        verdict.add_row(
            [
                suite_name,
                count,
                violations,
                f"{max(ratios):.3f}" if ratios else "-",
                f"{min(slacks):.1f}" if slacks else "-",
            ]
        )
    tables.append(verdict)
    return tables
