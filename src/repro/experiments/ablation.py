"""E10 — ablation: which of the greedy's ingredients buy what.

The paper's algorithm stacks three design choices:

1. **sorted insertion** — destinations join in non-decreasing overhead
   order (this is what makes schedules layered and powers Lemma 2);
2. **earliest-completion attachment** — each destination attaches where
   delivery completes soonest (the priority-queue greedy core);
3. **leaf reversal** — the Section 3 post-pass.

This experiment knocks each ingredient out independently:

* ``reverse-sorted`` / ``random-order`` insertion (ablates 1),
* ``random-attach`` — sorted insertion but uniformly random parents
  (ablates 2),
* with/without the reversal post-pass (ablates 3),
* plus the library's local-search extension on top (how much is left on
  the table).

Expected shape: removing earliest-completion attachment hurts most;
unsorted insertion hurts increasingly with heterogeneity; reversal is
worth a consistent single-digit percentage; local search adds little —
greedy's structure is already near-optimal.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Sequence, Tuple

from repro.analysis.tables import Table
from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.workloads.suites import suite

__all__ = ["run", "DEFAULTS", "greedy_with_insertion_order", "random_attachment"]

DEFAULTS: Dict[str, object] = {
    "suites": ("two-class", "bounded-ratio"),
    "max_n": 64,
}


def greedy_with_insertion_order(
    mset: MulticastSet, order: Sequence[int]
) -> Schedule:
    """The greedy loop with an arbitrary destination insertion order.

    Identical to the paper's algorithm except destinations join in
    ``order`` instead of the canonical non-decreasing overhead order —
    the 'ablate the sort' variant.  With ``order = 1..n`` this *is* the
    paper's greedy (asserted in tests).
    """
    if sorted(order) != list(range(1, mset.n + 1)):
        raise ValueError("order must be a permutation of 1..n")
    L = mset.latency
    children: Dict[int, List[int]] = {}
    heap: List[Tuple[float, int, int]] = []
    tick = 0
    heapq.heappush(heap, (mset.send(0) + L, tick, 0))
    for i in order:
        c, _t, p = heapq.heappop(heap)
        children.setdefault(p, []).append(i)
        tick += 1
        heapq.heappush(heap, (c + mset.receive(i) + mset.send(i) + L, tick, i))
        tick += 1
        heapq.heappush(heap, (c + mset.send(p), tick, p))
    return Schedule(mset, children)


def random_attachment(mset: MulticastSet, seed: int = 0) -> Schedule:
    """Sorted insertion, random parent choice (ablates the greedy core)."""
    rng = random.Random(seed)
    children: Dict[int, List[int]] = {}
    in_tree = [0]
    for i in range(1, mset.n + 1):
        parent = rng.choice(in_tree)
        children.setdefault(parent, []).append(i)
        in_tree.append(i)
    return Schedule(mset, children)


def _variants(mset: MulticastSet) -> Dict[str, float]:
    rng = random.Random(17)
    n = mset.n
    sorted_order = list(range(1, n + 1))
    random_order = sorted_order[:]
    rng.shuffle(random_order)
    full = reverse_leaves(greedy_schedule(mset))
    out = {
        "full (greedy+rev)": full.reception_completion,
        "no reversal": greedy_schedule(mset).reception_completion,
        "reverse-sorted insertion": reverse_leaves(
            greedy_with_insertion_order(mset, sorted_order[::-1])
        ).reception_completion,
        "random insertion": reverse_leaves(
            greedy_with_insertion_order(mset, random_order)
        ).reception_completion,
        "random attachment": reverse_leaves(
            random_attachment(mset, seed=17)
        ).reception_completion,
    }
    if n <= 48:  # local search is cubic-ish; keep the sweep fast
        from repro.algorithms.local_search import improve_schedule

        out["+ local search"] = improve_schedule(full).schedule.reception_completion
    return out


def run(suites=DEFAULTS["suites"], max_n: int = DEFAULTS["max_n"]) -> List[Table]:
    """Knock out each ingredient; report mean relative completion."""
    tables: List[Table] = []
    for suite_name in suites:
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for n, _seed, mset in suite(suite_name).instances():
            if n > max_n:
                continue
            values = _variants(mset)
            base = values["full (greedy+rev)"]
            for variant, value in values.items():
                sums[variant] = sums.get(variant, 0.0) + value / base
                counts[variant] = counts.get(variant, 0) + 1
        table = Table(
            f"E10 — greedy ingredient ablation on suite '{suite_name}' "
            f"(mean R_T relative to full algorithm)",
            ["variant", "relative completion", "instances"],
        )
        for variant in sorted(sums, key=lambda v: sums[v] / counts[v]):
            table.add_row(
                [variant, f"{sums[variant] / counts[variant]:.3f}", counts[variant]]
            )
        table.add_note(
            "expected shape: local search <= full <= every ablation, with "
            "random attachment worst; adversarial (reverse-sorted) insertion "
            "hurts more than random insertion, which keeps the attachment "
            "rule and loses only layering quality"
        )
        tables.append(table)
    return tables
