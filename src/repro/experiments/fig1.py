"""E1 — Figure 1 reproduction.

The paper's Figure 1 shows two schedules for the same instance — a multicast
from a slow node to three fast destinations and one slow destination, with
fast = (send 1, receive 1), slow = (send 2, receive 3), latency 1:

* schedule (a): the source sends to two fast nodes; the first fast node
  sends to the remaining fast node and then to the slow node.  The paper
  narrates the reception times 4, 6, 7 and 10 — completing at **10**;
* schedule (b): completes at **9**.  The figure image is not in the
  available text; we reconstruct (b) as the same tree with the first fast
  node serving the *slow* node first — reception times 4, 6, 8, 9 (see
  DESIGN.md, "Substitutions").

This module builds both schedules, checks every narrated number, and also
reports what the paper's algorithms do on the instance: plain greedy ties
schedule (a) at 10, greedy + leaf reversal reaches **8**, which the
Section 4 DP (k = 2 types) certifies as optimal.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.tables import Table
from repro.api import plan
from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import greedy_with_reversal
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule

__all__ = [
    "figure1_instance",
    "figure1_schedule_a",
    "figure1_schedule_b",
    "PAPER_NARRATED_RECEPTIONS",
    "PAPER_COMPLETION_A",
    "PAPER_COMPLETION_B",
    "run",
]

#: Reception times the Section 1 narrative walks through for schedule (a).
PAPER_NARRATED_RECEPTIONS: Tuple[float, ...] = (4.0, 6.0, 7.0, 10.0)
PAPER_COMPLETION_A: float = 10.0
PAPER_COMPLETION_B: float = 9.0

DEFAULTS: Dict[str, object] = {}


def figure1_instance() -> MulticastSet:
    """The Figure 1 instance (canonical order: d1..d3 fast, d4 slow)."""
    return MulticastSet.from_overheads(
        source=(2, 3),
        destinations=[(1, 1), (1, 1), (1, 1), (2, 3)],
        latency=1,
    )


def figure1_schedule_a(mset: MulticastSet | None = None) -> Schedule:
    """Figure 1(a): source -> {fast1, fast2}; fast1 -> {fast3, slow}."""
    mset = mset or figure1_instance()
    return Schedule(mset, {0: [1, 2], 1: [3, 4]})


def figure1_schedule_b(mset: MulticastSet | None = None) -> Schedule:
    """Figure 1(b) reconstruction: fast1 serves the slow node first."""
    mset = mset or figure1_instance()
    return Schedule(mset, {0: [1, 2], 1: [4, 3]})


def run() -> List[Table]:
    """Reproduce Figure 1 and report the algorithmic comparison."""
    mset = figure1_instance()
    sched_a = figure1_schedule_a(mset)
    sched_b = figure1_schedule_b(mset)
    greedy = greedy_schedule(mset)
    refined = greedy_with_reversal(mset)
    optimal = plan(mset, solver="dp")

    times = Table(
        "E1 / Figure 1 — reception times per destination",
        ["schedule", "fast1", "fast2", "fast3", "slow", "completes at", "paper says"],
    )
    for label, sched, paper in (
        ("(a)", sched_a, PAPER_COMPLETION_A),
        ("(b) reconstruction", sched_b, PAPER_COMPLETION_B),
    ):
        times.add_row(
            [
                label,
                sched.reception_time(1),
                sched.reception_time(2),
                sched.reception_time(3),
                sched.reception_time(4),
                sched.reception_completion,
                paper,
            ]
        )
    narrated = sorted(sched_a.reception_times[1:])
    times.add_note(
        f"schedule (a) narrated receptions {PAPER_NARRATED_RECEPTIONS} vs "
        f"measured {tuple(narrated)}"
    )

    algos = Table(
        "E1 — the paper's algorithms on the Figure 1 instance",
        ["algorithm", "R_T", "layered", "optimal?"],
    )
    algos.add_row(["figure 1(a)", sched_a.reception_completion, sched_a.is_layered(), sched_a.reception_completion == optimal.value])
    algos.add_row(["figure 1(b)", sched_b.reception_completion, sched_b.is_layered(), sched_b.reception_completion == optimal.value])
    algos.add_row(["greedy", greedy.reception_completion, greedy.is_layered(), greedy.reception_completion == optimal.value])
    algos.add_row(["greedy+reversal", refined.reception_completion, refined.is_layered(), refined.reception_completion == optimal.value])
    algos.add_row(["DP optimum (k=2)", optimal.value, optimal.schedule.is_layered(), True])
    return [times, algos]
