"""E5 — the Section 3 leaf-reversal refinement never hurts, often helps.

For every instance across the suites we compare greedy's ``R_T`` before and
after leaf reversal.  Paper expectation: reversal "will not increase the
reception completion time and may decrease it" — so zero regressions, and
strict improvements exactly on instances whose completion is realized by a
slow *leaf* that greedy (being layered) served last.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import summarize
from repro.analysis.tables import Table
from repro.core.greedy import greedy_schedule
from repro.core.leaf_reversal import reverse_leaves
from repro.workloads.suites import suite

__all__ = ["run", "DEFAULTS"]

DEFAULTS: Dict[str, object] = {
    "suites": ("bounded-ratio", "two-class", "pareto", "uniform-ratio"),
}


def run(suites=DEFAULTS["suites"]) -> List[Table]:
    """Measure the reversal's improvement distribution per suite."""
    table = Table(
        "E5 — leaf reversal improvement (greedy R_T -> reversed R_T)",
        [
            "suite",
            "instances",
            "regressions",
            "improved",
            "mean gain %",
            "max gain %",
        ],
    )
    for suite_name in suites:
        gains: List[float] = []
        regressions = 0
        improved = 0
        count = 0
        for _n, _seed, mset in suite(suite_name).instances():
            before = greedy_schedule(mset)
            after = reverse_leaves(before)
            b, a = before.reception_completion, after.reception_completion
            count += 1
            if a > b + 1e-9:
                regressions += 1
            if a < b - 1e-9:
                improved += 1
            gains.append((b - a) / b * 100.0)
        stats = summarize(gains)
        table.add_row(
            [
                suite_name,
                count,
                regressions,
                improved,
                f"{stats.mean:.2f}",
                f"{stats.maximum:.2f}",
            ]
        )
    table.add_note(
        "paper claim: regressions must be 0 in every suite; improvements "
        "occur whenever the critical path ends at a slow leaf"
    )
    return [table]
