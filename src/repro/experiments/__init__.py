"""The experiment suite regenerating every quantitative artifact of the paper.

==  ==========================================================================
id  claim
==  ==========================================================================
E1  Figure 1 (two schedules, completions 10 and 9, narrated times 4/6/7/10)
E2  Theorem 1 (greedy < 2*ceil(a_max)/a_min * OPT + beta)
E3  Lemma 1 (greedy is O(n log n))
E4  Theorem 2 (DP optimal, O(n^{2k}))
E5  Section 3 refinement (leaf reversal never hurts)
E6  Theorem 1 bound decomposition (factor vs beta vs measured)
E7  Section 1 motivation (receive-send-aware greedy beats baselines)
E8  Theorem 2 note (precomputed table, constant-time queries)
E9  Corollary 1 (greedy minimizes D_T over layered schedules)
E10 ablation of the greedy's ingredients (extension)
==  ==========================================================================

See :mod:`repro.experiments.runner` for the harness; results are recorded
in EXPERIMENTS.md.
"""

from repro.experiments import (  # noqa: F401  (re-exported for runner)
    ablation,
    bound_tightness,
    dp_scaling,
    fig1,
    layered_optimality,
    leaf_reversal,
    model_comparison,
    ratio_bound,
    scaling,
    table_precompute,
)

__all__ = [
    "ablation",
    "fig1",
    "ratio_bound",
    "scaling",
    "dp_scaling",
    "leaf_reversal",
    "bound_tightness",
    "model_comparison",
    "table_precompute",
    "layered_optimality",
]
