"""E6 — decomposing the Theorem 1 bound: factor, beta, and measured slack.

Theorem 1's guarantee has two parts: the multiplicative factor
``2 * ceil(a_max) / a_min`` and the additive spread ``beta``.  This
experiment isolates them:

* on the **uniform-ratio** family (``a_max = a_min``) the factor reduces to
  ``2 * ceil(C) / C`` — for C = 1 the paper's special case ``2*OPT + beta``;
* widening the ratio band (bounded-ratio vs bounded-ratio-wide) grows the
  factor while measured greedy/OPT barely moves — direct evidence for the
  paper's conjecture that the analysis is not tight;
* ``beta``'s contribution is compared against the measured greedy-minus-
  ``factor*OPT`` residual (always far below ``beta``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import Table
from repro.api import plan
from repro.core.bounds import theorem1_factor
from repro.core.greedy import greedy_schedule
from repro.workloads.suites import suite

__all__ = ["run", "DEFAULTS"]

DEFAULTS: Dict[str, object] = {
    "suites": ("uniform-ratio", "bounded-ratio", "bounded-ratio-wide"),
    "exact_max_n": 8,
}


def run(
    suites=DEFAULTS["suites"],
    exact_max_n: int = DEFAULTS["exact_max_n"],
) -> List[Table]:
    """Per-suite bound decomposition on exactly solved instances."""
    table = Table(
        "E6 — Theorem 1 bound decomposition (exact instances only)",
        [
            "suite",
            "instances",
            "mean factor",
            "mean measured ratio",
            "factor slack (x)",
            "mean beta",
            "mean additive residual",
        ],
    )
    for suite_name in suites:
        factors: List[float] = []
        ratios: List[float] = []
        betas: List[float] = []
        residuals: List[float] = []
        for n, _seed, mset in suite(suite_name).instances():
            if n > exact_max_n:
                continue
            opt = plan(mset, solver="exact").value
            greedy = greedy_schedule(mset).reception_completion
            factor = theorem1_factor(mset)
            factors.append(factor)
            ratios.append(greedy / opt)
            betas.append(mset.beta)
            residuals.append(max(0.0, greedy - factor * opt))
        count = len(factors)
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        table.add_row(
            [
                suite_name,
                count,
                f"{mean(factors):.2f}",
                f"{mean(ratios):.3f}",
                f"{mean(factors) / mean(ratios):.1f}",
                f"{mean(betas):.1f}",
                f"{mean(residuals):.2f}",
            ]
        )
    table.add_note(
        "additive residual max(0, greedy - factor*OPT) stays at 0 when the "
        "multiplicative factor alone already covers greedy — beta is never "
        "needed on these workloads, underscoring the bound's looseness"
    )
    return [table]
