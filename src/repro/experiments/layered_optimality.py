"""E9 — Corollary 1: greedy minimizes D_T over all layered schedules.

Exhaustive verification on small instances: enumerate every layered
schedule (up to tie-equivalence), take the minimum delivery completion
time, and compare with greedy's.  Corollary 1 demands exact equality —
greedy *attains* the layered optimum, it does not merely approximate it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import Table
from repro.core.greedy import greedy_schedule
from repro.core.layered import (
    count_layered_schedules,
    min_layered_delivery_completion,
)
from repro.workloads.suites import suite

__all__ = ["run", "DEFAULTS"]

DEFAULTS: Dict[str, object] = {
    "suites": ("bounded-ratio", "two-class", "uniform-ratio"),
    "max_n": 6,
}


def run(suites=DEFAULTS["suites"], max_n: int = DEFAULTS["max_n"]) -> List[Table]:
    """Exhaustive Corollary 1 check per instance."""
    table = Table(
        "E9 — Corollary 1: greedy D_T vs exhaustive layered minimum",
        ["suite", "n", "seed", "layered schedules", "min layered D_T", "greedy D_T", "equal"],
    )
    mismatches = 0
    for suite_name in suites:
        for n, seed, mset in suite(suite_name).instances():
            if n > max_n:
                continue
            count = count_layered_schedules(mset)
            best = min_layered_delivery_completion(mset)
            greedy = greedy_schedule(mset).delivery_completion
            equal = abs(best - greedy) < 1e-9
            if not equal:
                mismatches += 1
            table.add_row([suite_name, n, seed, count, best, greedy, equal])
    table.add_note(f"mismatches: {mismatches} (Corollary 1 requires 0)")
    return [table]
