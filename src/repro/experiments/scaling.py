"""E3 — Lemma 1: the greedy algorithm runs in O(n log n).

We time the greedy on geometrically growing instances and fit the measured
runtimes against candidate cost models.  Lemma 1 predicts the ``n log n``
model wins and the *normalized* cost ``time / (n log2 n)`` stays flat.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.analysis.complexity import best_model, fit_nlogn
from repro.analysis.tables import Table
from repro.core.greedy import greedy_schedule
from repro.workloads.clusters import bounded_ratio_cluster
from repro.workloads.generator import multicast_from_cluster

__all__ = ["run", "DEFAULTS", "measure_greedy_times"]

DEFAULTS: Dict[str, object] = {
    "sizes": (256, 512, 1024, 2048, 4096, 8192, 16384),
    "repeats": 5,
    "seed": 0,
}


def measure_greedy_times(sizes, repeats: int, seed: int) -> List[float]:
    """Median wall-clock greedy runtime per size (seconds)."""
    times: List[float] = []
    for n in sizes:
        nodes = bounded_ratio_cluster(n + 1, seed)
        mset = multicast_from_cluster(nodes, latency=2, source="slowest")
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            greedy_schedule(mset)
            samples.append(time.perf_counter() - start)
        samples.sort()
        times.append(samples[len(samples) // 2])
    return times


def run(
    sizes=DEFAULTS["sizes"],
    repeats: int = DEFAULTS["repeats"],
    seed: int = DEFAULTS["seed"],
) -> List[Table]:
    """Time greedy across sizes; fit and report the winning cost model."""
    times = measure_greedy_times(sizes, repeats, seed)
    table = Table(
        "E3 — greedy runtime scaling (Lemma 1: O(n log n))",
        ["n", "median time (ms)", "time / (n log2 n) (us)"],
    )
    import math

    for n, t in zip(sizes, times):
        table.add_row([n, f"{t * 1e3:.3f}", f"{t / (n * math.log2(n)) * 1e6:.4f}"])
    nlogn = fit_nlogn(sizes, times)
    winner = best_model(sizes, times)
    table.add_note(
        f"n log n fit R^2 = {nlogn.r_squared:.4f}; best model overall: "
        f"{winner.model} (R^2 = {winner.r_squared:.4f})"
    )
    return [table]
