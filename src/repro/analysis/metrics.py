"""Schedule-quality metrics and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.schedule import Schedule
from repro.exceptions import ReproError

__all__ = ["approximation_ratio", "speedup", "Summary", "summarize", "critical_path"]


def approximation_ratio(value: float, optimum: float) -> float:
    """``value / optimum`` with sanity checks (both positive, ratio >= 1-eps)."""
    if optimum <= 0 or value <= 0:
        raise ReproError(f"completion times must be positive: {value}, {optimum}")
    ratio = value / optimum
    if ratio < 1 - 1e-9:
        raise ReproError(
            f"'optimum' {optimum} exceeds the evaluated value {value}; "
            f"arguments are probably swapped"
        )
    return ratio


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` completes than ``baseline``."""
    if baseline <= 0 or improved <= 0:
        raise ReproError("completion times must be positive")
    return baseline / improved


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample (mean, sd, min, median, p95, max)."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} sd={self.std:.3g} "
            f"min={self.minimum:.4g} med={self.median:.4g} "
            f"p95={self.p95:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    if len(values) == 0:
        raise ReproError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


def critical_path(schedule: Schedule) -> list[int]:
    """The chain of nodes realizing ``R_T`` (source ... last receiver)."""
    mset = schedule.multicast
    last = max(range(1, mset.n + 1), key=lambda v: (schedule.reception_time(v), v))
    path = [last]
    while path[-1] != 0:
        path.append(schedule.parent_of(path[-1]))
    path.reverse()
    return path
