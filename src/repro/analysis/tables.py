"""Plain-text result tables (the paper-style rows of EXPERIMENTS.md)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.exceptions import ReproError

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled, aligned text table with markdown export.

    >>> t = Table("demo", ["a", "b"])
    >>> t.add_row([1, 2.5]); print(t.render())       # doctest: +SKIP
    """

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.headers):
            raise ReproError(
                f"row has {len(values)} cells, table {self.title!r} has "
                f"{len(self.headers)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[str]:
        """All cells of one column (by header name)."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise ReproError(f"no column {name!r} in table {self.title!r}") from None
        return [row[idx] for row in self.rows]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Fixed-width text rendering."""
        widths = [
            max(len(h), *(len(r[i]) for r in self.rows)) if self.rows else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
