"""Measurement and reporting helpers for the experiment harness."""

from repro.analysis.metrics import (
    Summary,
    approximation_ratio,
    critical_path,
    speedup,
    summarize,
)
from repro.analysis.complexity import (
    COST_MODELS,
    FitResult,
    best_model,
    fit_model,
    fit_nlogn,
    fit_power,
)
from repro.analysis.tables import Table

__all__ = [
    "approximation_ratio",
    "speedup",
    "critical_path",
    "Summary",
    "summarize",
    "COST_MODELS",
    "FitResult",
    "fit_model",
    "fit_nlogn",
    "fit_power",
    "best_model",
    "Table",
]
