"""Empirical complexity fitting for the scaling experiments (E3, E4).

Lemma 1 claims the greedy runs in ``O(n log n)``; Theorem 2 claims the DP
runs in ``O(n^{2k})``.  We validate these shapes by least-squares fitting
measured runtimes against candidate cost models and comparing fit quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.exceptions import ReproError

__all__ = ["FitResult", "fit_model", "fit_nlogn", "fit_power", "best_model", "COST_MODELS"]


@dataclass(frozen=True)
class FitResult:
    """A least-squares fit of ``time ~ coeff * model(n) (+ intercept)``."""

    model: str
    coeff: float
    intercept: float
    r_squared: float

    def predict(self, n: float) -> float:
        return self.coeff * COST_MODELS[self.model](n) + self.intercept


COST_MODELS: Dict[str, Callable[[float], float]] = {
    "n": lambda n: n,
    "nlogn": lambda n: n * np.log2(max(n, 2.0)),
    "n^2": lambda n: n**2,
    "n^3": lambda n: n**3,
    "n^4": lambda n: n**4,
    "n^6": lambda n: n**6,
}


def fit_model(
    sizes: Sequence[float], times: Sequence[float], model: str
) -> FitResult:
    """Fit ``times ~ a * model(sizes) + b`` by linear least squares."""
    if model not in COST_MODELS:
        raise ReproError(f"unknown cost model {model!r}; have {sorted(COST_MODELS)}")
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ReproError("need >= 2 aligned (size, time) samples")
    fn = COST_MODELS[model]
    x = np.array([fn(float(n)) for n in sizes], dtype=float)
    y = np.asarray(times, dtype=float)
    design = np.column_stack([x, np.ones_like(x)])
    (coeff, intercept), *_ = np.linalg.lstsq(design, y, rcond=None)
    predicted = design @ np.array([coeff, intercept])
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitResult(model=model, coeff=float(coeff), intercept=float(intercept), r_squared=r2)


def fit_nlogn(sizes: Sequence[float], times: Sequence[float]) -> FitResult:
    """Convenience: the Lemma 1 cost model."""
    return fit_model(sizes, times, "nlogn")


def fit_power(sizes: Sequence[float], times: Sequence[float]) -> Tuple[float, float]:
    """Fit ``time ~ c * n^p`` in log-log space; returns ``(p, c)``.

    Used by E4 to estimate the DP's polynomial degree and compare it with
    Theorem 2's ``2k``.
    """
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ReproError("need >= 2 aligned (size, time) samples")
    x = np.log(np.asarray(sizes, dtype=float))
    y = np.log(np.asarray(times, dtype=float))
    design = np.column_stack([x, np.ones_like(x)])
    (p, logc), *_ = np.linalg.lstsq(design, y, rcond=None)
    return float(p), float(np.exp(logc))


def best_model(sizes: Sequence[float], times: Sequence[float]) -> FitResult:
    """The cost model with the highest R^2 on this sample."""
    fits = [fit_model(sizes, times, m) for m in COST_MODELS]
    return max(fits, key=lambda f: f.r_squared)
