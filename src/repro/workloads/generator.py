"""Turn clusters into multicast problem instances.

A *cluster* (list of nodes) plus a *source policy* plus a latency gives a
:class:`~repro.core.multicast.MulticastSet`.  The source policy matters:
Figure 1's instance uses a *slow* source, the hardest natural case (the
first transmission is expensive and pipelining starts late).
"""

from __future__ import annotations

import random
from typing import List, Literal, Sequence

from repro.core.multicast import MulticastSet
from repro.core.node import Node, overhead_key
from repro.exceptions import WorkloadError

__all__ = ["multicast_from_cluster", "random_subset_multicast", "SourcePolicy"]

SourcePolicy = Literal["fastest", "slowest", "median", "random", "first"]


def _pick_source(nodes: Sequence[Node], policy: SourcePolicy, rng: random.Random) -> int:
    if policy == "first":
        return 0
    if policy == "random":
        return rng.randrange(len(nodes))
    ranked = sorted(range(len(nodes)), key=lambda i: overhead_key(nodes[i]))
    if policy == "fastest":
        return ranked[0]
    if policy == "slowest":
        return ranked[-1]
    if policy == "median":
        return ranked[len(ranked) // 2]
    raise WorkloadError(f"unknown source policy {policy!r}")


def multicast_from_cluster(
    nodes: Sequence[Node],
    *,
    latency: float = 1,
    source: SourcePolicy = "slowest",
    seed: int = 0,
) -> MulticastSet:
    """Broadcast instance: the chosen source multicasts to everyone else."""
    if len(nodes) < 2:
        raise WorkloadError("need at least two nodes for a multicast")
    rng = random.Random(seed)
    src = _pick_source(nodes, source, rng)
    return MulticastSet(
        nodes[src],
        [nd for i, nd in enumerate(nodes) if i != src],
        latency,
    )


def random_subset_multicast(
    nodes: Sequence[Node],
    n_destinations: int,
    *,
    latency: float = 1,
    source: SourcePolicy = "slowest",
    seed: int = 0,
) -> MulticastSet:
    """Multicast to a random subset of the cluster (a true multicast).

    The source is chosen by policy over the *whole* cluster, then
    ``n_destinations`` distinct destinations are sampled uniformly from the
    remaining nodes.
    """
    if not 1 <= n_destinations <= len(nodes) - 1:
        raise WorkloadError(
            f"n_destinations must be in [1, {len(nodes) - 1}], got {n_destinations}"
        )
    rng = random.Random(seed)
    src = _pick_source(nodes, source, rng)
    others: List[Node] = [nd for i, nd in enumerate(nodes) if i != src]
    dests = rng.sample(others, n_destinations)
    return MulticastSet(nodes[src], dests, latency)
