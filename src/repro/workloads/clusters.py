"""Synthetic HNOW cluster generators.

Every generator returns a list of :class:`~repro.core.node.Node` satisfying
the paper's correlation assumption by construction (equal send overheads
share a receive overhead; strictly larger send overheads get strictly
larger receive overheads).  All randomness is seeded and deterministic.

The generators cover the regimes the paper's analysis distinguishes:

* :func:`two_class_cluster` — the Figure 1 fast/slow world;
* :func:`bounded_ratio_cluster` — receive-send ratios inside a band
  (defaults to the published [1.05, 1.85] range of [3, 7]) — Theorem 1's
  habitat;
* :func:`limited_type_cluster` — ``k`` distinct types — Theorem 2's habitat;
* :func:`uniform_ratio_cluster` / :func:`power_of_two_cluster` — uniform
  integer ratio and power-of-two sends — Lemma 3's premises;
* :func:`pareto_cluster` — heavy-tailed heterogeneity stress test.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.core.node import Node
from repro.exceptions import WorkloadError
from repro.model.machines import RATIO_RANGE

__all__ = [
    "two_class_cluster",
    "bounded_ratio_cluster",
    "limited_type_cluster",
    "uniform_ratio_cluster",
    "power_of_two_cluster",
    "pareto_cluster",
    "figure1_nodes",
]


def _named(overheads: Sequence[Tuple[float, float]], prefix: str) -> List[Node]:
    return [Node(f"{prefix}{i}", s, r) for i, (s, r) in enumerate(overheads)]


def two_class_cluster(
    n_fast: int,
    n_slow: int,
    *,
    fast: Tuple[float, float] = (1, 1),
    slow: Tuple[float, float] = (2, 3),
    prefix: str = "w",
) -> List[Node]:
    """Fast/slow workstation mix — the regime of the paper's Figure 1."""
    if n_fast < 0 or n_slow < 0 or n_fast + n_slow == 0:
        raise WorkloadError("need a non-empty cluster")
    if not (fast[0] <= slow[0] and fast[1] <= slow[1]):
        raise WorkloadError("'fast' must dominate 'slow' componentwise")
    return _named([fast] * n_fast + [slow] * n_slow, prefix)


def figure1_nodes() -> List[Node]:
    """The exact Figure 1 population: one slow source + 3 fast + 1 slow.

    Index 0 is the (slow) source; see
    :func:`repro.experiments.fig1.figure1_instance` for the full instance.
    """
    nodes = two_class_cluster(3, 2)
    # put one slow node first: it is the source in Figure 1
    return [nodes[3], nodes[0], nodes[1], nodes[2], nodes[4]]


def _correlated_receives(
    sends: Sequence[int],
    rng: random.Random,
    ratio_range: Tuple[float, float],
) -> Dict[int, int]:
    """Assign each distinct send overhead a receive overhead.

    Receives are strictly increasing with the send value (correlation
    assumption) and target ratios drawn uniformly from ``ratio_range``;
    integer rounding can force a bump of +1 per level, which may push a
    ratio slightly above the band for very small overheads — callers that
    need the band exactly should use send overheads ``>= ~10``.
    """
    lo, hi = ratio_range
    if not 0 < lo <= hi:
        raise WorkloadError(f"bad ratio range {ratio_range}")
    receives: Dict[int, int] = {}
    prev_recv = 0
    for send in sorted(set(sends)):
        target = rng.uniform(lo, hi) * send
        recv = max(round(target), prev_recv + 1, 1)
        receives[send] = recv
        prev_recv = recv
    return receives


def bounded_ratio_cluster(
    n: int,
    seed: int,
    *,
    send_range: Tuple[int, int] = (8, 40),
    ratio_range: Tuple[float, float] = RATIO_RANGE,
    prefix: str = "w",
) -> List[Node]:
    """Random cluster with receive-send ratios inside a band.

    Send overheads are uniform integers in ``send_range``; each distinct
    send value receives one receive overhead targeting a ratio drawn from
    ``ratio_range`` (defaults to the paper's published [1.05, 1.85]).
    """
    if n <= 0:
        raise WorkloadError("n must be positive")
    lo, hi = send_range
    if not 0 < lo <= hi:
        raise WorkloadError(f"bad send range {send_range}")
    rng = random.Random(seed)
    sends = [rng.randint(lo, hi) for _ in range(n)]
    receives = _correlated_receives(sends, rng, ratio_range)
    return _named([(s, receives[s]) for s in sends], prefix)


def limited_type_cluster(
    type_overheads: Sequence[Tuple[float, float]],
    counts: Sequence[int],
    *,
    prefix: str = "w",
) -> List[Node]:
    """Cluster with exactly the given ``k`` types (Theorem 2's regime).

    ``type_overheads`` must be correlation-consistent; nodes appear grouped
    by type in the returned list.
    """
    if len(type_overheads) != len(counts):
        raise WorkloadError("type_overheads and counts must align")
    if any(c < 0 for c in counts):
        raise WorkloadError("counts must be non-negative")
    ordered = sorted(type_overheads)
    for (s1, r1), (s2, r2) in zip(ordered, ordered[1:]):
        if s1 == s2 or r1 >= r2:
            raise WorkloadError(
                f"type overheads violate the correlation assumption: "
                f"({s1},{r1}) vs ({s2},{r2})"
            )
    overheads: List[Tuple[float, float]] = []
    for t, count in zip(type_overheads, counts):
        overheads.extend([t] * count)
    if not overheads:
        raise WorkloadError("need at least one node")
    return _named(overheads, prefix)


def uniform_ratio_cluster(
    n: int,
    seed: int,
    ratio: int,
    *,
    send_range: Tuple[int, int] = (1, 16),
    prefix: str = "w",
) -> List[Node]:
    """All nodes share the integer ratio ``o_receive = ratio * o_send``."""
    if ratio < 1 or ratio != int(ratio):
        raise WorkloadError(f"ratio must be a positive integer, got {ratio}")
    rng = random.Random(seed)
    lo, hi = send_range
    sends = [rng.randint(lo, hi) for _ in range(n)]
    return _named([(s, ratio * s) for s in sends], prefix)


def power_of_two_cluster(
    n: int,
    seed: int,
    ratio: int,
    *,
    max_exponent: int = 4,
    prefix: str = "w",
) -> List[Node]:
    """Power-of-two sends + uniform integer ratio — Lemma 3's exact premises."""
    if max_exponent < 0:
        raise WorkloadError("max_exponent must be >= 0")
    rng = random.Random(seed)
    sends = [2 ** rng.randint(0, max_exponent) for _ in range(n)]
    return _named([(s, ratio * s) for s in sends], prefix)


def pareto_cluster(
    n: int,
    seed: int,
    *,
    alpha: float = 1.5,
    scale: float = 8.0,
    cap: float = 400.0,
    ratio_range: Tuple[float, float] = RATIO_RANGE,
    prefix: str = "w",
) -> List[Node]:
    """Heavy-tailed send overheads (a few very slow legacy machines)."""
    if alpha <= 0:
        raise WorkloadError("alpha must be positive")
    rng = random.Random(seed)
    sends = [
        max(1, min(cap, round(scale * rng.paretovariate(alpha)))) for _ in range(n)
    ]
    receives = _correlated_receives(sends, rng, ratio_range)
    return _named([(s, receives[s]) for s in sends], prefix)
