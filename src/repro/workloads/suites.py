"""Named instance suites used by the experiments and benchmarks.

Each suite is a deterministic family of multicast instances.  Experiments
reference suites by name so EXPERIMENTS.md rows are exactly regenerable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.multicast import MulticastSet
from repro.workloads.clusters import (
    bounded_ratio_cluster,
    limited_type_cluster,
    pareto_cluster,
    power_of_two_cluster,
    two_class_cluster,
    uniform_ratio_cluster,
)
from repro.workloads.generator import multicast_from_cluster

__all__ = ["Suite", "SUITES", "suite", "instances"]


@dataclass(frozen=True)
class Suite:
    """A named deterministic family of instances."""

    name: str
    description: str
    sizes: Tuple[int, ...]
    seeds: Tuple[int, ...]

    def instances(self) -> Iterator[Tuple[int, int, MulticastSet]]:
        """Yield ``(n, seed, instance)`` for the whole family."""
        for n in self.sizes:
            for seed in self.seeds:
                yield n, seed, _make(self.name, n, seed)


def _make(name: str, n: int, seed: int) -> MulticastSet:
    if name == "bounded-ratio":
        nodes = bounded_ratio_cluster(n + 1, seed)
    elif name == "bounded-ratio-wide":
        nodes = bounded_ratio_cluster(n + 1, seed, ratio_range=(1.0, 4.0))
    elif name == "two-class":
        n_slow = max(1, (n + 1) // 3)
        nodes = two_class_cluster(n + 1 - n_slow, n_slow)
    elif name == "three-type":
        counts = _split(n + 1, 3)
        nodes = limited_type_cluster([(1, 1), (2, 3), (5, 8)], counts)
    elif name == "two-type":
        counts = _split(n + 1, 2)
        nodes = limited_type_cluster([(1, 1), (3, 5)], counts)
    elif name == "uniform-ratio":
        nodes = uniform_ratio_cluster(n + 1, seed, ratio=2)
    elif name == "power-of-two":
        nodes = power_of_two_cluster(n + 1, seed, ratio=2)
    elif name == "pareto":
        nodes = pareto_cluster(n + 1, seed)
    else:
        raise KeyError(f"unknown suite {name!r}")
    return multicast_from_cluster(nodes, latency=max(1, seed % 3 + 1), source="slowest", seed=seed)


def _split(total: int, parts: int) -> List[int]:
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


SUITES = {
    s.name: s
    for s in (
        Suite(
            "bounded-ratio",
            "ratios in the published [1.05, 1.85] band (Theorem 1 habitat)",
            sizes=(4, 6, 8, 16, 32, 64),
            seeds=(0, 1, 2, 3, 4),
        ),
        Suite(
            "bounded-ratio-wide",
            "ratios stretched to [1.0, 4.0] — stresses the Theorem 1 factor",
            sizes=(4, 6, 8, 16, 32),
            seeds=(0, 1, 2, 3, 4),
        ),
        Suite(
            "two-class",
            "fast/slow mix as in Figure 1",
            sizes=(4, 8, 16, 32, 64, 128),
            seeds=(0, 1, 2),
        ),
        Suite(
            "two-type",
            "two workstation types (Theorem 2, k=2)",
            sizes=(4, 8, 16, 32, 64),
            seeds=(0, 1, 2),
        ),
        Suite(
            "three-type",
            "three workstation types (Theorem 2, k=3)",
            sizes=(6, 9, 12, 18),
            seeds=(0, 1, 2),
        ),
        Suite(
            "uniform-ratio",
            "uniform integer ratio C=2 (Theorem 1 special-case family)",
            sizes=(4, 8, 16, 32),
            seeds=(0, 1, 2, 3),
        ),
        Suite(
            "power-of-two",
            "power-of-two sends + uniform ratio (Lemma 3's premises)",
            sizes=(4, 6, 8, 12),
            seeds=(0, 1, 2, 3),
        ),
        Suite(
            "pareto",
            "heavy-tailed heterogeneity stress test",
            sizes=(8, 16, 32, 64),
            seeds=(0, 1, 2),
        ),
    )
}


def suite(name: str) -> Suite:
    """Look up a suite by name (``KeyError`` for unknown names)."""
    return SUITES[name]


def instances(name: str) -> Iterator[Tuple[int, int, MulticastSet]]:
    """Shorthand for ``suite(name).instances()``."""
    return suite(name).instances()
