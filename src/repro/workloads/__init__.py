"""Workload generation: clusters, instances, and named experiment suites."""

from repro.workloads.clusters import (
    bounded_ratio_cluster,
    figure1_nodes,
    limited_type_cluster,
    pareto_cluster,
    power_of_two_cluster,
    two_class_cluster,
    uniform_ratio_cluster,
)
from repro.workloads.generator import (
    SourcePolicy,
    multicast_from_cluster,
    random_subset_multicast,
)
from repro.workloads.multigroup import multi_group_workload
from repro.workloads.suites import SUITES, Suite, instances, suite

__all__ = [
    "two_class_cluster",
    "bounded_ratio_cluster",
    "limited_type_cluster",
    "uniform_ratio_cluster",
    "power_of_two_cluster",
    "pareto_cluster",
    "figure1_nodes",
    "SourcePolicy",
    "multicast_from_cluster",
    "random_subset_multicast",
    "multi_group_workload",
    "Suite",
    "SUITES",
    "suite",
    "instances",
]
