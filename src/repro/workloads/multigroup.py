"""Deterministic multi-group contention workloads.

Production multicast traffic is many groups contending for the same
senders (ROADMAP open item 2).  This module generates the canonical
contended shape deterministically from a seed: a single *hub* workstation
is the source of every group (its transmit slots are the contended
resource), each group has its own destinations, and optionally *relay*
workstations appear as destinations in two consecutive groups so
receive-side contention is exercised too.

Overheads are power-of-two sends with one global receive/send ratio, so
every group satisfies the paper's correlation assumption by construction
and the Section 4 DP stays applicable (few distinct types per group).
"""

from __future__ import annotations

import random
from typing import List

from repro.core.contention import MultiGroupInstance
from repro.core.multicast import MulticastSet
from repro.core.node import Node, Number
from repro.exceptions import WorkloadError

__all__ = ["multi_group_workload"]

_SEND_EXPONENTS = (0, 1, 2)  # destination o_send drawn from {1, 2, 4}


def multi_group_workload(
    groups: int = 3,
    n: int = 5,
    seed: int = 0,
    *,
    latency: Number = 1,
    relays: int = 0,
    weights: bool = False,
) -> MultiGroupInstance:
    """A seeded multi-group instance contended on one hub sender.

    Parameters
    ----------
    groups:
        Number of multicast groups (>= 1), all sourced at the shared hub.
    n:
        Destinations per group (>= 1), named ``g<g>d<i>``.
    seed:
        Seed for the deterministic draw; equal arguments always yield an
        identical instance.
    latency:
        Global network latency ``L`` of every group.
    relays:
        Number of shared relay destinations.  Relay ``j`` (``relay<j>``)
        is a destination of groups ``j`` and ``j + 1``, replacing one
        private destination in each, so consecutive groups also contend
        on receive slots.  Requires ``groups >= 2`` and ``relays <
        groups`` and at most ``n - 1`` relays touching any single group.
    weights:
        When ``True``, draw integer group weights from ``{1, 2, 3}``
        instead of the all-ones default.
    """
    if groups < 1:
        raise WorkloadError(f"groups must be >= 1, got {groups}")
    if n < 1:
        raise WorkloadError(f"n must be >= 1, got {n}")
    if relays < 0:
        raise WorkloadError(f"relays must be >= 0, got {relays}")
    if relays and groups < 2:
        raise WorkloadError("relays need at least two groups to span")
    if relays >= max(groups, 1) and relays:
        raise WorkloadError(f"need relays < groups, got {relays} relays for {groups} groups")
    # a middle group can host relays j-1 and j; never displace every
    # private destination
    if relays and min(2, relays) > n - 1:
        raise WorkloadError(f"n={n} is too small to host {relays} relays per group")

    rng = random.Random(seed)
    ratio = rng.choice((1, 2, 3))
    # the hub is the slowest sender in the network: its serialized
    # transmit slots are the contended resource
    hub_send = 2 ** (max(_SEND_EXPONENTS) + 1)
    hub = Node("hub", hub_send, ratio * hub_send)
    relay_nodes = []
    for j in range(relays):
        send = 2 ** rng.choice(_SEND_EXPONENTS)
        relay_nodes.append(Node(f"relay{j}", send, ratio * send))

    group_sets: List[MulticastSet] = []
    for g in range(groups):
        dests: List[Node] = [
            relay_nodes[j] for j in (g - 1, g) if 0 <= j < relays
        ]
        for i in range(n - len(dests)):
            send = 2 ** rng.choice(_SEND_EXPONENTS)
            dests.append(Node(f"g{g}d{i}", send, ratio * send))
        group_sets.append(MulticastSet(hub, dests, latency))

    ws = [rng.choice((1, 2, 3)) for _ in range(groups)] if weights else None
    return MultiGroupInstance(group_sets, ws)
