"""repro — reproduction of *Efficient Multicast in Heterogeneous Networks of
Workstations* (Libeskind-Hadas & Hartline, ICPP 2000 Workshop on
Network-Based Computing).

The package implements the heterogeneous receive-send communication model,
the paper's ``O(n log n)`` greedy approximation algorithm with its Theorem 1
guarantee, the leaf-reversal refinement, the ``O(n^{2k})`` exact dynamic
program for networks with ``k`` workstation types, exact validation solvers,
the Lemma 3 proof machinery, a discrete-event simulator of the model,
baseline schedulers from the related work, workload generators, and the
experiment harness that regenerates every quantitative artifact of the
paper (see DESIGN.md / EXPERIMENTS.md).

Quickstart
----------
Every solver — the greedy family, the baselines, the exact ``dp`` and
``exact`` oracles — is planned through the unified :mod:`repro.api`
façade:

>>> from repro import MulticastSet, Planner
>>> mset = MulticastSet.from_overheads(
...     source=(2, 3),
...     destinations=[(1, 1), (1, 1), (1, 1), (2, 3)],
...     latency=1,
... )
>>> planner = Planner()
>>> planner.plan(mset, solver="greedy+reversal").value
8.0
>>> planner.plan(mset, solver="dp").exact    # same entry point, no special case
True
>>> planner.plan_batch([mset] * 3, jobs=2).values()
(8.0, 8.0, 8.0)

The direct algorithm functions (``greedy_with_reversal``, ``solve_dp``,
...) remain exported for library use.
"""

from repro.api import (
    BatchResult,
    Planner,
    PlanRequest,
    PlanResult,
    instance_fingerprint,
    plan,
    plan_batch,
)
from repro.core import (
    BoundReport,
    DPSolution,
    ExactSolution,
    GreedyStep,
    GreedyTrace,
    MulticastSet,
    Node,
    OptimalTable,
    Schedule,
    TypeSystem,
    bound_report,
    certified_lower_bound,
    count_layered_schedules,
    enumerate_layered_schedules,
    exchange,
    first_hop_lower_bound,
    greedy_completion,
    greedy_schedule,
    greedy_with_reversal,
    homogeneous_relaxation_lower_bound,
    layer_schedule,
    leaf_slots,
    min_layered_delivery_completion,
    next_power_of_two,
    optimal_completion_dp,
    optimal_completion_exact,
    overhead_key,
    reverse_leaves,
    round_up_instance,
    same_type,
    solve_dp,
    solve_exact,
    swap_same_type,
    theorem1_bound,
    theorem1_factor,
    uniform_ratio,
)
from repro.exceptions import (
    ConformanceError,
    CorrelationError,
    InvalidScheduleError,
    ModelError,
    ReproError,
    SimulationError,
    SolverError,
    TransformError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # planning façade
    "Planner",
    "PlanRequest",
    "PlanResult",
    "BatchResult",
    "plan",
    "plan_batch",
    "instance_fingerprint",
    # model & schedules
    "Node",
    "MulticastSet",
    "Schedule",
    "overhead_key",
    "same_type",
    # algorithms
    "greedy_schedule",
    "greedy_completion",
    "greedy_with_reversal",
    "reverse_leaves",
    "leaf_slots",
    "GreedyTrace",
    "GreedyStep",
    "solve_dp",
    "optimal_completion_dp",
    "DPSolution",
    "TypeSystem",
    "OptimalTable",
    "solve_exact",
    "optimal_completion_exact",
    "ExactSolution",
    # layered schedules
    "enumerate_layered_schedules",
    "count_layered_schedules",
    "min_layered_delivery_completion",
    # proof machinery
    "uniform_ratio",
    "round_up_instance",
    "next_power_of_two",
    "exchange",
    "swap_same_type",
    "layer_schedule",
    # bounds
    "theorem1_factor",
    "theorem1_bound",
    "first_hop_lower_bound",
    "homogeneous_relaxation_lower_bound",
    "certified_lower_bound",
    "BoundReport",
    "bound_report",
    # exceptions
    "ReproError",
    "ModelError",
    "ConformanceError",
    "CorrelationError",
    "InvalidScheduleError",
    "TransformError",
    "SimulationError",
    "SolverError",
    "WorkloadError",
]
