"""Command-line interface: ``hnow-multicast`` / ``python -m repro``.

Subcommands
-----------
``generate``    write a random instance to JSON
``schedule``    schedule an instance with any registered solver
``simulate``    execute a schedule on the discrete-event simulator
``compare``     run every capable solver on one instance (optionally parallel)
``plan-batch``  plan many instances in one amortized group-solve batch
``plan-groups`` compose concurrent groups under shared-sender contention
``experiment``  run the E1..E10 reproduction experiments
``fig1``        pretty-print the Figure 1 reproduction
``serve``       run the long-lived planning service (TCP JSON-lines)
``submit``      plan instances through a running service
``store``       inspect/verify/compact a persistent plan store
``conformance`` differential cross-solver verification (run/fuzz/corpus/replay)
``perf``        benchmark baselines: run kernels, compare, refresh (run/compare/baseline)

Every solver — the paper's greedy family, the baselines, the Section 4
``dp`` and the branch-and-bound ``exact`` oracle — is resolved through the
unified :mod:`repro.api` registry, so there are no per-solver special cases
here.  The service commands are documented operator-side in SERVICE.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import available_solvers
from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hnow-multicast",
        description=(
            "Multicast scheduling for heterogeneous networks of workstations "
            "(reproduction of Libeskind-Hadas & Hartline, ICPP 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a random instance (JSON to stdout/file)")
    gen.add_argument("--kind", default="bounded-ratio",
                     choices=["bounded-ratio", "two-class", "pareto"], help="cluster family")
    gen.add_argument("-n", type=int, default=8, help="number of destinations")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--latency", type=float, default=1.0)
    gen.add_argument("--source", default="slowest",
                     choices=["fastest", "slowest", "median", "random", "first"])
    gen.add_argument("-o", "--output", default=None, help="output path (default stdout)")

    sch = sub.add_parser("schedule", help="schedule an instance from JSON")
    sch.add_argument("instance", help="instance JSON path")
    sch.add_argument("--algorithm", default="greedy+reversal",
                     choices=available_solvers())
    sch.add_argument("--bounds", action="store_true",
                     help="print the Theorem 1 bound report")
    sch.add_argument("--tree", action="store_true", help="print the schedule tree")
    sch.add_argument("--gantt", action="store_true", help="print a Gantt chart")
    sch.add_argument("-o", "--output", default=None, help="write the schedule JSON here")

    sim = sub.add_parser("simulate", help="execute a schedule JSON on the simulator")
    sim.add_argument("schedule", help="schedule JSON path")
    sim.add_argument("--jitter", type=float, default=0.0,
                     help="latency jitter amplitude (0 = exact model)")
    sim.add_argument("--seed", type=int, default=0, help="jitter seed")

    cmp_ = sub.add_parser("compare", help="run every capable solver on an instance")
    cmp_.add_argument("instance", help="instance JSON path")
    cmp_.add_argument("-j", "--jobs", type=int, default=1,
                      help="parallel planning workers (default 1 = serial)")

    pba = sub.add_parser(
        "plan-batch",
        help="plan many instance JSONs in one amortized batch (group-solve)")
    pba.add_argument("instances", nargs="+", help="instance JSON paths")
    pba.add_argument("--solver", default=None,
                     help="solver spec for every instance (default: "
                          "the planner's default)")
    pba.add_argument("-j", "--jobs", type=int, default=1,
                     help="parallel planning workers (default 1 = serial)")
    pba.add_argument("--no-group-solve", action="store_true",
                     help="escape hatch: plan instance-by-instance instead "
                          "of bucketing by canonical type system")
    pba.add_argument("--json", action="store_true",
                     help="emit results as repro/plan-result-v1 JSON lines")

    pgr = sub.add_parser(
        "plan-groups",
        help="plan concurrent multicast groups under shared-sender "
             "contention (DESIGN.md, Contention)")
    pgr.add_argument("groups", nargs="+",
                     help="per-group instance JSON paths, or a single "
                          "repro/multi-group-v1 bundle")
    pgr.add_argument("--strategy", default=None,
                     help="multi-group composition solver (default "
                          "mg-greedy-pack; see 'compare' for the catalogue)")
    pgr.add_argument("--solver", default=None,
                     help="inner single-group solver spec (default: the "
                          "planner's default)")
    pgr.add_argument("--compare", action="store_true",
                     help="run every registered mg-* strategy (inner solves "
                          "are shared through the planner cache)")
    pgr.add_argument("-j", "--jobs", type=int, default=1,
                     help="parallel inner planning workers (default 1)")
    pgr.add_argument("--json", action="store_true",
                     help="emit one JSON object per strategy")

    exp = sub.add_parser("experiment", help="run reproduction experiments")
    exp.add_argument("names", nargs="*", default=[],
                     help="experiment ids (E1..E10); default: all")
    exp.add_argument("--markdown", action="store_true", help="emit markdown")

    sub.add_parser("fig1", help="print the Figure 1 reproduction")

    srv = sub.add_parser("serve", help="run the planning service (see SERVICE.md)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7421,
                     help="TCP port (0 picks a free one)")
    srv.add_argument("--store", default=None,
                     help="persistent plan store directory (warm-starts if present)")
    srv.add_argument("--shards", type=int, default=4,
                     help="solver worker shards (fingerprint-routed)")
    srv.add_argument("--workers", default="thread",
                     choices=["thread", "process", "inline"],
                     help="worker executor kind per shard")
    srv.add_argument("--cache-size", type=int, default=1024,
                     help="in-memory LRU entries")
    srv.add_argument("--max-pending", type=int, default=1024,
                     help="admission queue cap across all clients")
    srv.add_argument("--segment-records", type=int, default=512,
                     help="records per store segment before rotation")
    srv.add_argument("--table-snapshots", default=None, metavar="DIR",
                     help="directory of mmap table snapshots: optimal tables "
                          "warm-start from it and are saved back write-through")
    srv.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                     help="per-request solve budget; a solve past it answers "
                          "with a greedy plan + bounds, marked degraded "
                          "(default: no deadline)")

    sbm = sub.add_parser("submit", help="plan instances through a running service")
    sbm.add_argument("instances", nargs="+", help="instance JSON paths")
    sbm.add_argument("--host", default="127.0.0.1")
    sbm.add_argument("--port", type=int, default=7421)
    sbm.add_argument("--solver", default=None,
                     help="solver spec (default: the service's default)")
    sbm.add_argument("--bounds", action="store_true",
                     help="request Theorem 1 bound reports")
    sbm.add_argument("--client", default=None,
                     help="client id for fair-queue accounting")
    sbm.add_argument("--timeout", type=float, default=300.0,
                     help="seconds to wait per response (long exact/dp "
                          "solves may need more)")
    sbm.add_argument("--metrics", action="store_true",
                     help="print the service metrics snapshot afterwards")
    sbm.add_argument("--json", action="store_true",
                     help="emit results as repro/plan-result-v1 JSON lines")

    sto = sub.add_parser("store", help="inspect a persistent plan store")
    sto.add_argument("action", choices=["stats", "verify", "compact"],
                     help="compact only while no server is writing the store")
    sto.add_argument("path", help="plan store directory")

    conf = sub.add_parser(
        "conformance",
        help="differential cross-solver verification (see DESIGN.md)")
    conf_sub = conf.add_subparsers(dest="conformance_command", required=True)

    crun = conf_sub.add_parser("run", help="sweep a generated or stored corpus")
    crun.add_argument("--suite", default="quick",
                      help="corpus suite name (default quick; see corpus list)")
    crun.add_argument("--corpus", default=None,
                      help="run a persisted corpus directory instead of --suite")
    crun.add_argument("--failures", default=None,
                      help="write failure artifacts to this records directory")
    crun.add_argument("--regression", default=None,
                      help="also write each shrunk failure as a standalone "
                           "JSON file here (e.g. tests/corpus/)")
    crun.add_argument("--no-service", action="store_true",
                      help="skip the planner/service bit-parity check")
    crun.add_argument("--no-shrink", action="store_true",
                      help="report failures without shrinking them")

    cfuzz = conf_sub.add_parser("fuzz", help="seeded random sweep under a budget")
    cfuzz.add_argument("--budget", default="60s",
                       help="wall-clock budget, e.g. 45, 90s, 5m (default 60s)")
    cfuzz.add_argument("--seed", type=int, default=0,
                       help="master seed; the spec stream is fully determined by it")
    cfuzz.add_argument("--max-n", type=int, default=10,
                       help="largest destination count drawn")
    cfuzz.add_argument("--failures", default=None,
                       help="write failure artifacts to this records directory")
    cfuzz.add_argument("--regression", default=None,
                       help="also write shrunk failures as JSON files here")
    cfuzz.add_argument("--no-service", action="store_true",
                       help="skip the planner/service bit-parity check")

    ccorp = conf_sub.add_parser("corpus", help="materialize a corpus to records")
    ccorp.add_argument("--suite", default="quick", help="corpus suite name")
    ccorp.add_argument("-o", "--output", default=None,
                       help="records directory to write (omit to list suites)")

    crep = conf_sub.add_parser(
        "replay", help="re-run persisted records; failures must reproduce "
                       "bit-identically")
    crep.add_argument("path",
                      help="a records directory or a single JSON record file")

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: seeded fault plans over the corpus "
             "(see SERVICE.md, Resilience & operations)")
    chaos.add_argument("--suite", default="smoke",
                       help="corpus suite name (default smoke)")
    chaos.add_argument("--plans", type=int, default=5,
                       help="number of seeded fault plans (default 5)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed for the fault-plan battery")
    chaos.add_argument("--deadline", type=float, default=0.2,
                       help="solve deadline on the service under test "
                            "(default 0.2s)")
    chaos.add_argument("--call-timeout", type=float, default=2.0,
                       help="client socket timeout per call (default 2s)")
    chaos.add_argument("--budget", default=None,
                       help="overall wall-clock budget, e.g. 90s or 5m "
                            "(default: sweep everything)")

    perf = sub.add_parser(
        "perf", help="benchmark baselines (see DESIGN.md, Performance)")
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    prun = perf_sub.add_parser(
        "run", help="run perf kernels; exit 1 if a committed floor is missed")
    prun.add_argument("--mode", default="quick", choices=["quick", "full"],
                      help="workload size (quick = CI gate, full = baseline)")
    prun.add_argument("--kernel", action="append", default=None,
                      help="kernel name (repeatable; default: all; "
                           "pass 'list' to print the catalogue)")
    prun.add_argument("--repeats", type=int, default=5,
                      help="timed repetitions per case")
    prun.add_argument("-o", "--output", default=None,
                      help="write BENCH_<kernel>.json records here")

    pcmp = perf_sub.add_parser(
        "compare", help="run kernels and compare against committed baselines; "
                        "exit 1 on regression or floor violation")
    pcmp.add_argument("--baseline", action="append", nargs="+", required=True,
                      help="BENCH_<kernel>.json files or directories of them "
                           "(repeatable; shell globs like BENCH_*.json work)")
    pcmp.add_argument("--tolerance", default="25%",
                      help="allowed slowdown vs baseline, e.g. 25%% or 0.25 "
                           "(timings are advisory when the environment "
                           "fingerprint differs; floors always enforce)")
    pcmp.add_argument("--mode", default="quick", choices=["quick", "full"],
                      help="workload size for the comparison run")
    pcmp.add_argument("--repeats", type=int, default=5,
                      help="timed repetitions per case")
    pcmp.add_argument("-o", "--output", default=None,
                      help="also write the current run's records here "
                           "(the CI artifact)")

    pbase = perf_sub.add_parser(
        "baseline", help="run kernels and (re)write the committed baselines")
    pbase.add_argument("--mode", default="quick", choices=["quick", "full"],
                       help="workload size recorded in the baselines")
    pbase.add_argument("--kernel", action="append", default=None,
                       help="kernel name (repeatable; default: all)")
    pbase.add_argument("--repeats", type=int, default=5,
                       help="timed repetitions per case")
    pbase.add_argument("-o", "--output", default=".",
                       help="directory for BENCH_<kernel>.json (default: .)")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    import json

    from repro.io.serialization import multicast_to_dict
    from repro.workloads.clusters import bounded_ratio_cluster, pareto_cluster, two_class_cluster
    from repro.workloads.generator import multicast_from_cluster

    if args.kind == "bounded-ratio":
        nodes = bounded_ratio_cluster(args.n + 1, args.seed)
    elif args.kind == "two-class":
        n_slow = max(1, (args.n + 1) // 3)
        nodes = two_class_cluster(args.n + 1 - n_slow, n_slow)
    else:
        nodes = pareto_cluster(args.n + 1, args.seed)
    mset = multicast_from_cluster(
        nodes, latency=args.latency, source=args.source, seed=args.seed
    )
    payload = json.dumps(multicast_to_dict(mset), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.api import PlanRequest, plan
    from repro.io.serialization import load_multicast, save_json
    from repro.viz.ascii_tree import render_tree
    from repro.viz.gantt import gantt_for_schedule

    mset = load_multicast(args.instance)
    result = plan(
        PlanRequest(instance=mset, solver=args.algorithm, include_bounds=args.bounds)
    )
    schedule = result.schedule
    print(
        f"algorithm={args.algorithm} n={mset.n} R_T={schedule.reception_completion:g} "
        f"D_T={schedule.delivery_completion:g} layered={schedule.is_layered()}"
        + (" optimal" if result.exact else "")
    )
    if args.bounds and result.bounds is not None:
        rep = result.bounds
        kind = "exact optimum" if rep.opt_is_exact else "certified lower bound"
        print(
            f"bound report: value={rep.greedy_value:g} vs {kind} {rep.opt_value:g} "
            f"(ratio <= {rep.measured_ratio:.3f}, Theorem 1 factor {rep.factor:g}, "
            f"beta {rep.beta:g})"
        )
    if args.tree:
        print(render_tree(schedule))
    if args.gantt:
        print(gantt_for_schedule(schedule))
    if args.output:
        save_json(schedule, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.io.serialization import load_schedule
    from repro.simulation.executor import simulate_schedule
    from repro.simulation.jitter import uniform_jitter

    schedule = load_schedule(args.schedule)
    if args.jitter > 0:
        result = simulate_schedule(
            schedule, jitter=uniform_jitter(args.jitter, args.seed), verify=False
        )
        print(
            f"simulated R_T={result.reception_completion:g} "
            f"(analytic {schedule.reception_completion:g}, jitter ±{args.jitter:g})"
        )
    else:
        result = simulate_schedule(schedule)
        print(
            f"simulated R_T={result.reception_completion:g} == analytic "
            f"{schedule.reception_completion:g} "
            f"({result.events_processed} events, verified)"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.tables import Table
    from repro.api import PlanRequest, capable_solvers, get_solver, plan_batch
    from repro.io.serialization import load_multicast

    mset = load_multicast(args.instance)
    requests = [
        PlanRequest(instance=mset, solver=name)
        for name in capable_solvers(mset)
    ]
    batch = plan_batch(requests, jobs=max(1, args.jobs), on_error="skip")
    table = Table(f"solvers on {args.instance} (n={mset.n})",
                  ["algorithm", "R_T", "vs best"])
    values = {}
    for result in batch:
        values[get_solver(result.solver).display_name] = result.value
    best = min(values.values())
    for name, value in sorted(values.items(), key=lambda kv: (kv[1], kv[0])):
        table.add_row([name, value, f"{value / best:.3f}x"])
    if args.jobs > 1:
        table.add_note(f"planned with {args.jobs} parallel workers")
    print(table.render())
    return 0


def _cmd_plan_batch(args: argparse.Namespace) -> int:
    import json

    from repro.api import Planner, PlanRequest
    from repro.io.serialization import load_multicast, plan_result_to_dict

    requests = []
    for path in args.instances:
        try:
            mset = load_multicast(path)
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot load instance {path}: {exc}") from exc
        requests.append(
            PlanRequest(
                instance=mset,
                **({"solver": args.solver} if args.solver else {}),
                tag=path,
            )
        )
    planner = Planner()
    batch = planner.plan_batch(
        requests,
        jobs=max(1, args.jobs),
        group_solve=False if args.no_group_solve else None,
    )
    for result in batch:
        if args.json:
            print(json.dumps(plan_result_to_dict(result), sort_keys=True))
        else:
            print(
                f"{result.tag}: R_T={result.value:g} solver={result.solver}"
                + (" optimal" if result.exact else "")
            )
    tables = planner.table_cache
    mode = "per-instance" if args.no_group_solve else "group-solve"
    stats = tables.stats() if tables is not None else {}
    print(
        f"planned {len(batch)} instances in {batch.elapsed_s * 1e3:.1f} ms "
        f"({mode}; tables built={stats.get('builds', 0)} "
        f"extended={stats.get('extensions', 0)} hits={stats.get('hits', 0)} "
        f"states={stats.get('states_held', 0)})"
    )
    return 0


def _load_multi_group(paths: List[str]):
    """Build a MultiGroupInstance from CLI paths.

    A single path may be a ``repro/multi-group-v1`` bundle; otherwise every
    path is one per-group ``repro/multicast-v1`` instance.
    """
    import json
    from pathlib import Path

    from repro.core.contention import MultiGroupInstance
    from repro.io.serialization import (
        MULTI_GROUP_FORMAT,
        load_multicast,
        multi_group_from_dict,
    )

    if len(paths) == 1:
        try:
            data = json.loads(Path(paths[0]).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot load {paths[0]}: {exc}") from exc
        if isinstance(data, dict) and data.get("format") == MULTI_GROUP_FORMAT:
            return multi_group_from_dict(data)
        raise ReproError(
            f"{paths[0]} is not a {MULTI_GROUP_FORMAT} bundle; pass one "
            "instance path per group to compose an ad-hoc multi-group plan"
        )
    groups = []
    for path in paths:
        try:
            groups.append(load_multicast(path))
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot load instance {path}: {exc}") from exc
    return MultiGroupInstance(tuple(groups))


def _cmd_plan_groups(args: argparse.Namespace) -> int:
    import json

    from repro.api import DEFAULT_STRATEGY, MultiGroupPlanner

    instance = _load_multi_group(args.groups)
    planner = MultiGroupPlanner()
    jobs = max(1, args.jobs)
    if args.compare:
        if args.strategy is not None:
            raise ReproError("--compare runs every strategy; drop --strategy")
        results = planner.compare_strategies(
            instance, solver=args.solver, jobs=jobs
        )
    else:
        strategy = args.strategy or DEFAULT_STRATEGY
        results = {
            strategy: planner.plan_groups(
                instance, strategy, solver=args.solver, jobs=jobs
            )
        }
    shared = ", ".join(instance.shared_nodes()) or "(none)"
    if not args.json:
        print(
            f"{instance.n_groups} groups, shared nodes: {shared}"
        )
    for name, result in sorted(results.items()):
        if args.json:
            payload = {
                "strategy": result.strategy,
                "solver": result.solver,
                "offsets": list(result.offsets),
                "completions": list(result.schedule.completions),
                "max_makespan": result.max_makespan,
                "weighted_sum": result.weighted_sum,
            }
            print(json.dumps(payload, sort_keys=True))
        else:
            offsets = ", ".join(f"{t:g}" for t in result.offsets)
            print(
                f"{name}: max_makespan={result.max_makespan:g} "
                f"weighted_sum={result.weighted_sum:g} "
                f"offsets=[{offsets}] (inner solver {result.solver})"
            )
    if not args.json:
        cache = planner.planner.cache_info()
        tables = planner.planner.table_cache
        stats = tables.stats() if tables is not None else {}
        print(
            f"inner solves: cache hits={cache.hits} "
            f"canonical={cache.canonical_hits} "
            f"tables built={stats.get('builds', 0)} "
            f"reused={stats.get('hits', 0)}"
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.runner import render_report, run_all

    names = args.names or None
    print(render_report(run_all(names), markdown=args.markdown))
    return 0


def _cmd_fig1(_args: argparse.Namespace) -> int:
    from repro.experiments.fig1 import (
        figure1_instance,
        figure1_schedule_a,
        figure1_schedule_b,
        run,
    )
    from repro.viz.ascii_tree import render_tree

    for table in run():
        print(table.render())
        print()
    mset = figure1_instance()
    print("Figure 1(a):")
    print(render_tree(figure1_schedule_a(mset)))
    print()
    print("Figure 1(b) reconstruction:")
    print(render_tree(figure1_schedule_b(mset)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import PlanningService

    table_config = None
    if args.table_snapshots:
        from repro.api.tables import TableCacheConfig

        table_config = TableCacheConfig(snapshot_dir=args.table_snapshots)
    service = PlanningService(
        store_path=args.store,
        num_shards=args.shards,
        worker_mode=args.workers,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
        segment_max_records=args.segment_records,
        table_config=table_config,
        solve_deadline_s=args.deadline,
    )
    if args.store and service.store is not None:
        warm = len(service.store)
        print(f"plan store {args.store}: {warm} plans warm-started", flush=True)
    if args.table_snapshots:
        from pathlib import Path

        count = len(list(Path(args.table_snapshots).glob("table-*.snap")))
        print(f"table snapshots {args.table_snapshots}: "
              f"{count} tables attachable", flush=True)

    def ready(address) -> None:
        print(f"planning service listening on {address[0]}:{address[1]} "
              f"({args.shards} {args.workers} shards)", flush=True)

    try:
        service.run(args.host, args.port, ready=ready)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.api import PlanRequest
    from repro.io.serialization import load_multicast, plan_result_to_dict
    from repro.service import ServiceClient

    with ServiceClient(
        args.host, args.port, client_id=args.client, timeout=args.timeout
    ) as client:
        for path in args.instances:
            mset = load_multicast(path)
            request = PlanRequest(
                instance=mset,
                **({"solver": args.solver} if args.solver else {}),
                include_bounds=args.bounds,
                tag=path,
            )
            served = client.plan(request)
            result = served.result
            if args.json:
                print(json.dumps(plan_result_to_dict(result), sort_keys=True))
            else:
                print(
                    f"{path}: R_T={result.value:g} solver={result.solver} "
                    f"tier={served.tier}"
                    + (" optimal" if result.exact else "")
                )
        if args.metrics:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service import PlanStore

    if not Path(args.path).is_dir():
        raise ReproError(f"no plan store at {args.path}: not a directory")
    store = PlanStore(args.path)
    if args.action == "verify":
        checked = store.verify()
        print(f"{args.path}: {checked} records verified "
              f"(all round-trip through repro/plan-result-v1)")
    elif args.action == "compact":
        before = store.stats()
        reclaimed = store.compact()
        after = store.stats()
        print(f"{args.path}: reclaimed {reclaimed} superseded records "
              f"({before.segments} -> {after.segments} segments, "
              f"{after.live_keys} live plans)")
    else:
        stats = store.stats()
        print(f"{args.path}: {stats.live_keys} live plans, "
              f"{stats.total_records} records in {stats.segments} segments "
              f"({stats.dead_records} reclaimable)")
    return 0


def _parse_budget(text: str) -> float:
    """``45`` / ``90s`` / ``5m`` / ``1h`` -> seconds."""
    text = text.strip().lower()
    units = {"s": 1.0, "m": 60.0, "h": 3600.0}
    factor = units.get(text[-1:], None)
    digits = text[:-1] if factor is not None else text
    try:
        seconds = float(digits) * (factor if factor is not None else 1.0)
    except ValueError:
        raise ReproError(
            f"malformed budget {text!r}; use e.g. 45, 90s or 5m"
        ) from None
    if seconds <= 0:
        raise ReproError(f"budget must be positive, got {text!r}")
    return seconds


def _write_failure_artifacts(args: argparse.Namespace, report) -> None:
    """Persist a report's failures: records directory and/or JSON files."""
    import json
    from pathlib import Path

    from repro.conformance import write_records

    if getattr(args, "failures", None) and report.failures:
        written = write_records(args.failures, report.failures)
        print(f"wrote {written} failure artifacts to {args.failures}")
    if getattr(args, "regression", None) and report.failures:
        root = Path(args.regression)
        root.mkdir(parents=True, exist_ok=True)
        for failure in report.failures:
            path = root / f"{failure.invariant}-{failure.digest[:12]}.json"
            path.write_text(
                json.dumps(failure.to_dict(), indent=2, sort_keys=True) + "\n"
            )
            print(f"wrote regression case {path}")


def _report_and_exit(args: argparse.Namespace, report) -> int:
    print(report.summary())
    _write_failure_artifacts(args, report)
    return 0 if report.ok else 1


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.conformance import (
        CORPUS_SUITES,
        ConformanceRunner,
        FailureRecord,
        MultiGroupScenarioSpec,
        ScenarioSpec,
        check_multi_group,
        generate_corpus,
        fuzz_specs,
        load_records,
        write_records,
    )
    from repro.conformance.records import load_record_file

    command = args.conformance_command
    if command == "corpus":
        if args.output is None:
            for name, suite in sorted(CORPUS_SUITES.items()):
                print(f"{name:<8} {len(suite.specs()):>4} scenarios  "
                      f"{suite.description}")
            return 0
        specs = generate_corpus(args.suite)
        written = write_records(args.output, specs)
        print(f"wrote {written} {args.suite!r} scenarios to {args.output}")
        return 0

    if command == "run":
        if args.corpus is not None:
            records = load_records(args.corpus)
            specs = [r for r in records if isinstance(r, ScenarioSpec)]
            if not specs:
                # a failure-artifact directory shares the segment layout;
                # running it as a corpus would pass vacuously forever
                raise ReproError(
                    f"{args.corpus} holds no scenario records "
                    f"({len(records)} failure records; use 'conformance "
                    f"replay' for those)"
                )
            skipped = len(records) - len(specs)
            origin = f"{len(specs)} scenarios from {args.corpus}" + (
                f" ({skipped} non-scenario records skipped; use 'replay' "
                "for failures and multi-group scenarios)" if skipped else ""
            )
        else:
            specs = generate_corpus(args.suite)
            origin = f"suite {args.suite!r} ({len(specs)} scenarios)"
        runner = ConformanceRunner(
            service_every=0 if args.no_service else 8,
            shrink=not args.no_shrink,
        )
        print(f"conformance run: {origin}")
        return _report_and_exit(args, runner.run(specs))

    if command == "fuzz":
        budget = _parse_budget(args.budget)
        runner = ConformanceRunner(service_every=0 if args.no_service else 8)
        print(f"conformance fuzz: seed={args.seed} budget={budget:g}s "
              f"max_n={args.max_n}")
        report = runner.run(
            fuzz_specs(args.seed, max_n=args.max_n), deadline_s=budget
        )
        return _report_and_exit(args, report)

    # replay: every failure record must reproduce bit-identically; scenario
    # records re-run the full invariant suite (a corpus replay); multi-group
    # scenarios re-run the cross-group checks and re-verify their digests
    from pathlib import Path

    path = Path(args.path)
    records = [load_record_file(path)] if path.is_file() else load_records(path)
    failures = [r for r in records if isinstance(r, FailureRecord)]
    scenarios = [r for r in records if isinstance(r, ScenarioSpec)]
    multi_groups = [r for r in records if isinstance(r, MultiGroupScenarioSpec)]
    exit_code = 0
    runner = ConformanceRunner(service_every=0)
    for failure in failures:
        outcome = runner.replay(failure)
        if outcome.bit_identical:
            print(f"reproduced bit-identically: {failure.invariant} "
                  f"solver={failure.solver} on {failure.spec.key} "
                  f"(digest {failure.digest})")
        else:
            exit_code = 1
            print(f"NOT reproduced: {failure.invariant} solver={failure.solver} "
                  f"on {failure.spec.key}: {outcome.detail}")
    for spec in multi_groups:
        violations = check_multi_group(spec)
        if not violations:
            stamp = f" (digest {spec.digest})" if spec.digest else ""
            print(f"multi-group replay ok: {spec.key}{stamp}")
        else:
            exit_code = 1
            for violation in violations:
                where = f" [{violation.solver}]" if violation.solver else ""
                print(f"multi-group replay FAILED on {spec.key}:{where} "
                      f"{violation.message}")
    if scenarios:
        report = runner.run(scenarios)
        print(report.summary())
        if not report.ok:
            exit_code = 1
    if not failures and not scenarios and not multi_groups:
        raise ReproError(f"no conformance records found at {args.path}")
    return exit_code


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.conformance import default_fault_plans, generate_corpus, run_chaos

    specs = generate_corpus(args.suite)
    plans = default_fault_plans(args.plans, seed=args.seed)
    budget = _parse_budget(args.budget) if args.budget else None
    print(f"chaos sweep: suite {args.suite!r} ({len(specs)} scenarios) x "
          f"{len(plans)} fault plans, deadline {args.deadline:g}s")
    report = run_chaos(
        specs,
        plans,
        suite=args.suite,
        solve_deadline_s=args.deadline,
        call_timeout_s=args.call_timeout,
        budget_s=budget,
        progress=print,
    )
    print(report.summary())
    for violation in report.violations:
        print(f"VIOLATION {violation}")
    return 0 if report.ok else 1


def _parse_tolerance(text: str) -> float:
    """``25%`` / ``0.25`` -> 0.25."""
    text = text.strip()
    try:
        if text.endswith("%"):
            return float(text[:-1]) / 100.0
        return float(text)
    except ValueError:
        raise ReproError(
            f"malformed tolerance {text!r}; use e.g. 25% or 0.25"
        ) from None


def _print_perf_records(records) -> None:
    for record in records:
        floors = (
            "  floors: "
            + ", ".join(f"{k} >= {v:g}" for k, v in sorted(record.floors.items()))
            if record.floors
            else ""
        )
        summary = (
            "  summary: "
            + ", ".join(f"{k}={v:g}" for k, v in sorted(record.summary.items()))
            if record.summary
            else ""
        )
        print(f"{record.name} [{record.mode}] digest={record.digest}")
        for case in record.results:
            timing = case.timing
            print(
                f"  {case.case}: min={timing.min_s * 1e3:.3f} ms "
                f"mean={timing.mean_s * 1e3:.3f} ms ({timing.repeats} repeats)"
            )
        if summary:
            print(summary)
        if floors:
            print(floors)


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import (
        KERNELS,
        PerfRunner,
        compare_records,
        load_baselines,
        write_baseline,
    )

    command = args.perf_command
    if command in ("run", "baseline") and args.kernel == ["list"]:
        for name, kernel in sorted(KERNELS.items()):
            floors = (
                "  [floors: "
                + ", ".join(f"{k} >= {v:g}" for k, v in sorted(kernel.floors.items()))
                + "]"
                if kernel.floors
                else ""
            )
            print(f"{name:<20} {kernel.description}{floors}")
        return 0

    if command == "run":
        runner = PerfRunner(
            mode=args.mode, kernels=args.kernel, repeats=args.repeats
        )
        records = runner.run(progress=lambda line: print(f"ran {line}"))
        _print_perf_records(records)
        if args.output:
            for record in records:
                path = write_baseline(args.output, record)
                print(f"wrote {path}")
        # self-gate: a run whose own floors are unmet is a failed run
        # (each record doubles as its own baseline for the floor check)
        report = compare_records(records, records, tolerance=0.0)
        failed = [floor for floor in report.floors if floor.failed]
        for floor in failed:
            print(floor.describe())
        return 1 if failed else 0

    if command == "compare":
        tolerance = _parse_tolerance(args.tolerance)
        paths = [path for group in args.baseline for path in group]
        baselines = load_baselines(paths)
        known = [b.name for b in baselines if b.name in KERNELS]
        for baseline in baselines:
            if baseline.name not in KERNELS:
                print(f"warning: baseline kernel {baseline.name!r} is not "
                      "registered; skipping")
        if not known:
            raise ReproError("no baseline matches a registered perf kernel")
        runner = PerfRunner(mode=args.mode, kernels=known, repeats=args.repeats)
        currents = runner.run(progress=lambda line: print(f"ran {line}"))
        if args.output:
            for record in currents:
                path = write_baseline(args.output, record)
                print(f"wrote {path}")
        report = compare_records(
            [b for b in baselines if b.name in KERNELS],
            currents,
            tolerance=tolerance,
        )
        print(report.summary())
        return 0 if report.ok else 1

    # baseline: run and (re)write the committed records
    runner = PerfRunner(mode=args.mode, kernels=args.kernel, repeats=args.repeats)
    written = runner.run_and_write(
        args.output, progress=lambda line: print(f"ran {line}")
    )
    for name in sorted(written):
        print(f"wrote {written[name]}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "schedule": _cmd_schedule,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "plan-batch": _cmd_plan_batch,
    "plan-groups": _cmd_plan_groups,
    "experiment": _cmd_experiment,
    "fig1": _cmd_fig1,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "store": _cmd_store,
    "conformance": _cmd_conformance,
    "chaos": _cmd_chaos,
    "perf": _cmd_perf,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
