"""Command-line interface: ``hnow-multicast`` / ``python -m repro``.

Subcommands
-----------
``generate``    write a random instance to JSON
``schedule``    schedule an instance with any registered solver
``simulate``    execute a schedule on the discrete-event simulator
``compare``     run every capable solver on one instance (optionally parallel)
``experiment``  run the E1..E10 reproduction experiments
``fig1``        pretty-print the Figure 1 reproduction
``serve``       run the long-lived planning service (TCP JSON-lines)
``submit``      plan instances through a running service
``store``       inspect/verify/compact a persistent plan store

Every solver — the paper's greedy family, the baselines, the Section 4
``dp`` and the branch-and-bound ``exact`` oracle — is resolved through the
unified :mod:`repro.api` registry, so there are no per-solver special cases
here.  The service commands are documented operator-side in SERVICE.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import available_solvers
from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hnow-multicast",
        description=(
            "Multicast scheduling for heterogeneous networks of workstations "
            "(reproduction of Libeskind-Hadas & Hartline, ICPP 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a random instance (JSON to stdout/file)")
    gen.add_argument("--kind", default="bounded-ratio",
                     choices=["bounded-ratio", "two-class", "pareto"], help="cluster family")
    gen.add_argument("-n", type=int, default=8, help="number of destinations")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--latency", type=float, default=1.0)
    gen.add_argument("--source", default="slowest",
                     choices=["fastest", "slowest", "median", "random", "first"])
    gen.add_argument("-o", "--output", default=None, help="output path (default stdout)")

    sch = sub.add_parser("schedule", help="schedule an instance from JSON")
    sch.add_argument("instance", help="instance JSON path")
    sch.add_argument("--algorithm", default="greedy+reversal",
                     choices=available_solvers())
    sch.add_argument("--bounds", action="store_true",
                     help="print the Theorem 1 bound report")
    sch.add_argument("--tree", action="store_true", help="print the schedule tree")
    sch.add_argument("--gantt", action="store_true", help="print a Gantt chart")
    sch.add_argument("-o", "--output", default=None, help="write the schedule JSON here")

    sim = sub.add_parser("simulate", help="execute a schedule JSON on the simulator")
    sim.add_argument("schedule", help="schedule JSON path")
    sim.add_argument("--jitter", type=float, default=0.0,
                     help="latency jitter amplitude (0 = exact model)")
    sim.add_argument("--seed", type=int, default=0, help="jitter seed")

    cmp_ = sub.add_parser("compare", help="run every capable solver on an instance")
    cmp_.add_argument("instance", help="instance JSON path")
    cmp_.add_argument("-j", "--jobs", type=int, default=1,
                      help="parallel planning workers (default 1 = serial)")

    exp = sub.add_parser("experiment", help="run reproduction experiments")
    exp.add_argument("names", nargs="*", default=[],
                     help="experiment ids (E1..E10); default: all")
    exp.add_argument("--markdown", action="store_true", help="emit markdown")

    sub.add_parser("fig1", help="print the Figure 1 reproduction")

    srv = sub.add_parser("serve", help="run the planning service (see SERVICE.md)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7421,
                     help="TCP port (0 picks a free one)")
    srv.add_argument("--store", default=None,
                     help="persistent plan store directory (warm-starts if present)")
    srv.add_argument("--shards", type=int, default=4,
                     help="solver worker shards (fingerprint-routed)")
    srv.add_argument("--workers", default="thread",
                     choices=["thread", "process", "inline"],
                     help="worker executor kind per shard")
    srv.add_argument("--cache-size", type=int, default=1024,
                     help="in-memory LRU entries")
    srv.add_argument("--max-pending", type=int, default=1024,
                     help="admission queue cap across all clients")
    srv.add_argument("--segment-records", type=int, default=512,
                     help="records per store segment before rotation")

    sbm = sub.add_parser("submit", help="plan instances through a running service")
    sbm.add_argument("instances", nargs="+", help="instance JSON paths")
    sbm.add_argument("--host", default="127.0.0.1")
    sbm.add_argument("--port", type=int, default=7421)
    sbm.add_argument("--solver", default=None,
                     help="solver spec (default: the service's default)")
    sbm.add_argument("--bounds", action="store_true",
                     help="request Theorem 1 bound reports")
    sbm.add_argument("--client", default=None,
                     help="client id for fair-queue accounting")
    sbm.add_argument("--timeout", type=float, default=300.0,
                     help="seconds to wait per response (long exact/dp "
                          "solves may need more)")
    sbm.add_argument("--metrics", action="store_true",
                     help="print the service metrics snapshot afterwards")
    sbm.add_argument("--json", action="store_true",
                     help="emit results as repro/plan-result-v1 JSON lines")

    sto = sub.add_parser("store", help="inspect a persistent plan store")
    sto.add_argument("action", choices=["stats", "verify", "compact"],
                     help="compact only while no server is writing the store")
    sto.add_argument("path", help="plan store directory")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    import json

    from repro.io.serialization import multicast_to_dict
    from repro.workloads.clusters import bounded_ratio_cluster, pareto_cluster, two_class_cluster
    from repro.workloads.generator import multicast_from_cluster

    if args.kind == "bounded-ratio":
        nodes = bounded_ratio_cluster(args.n + 1, args.seed)
    elif args.kind == "two-class":
        n_slow = max(1, (args.n + 1) // 3)
        nodes = two_class_cluster(args.n + 1 - n_slow, n_slow)
    else:
        nodes = pareto_cluster(args.n + 1, args.seed)
    mset = multicast_from_cluster(
        nodes, latency=args.latency, source=args.source, seed=args.seed
    )
    payload = json.dumps(multicast_to_dict(mset), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.api import PlanRequest, plan
    from repro.io.serialization import load_multicast, save_json
    from repro.viz.ascii_tree import render_tree
    from repro.viz.gantt import gantt_for_schedule

    mset = load_multicast(args.instance)
    result = plan(
        PlanRequest(instance=mset, solver=args.algorithm, include_bounds=args.bounds)
    )
    schedule = result.schedule
    print(
        f"algorithm={args.algorithm} n={mset.n} R_T={schedule.reception_completion:g} "
        f"D_T={schedule.delivery_completion:g} layered={schedule.is_layered()}"
        + (" optimal" if result.exact else "")
    )
    if args.bounds and result.bounds is not None:
        rep = result.bounds
        kind = "exact optimum" if rep.opt_is_exact else "certified lower bound"
        print(
            f"bound report: value={rep.greedy_value:g} vs {kind} {rep.opt_value:g} "
            f"(ratio <= {rep.measured_ratio:.3f}, Theorem 1 factor {rep.factor:g}, "
            f"beta {rep.beta:g})"
        )
    if args.tree:
        print(render_tree(schedule))
    if args.gantt:
        print(gantt_for_schedule(schedule))
    if args.output:
        save_json(schedule, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.io.serialization import load_schedule
    from repro.simulation.executor import simulate_schedule
    from repro.simulation.jitter import uniform_jitter

    schedule = load_schedule(args.schedule)
    if args.jitter > 0:
        result = simulate_schedule(
            schedule, jitter=uniform_jitter(args.jitter, args.seed), verify=False
        )
        print(
            f"simulated R_T={result.reception_completion:g} "
            f"(analytic {schedule.reception_completion:g}, jitter ±{args.jitter:g})"
        )
    else:
        result = simulate_schedule(schedule)
        print(
            f"simulated R_T={result.reception_completion:g} == analytic "
            f"{schedule.reception_completion:g} "
            f"({result.events_processed} events, verified)"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.tables import Table
    from repro.api import PlanRequest, capable_solvers, get_solver, plan_batch
    from repro.io.serialization import load_multicast

    mset = load_multicast(args.instance)
    requests = [
        PlanRequest(instance=mset, solver=name)
        for name in capable_solvers(mset)
    ]
    batch = plan_batch(requests, jobs=max(1, args.jobs), on_error="skip")
    table = Table(f"solvers on {args.instance} (n={mset.n})",
                  ["algorithm", "R_T", "vs best"])
    values = {}
    for result in batch:
        values[get_solver(result.solver).display_name] = result.value
    best = min(values.values())
    for name, value in sorted(values.items(), key=lambda kv: (kv[1], kv[0])):
        table.add_row([name, value, f"{value / best:.3f}x"])
    if args.jobs > 1:
        table.add_note(f"planned with {args.jobs} parallel workers")
    print(table.render())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.runner import render_report, run_all

    names = args.names or None
    print(render_report(run_all(names), markdown=args.markdown))
    return 0


def _cmd_fig1(_args: argparse.Namespace) -> int:
    from repro.experiments.fig1 import (
        figure1_instance,
        figure1_schedule_a,
        figure1_schedule_b,
        run,
    )
    from repro.viz.ascii_tree import render_tree

    for table in run():
        print(table.render())
        print()
    mset = figure1_instance()
    print("Figure 1(a):")
    print(render_tree(figure1_schedule_a(mset)))
    print()
    print("Figure 1(b) reconstruction:")
    print(render_tree(figure1_schedule_b(mset)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import PlanningService

    service = PlanningService(
        store_path=args.store,
        num_shards=args.shards,
        worker_mode=args.workers,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
        segment_max_records=args.segment_records,
    )
    if args.store and service.store is not None:
        warm = len(service.store)
        print(f"plan store {args.store}: {warm} plans warm-started", flush=True)

    def ready(address) -> None:
        print(f"planning service listening on {address[0]}:{address[1]} "
              f"({args.shards} {args.workers} shards)", flush=True)

    try:
        service.run(args.host, args.port, ready=ready)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.api import PlanRequest
    from repro.io.serialization import load_multicast, plan_result_to_dict
    from repro.service import ServiceClient

    with ServiceClient(
        args.host, args.port, client_id=args.client, timeout=args.timeout
    ) as client:
        for path in args.instances:
            mset = load_multicast(path)
            request = PlanRequest(
                instance=mset,
                **({"solver": args.solver} if args.solver else {}),
                include_bounds=args.bounds,
                tag=path,
            )
            served = client.plan(request)
            result = served.result
            if args.json:
                print(json.dumps(plan_result_to_dict(result), sort_keys=True))
            else:
                print(
                    f"{path}: R_T={result.value:g} solver={result.solver} "
                    f"tier={served.tier}"
                    + (" optimal" if result.exact else "")
                )
        if args.metrics:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service import PlanStore

    if not Path(args.path).is_dir():
        raise ReproError(f"no plan store at {args.path}: not a directory")
    store = PlanStore(args.path)
    if args.action == "verify":
        checked = store.verify()
        print(f"{args.path}: {checked} records verified "
              f"(all round-trip through repro/plan-result-v1)")
    elif args.action == "compact":
        before = store.stats()
        reclaimed = store.compact()
        after = store.stats()
        print(f"{args.path}: reclaimed {reclaimed} superseded records "
              f"({before.segments} -> {after.segments} segments, "
              f"{after.live_keys} live plans)")
    else:
        stats = store.stats()
        print(f"{args.path}: {stats.live_keys} live plans, "
              f"{stats.total_records} records in {stats.segments} segments "
              f"({stats.dead_records} reclaimable)")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "schedule": _cmd_schedule,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "experiment": _cmd_experiment,
    "fig1": _cmd_fig1,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "store": _cmd_store,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
