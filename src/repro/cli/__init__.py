"""Command-line front-end (``hnow-multicast`` / ``python -m repro``)."""

from repro.cli.main import build_parser, main

__all__ = ["main", "build_parser"]
