"""Request/response types of the planning façade.

A :class:`PlanRequest` bundles everything needed to plan one multicast:
the instance, a solver spec string, solver options, and output options.
A :class:`PlanResult` is the full response: the schedule, its completion
times, exactness, an optional Theorem 1 bound report, timing, and
provenance.  :class:`BatchResult` aggregates many results from
:meth:`repro.api.Planner.plan_batch`.

All three round-trip through JSON via :mod:`repro.io.serialization`
(``plan_request_to_dict`` / ``plan_result_to_dict`` and inverses), so plans
can be shipped between services and archived next to experiment outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.core.bounds import BoundReport
from repro.core.multicast import MulticastSet
from repro.core.schedule import Schedule
from repro.exceptions import ReproError

__all__ = ["PlanRequest", "PlanResult", "BatchResult"]

DEFAULT_SOLVER = "greedy+reversal"


@dataclass(frozen=True)
class PlanRequest:
    """One planning job: an instance plus how to solve it.

    Parameters
    ----------
    instance:
        The multicast set to plan.
    solver:
        Solver spec string resolved by :func:`repro.api.resolve` — a name
        from :func:`repro.api.available_solvers`, optionally with options,
        e.g. ``"dp"`` or ``"exact(max_destinations=12)"``.
    options:
        Extra solver keyword options; they override options embedded in the
        spec string.
    include_bounds:
        When ``True`` the planner attaches a Theorem 1
        :class:`~repro.core.bounds.BoundReport` to the result.
    tag:
        Free-form caller label, carried through to the result untouched
        (useful to correlate batch submissions with responses).
    """

    instance: MulticastSet
    solver: str = DEFAULT_SOLVER
    options: Mapping[str, Any] = field(default_factory=dict)
    include_bounds: bool = False
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.instance, MulticastSet):
            raise ReproError(
                f"PlanRequest.instance must be a MulticastSet, "
                f"got {type(self.instance).__name__}"
            )
        object.__setattr__(self, "options", dict(self.options))

    def with_solver(self, solver: str, **options: Any) -> "PlanRequest":
        """Copy of this request targeting a different solver."""
        return replace(self, solver=solver, options=options)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (see :mod:`repro.io.serialization`)."""
        from repro.io.serialization import plan_request_to_dict

        return plan_request_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanRequest":
        """Inverse of :meth:`to_dict`."""
        from repro.io.serialization import plan_request_from_dict

        return plan_request_from_dict(data)


@dataclass(frozen=True)
class PlanResult:
    """The planner's full answer for one :class:`PlanRequest`.

    Attributes
    ----------
    solver:
        Canonical name of the solver that ran (spec options stripped).
    schedule:
        The planned multicast tree (carries its instance).
    value:
        Reception completion time ``R_T`` — the paper's objective.
    delivery_completion:
        Delivery completion time ``D_T``.
    exact:
        Whether the solver certifies ``value`` as optimal.
    bounds:
        Theorem 1 report when the request asked for one, else ``None``.
    elapsed_s:
        Wall-clock solve time in seconds (0.0 for cache hits).
    cache_hit:
        Whether the result was served from the planner's cache.
    tag:
        The request's tag, echoed back.
    provenance:
        Solver statistics and identifying metadata: the instance
        fingerprint, resolved options, per-solver counters such as
        ``states_computed`` (DP) or ``nodes_expanded`` (exact search).
    """

    solver: str
    schedule: Schedule
    value: float
    delivery_completion: float
    exact: bool
    bounds: Optional[BoundReport] = None
    elapsed_s: float = 0.0
    cache_hit: bool = False
    tag: Optional[str] = None
    provenance: Mapping[str, Any] = field(default_factory=dict)

    @property
    def instance(self) -> MulticastSet:
        """The instance this plan answers (borrowed from the schedule)."""
        return self.schedule.multicast

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (see :mod:`repro.io.serialization`)."""
        from repro.io.serialization import plan_result_to_dict

        return plan_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanResult":
        """Inverse of :meth:`to_dict`."""
        from repro.io.serialization import plan_result_from_dict

        return plan_result_from_dict(data)


@dataclass(frozen=True)
class BatchResult:
    """Results of a batched plan, in submission order.

    Supports iteration, indexing and ``len``; convenience accessors pick
    winners and summarize cache behaviour.
    """

    results: Tuple[PlanResult, ...]
    elapsed_s: float = 0.0
    jobs: int = 1

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[PlanResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> PlanResult:
        return self.results[index]

    @property
    def cache_hits(self) -> int:
        """How many results were served from cache."""
        return sum(1 for r in self.results if r.cache_hit)

    def best(self) -> PlanResult:
        """The result with the smallest reception completion time."""
        if not self.results:
            raise ReproError("empty batch has no best result")
        return min(self.results, key=lambda r: r.value)

    def values(self) -> Tuple[float, ...]:
        """Reception completion times, in submission order."""
        return tuple(r.value for r in self.results)

    def by_solver(self) -> Dict[str, Tuple[PlanResult, ...]]:
        """Group results by canonical solver name."""
        grouped: Dict[str, list] = {}
        for r in self.results:
            grouped.setdefault(r.solver, []).append(r)
        return {k: tuple(v) for k, v in grouped.items()}
